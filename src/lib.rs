//! Umbrella crate for the `dynamic-sparsity` workspace.
//!
//! This crate re-exports every workspace member so examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`tensor`] — dense / column-sparse linear algebra kernels,
//! * [`lm`] — the synthetic SwiGLU transformer language-model substrate,
//! * [`dip`] (crate `dip-core`) — Dynamic Input Pruning, cache-aware masking
//!   and the dynamic-sparsity baselines from the paper,
//! * [`quant`] — quantization and static-pruning baselines,
//! * [`hwsim`] — the mobile-SoC (Flash/DRAM/cache) hardware simulator,
//! * [`serve`] — the multi-session serving engine (continuous batching,
//!   shared-cache contention),
//! * [`telemetry`] — zero-allocation metrics, span ring and exporters
//!   observing the serving stack,
//! * [`experiments`] — the harness regenerating every table and figure.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use dip_core as dip;
pub use experiments;
pub use hwsim;
pub use lm;
pub use quant;
pub use serve;
pub use telemetry;
pub use tensor;
