//! Memory-budget planner: given a DRAM budget, compare how far quantization,
//! static pruning and Dynamic Input Pruning can shrink a model's resident
//! footprint before perplexity degrades — the Fig. 9 trade-off as a tool.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example memory_budget_planner
//! ```

use dip_core::strategies::Dip;
use dip_core::DensityAllocation;
use lm::{build_synthetic, eval, mlp::DenseMlp, ModelConfig};
use quant::model_ops::{model_memory_bytes, prune_mlp_static, quantize_mlp_blockwise};
use quant::{BlockwiseQuantizer, PruningStructure, StaticPruner};

const MIB: f64 = 1024.0 * 1024.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::phi3_mini_sim();
    let model = build_synthetic(&config, 3)?;
    let corpus = eval::standard_eval_corpus(&model, 4, 48, 5)?;
    let dense_ppl = eval::perplexity(&model, &mut DenseMlp, &corpus)?.perplexity;
    println!(
        "model {}: dense FP16 footprint {:.1} MiB, dense perplexity {:.3}\n",
        config.name,
        model_memory_bytes(&config, 16.0, 16.0, 1.0, None) / MIB,
        dense_ppl
    );
    println!(
        "{:<34} {:>12} {:>12} {:>10}",
        "configuration", "memory MiB", "perplexity", "ΔPPL"
    );

    let report = |name: &str, memory_bytes: f64, ppl: f64| {
        println!(
            "{:<34} {:>12.1} {:>12.3} {:>10.3}",
            name,
            memory_bytes / MIB,
            ppl,
            ppl - dense_ppl
        );
    };

    // Blockwise INT4 quantization (dense).
    let bq4 = BlockwiseQuantizer::new(4, 32).expect("valid quantizer");
    let q4_model = quantize_mlp_blockwise(&model, &bq4);
    let ppl = eval::perplexity(&q4_model, &mut DenseMlp, &corpus)?.perplexity;
    report(
        "BQ4 (dense)",
        model_memory_bytes(&config, 16.0, bq4.effective_bits_per_weight(), 1.0, None),
        ppl,
    );

    // SparseGPT-style static pruning at 50%.
    let pruner = StaticPruner::magnitude(PruningStructure::Unstructured);
    let pruned = prune_mlp_static(&model, &pruner, 0.5)?;
    let ppl = eval::perplexity(&pruned, &mut DenseMlp, &corpus)?.perplexity;
    report(
        "SparseGPT-style 50% (FP16 + mask)",
        model_memory_bytes(
            &config,
            16.0,
            16.0,
            0.5,
            Some(PruningStructure::Unstructured),
        ),
        ppl,
    );

    // DIP at several densities on the INT4 model.
    for density in [0.7f32, 0.5, 0.35] {
        let mut dip = Dip::for_target_density(density, &DensityAllocation::balanced())
            .expect("valid density");
        let ppl = eval::perplexity(&q4_model, &mut dip, &corpus)?.perplexity;
        report(
            &format!("BQ4 + DIP @ {:.0}% density", density * 100.0),
            model_memory_bytes(
                &config,
                16.0,
                bq4.effective_bits_per_weight(),
                f64::from(density),
                None,
            ),
            ppl,
        );
    }

    println!("\nDIP composes with quantization: the resident footprint shrinks with the");
    println!("density knob while the perplexity penalty stays far below lower-bit");
    println!("quantization or one-shot static pruning at the same footprint.");
    Ok(())
}
