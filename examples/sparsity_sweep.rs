//! Sparsity sweep: print the accuracy/perplexity-vs-density trade-off of the
//! main dynamic sparsity strategies on one model (a compact version of the
//! Fig. 8 Pareto study).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sparsity_sweep [density ...]
//! ```

use experiments::{MethodKind, Scale, Workbench};
use lm::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let densities: Vec<f32> = {
        let from_args: Vec<f32> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if from_args.is_empty() {
            vec![0.8, 0.6, 0.5, 0.4]
        } else {
            from_args
        }
    };

    let config = ModelConfig::phi3_mini_sim();
    let mut wb = Workbench::new(&config, Scale::Smoke, 29)?;
    println!(
        "model {}: dense perplexity {:.3}, dense accuracy 100.0%\n",
        config.name, wb.dense_ppl
    );
    println!(
        "{:<26} {:>10} {:>12} {:>10} {:>12}",
        "method", "target", "measured", "ppl", "accuracy %"
    );

    let methods = [
        MethodKind::GluOracle,
        MethodKind::UpPruning,
        MethodKind::Cats,
        MethodKind::DejaVu,
        MethodKind::Dip,
    ];
    for &density in &densities {
        for method in methods {
            match wb.quality(method, density) {
                Ok(q) => println!(
                    "{:<26} {:>10.2} {:>12.2} {:>10.3} {:>12.1}",
                    method.label(),
                    density,
                    q.measured_density,
                    q.perplexity,
                    q.accuracy_pct
                ),
                Err(e) if e.is_unsupported() => println!(
                    "{:<26} {:>10.2} {:>12} {:>10} {:>12}",
                    method.label(),
                    density,
                    "—",
                    "—",
                    "—"
                ),
                Err(e) => return Err(Box::new(e)),
            }
        }
        println!();
    }
    println!("DIP keeps both perplexity and task accuracy closest to the dense model as");
    println!("the density budget shrinks, without needing predictors or retraining.");
    Ok(())
}
