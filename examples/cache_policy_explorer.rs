//! Cache-policy explorer: replay the same DIP access trace through every
//! DRAM eviction policy (no cache, LRU, LFU, Belady's oracle) and compare it
//! against cache-aware masking — the Fig. 11 study as an interactive tool.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cache_policy_explorer
//! ```

use experiments::{MethodKind, Scale, Workbench};
use hwsim::EvictionPolicy;
use lm::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::phi3_mini_sim();
    let mut wb = Workbench::new(&config, Scale::Smoke, 17)?;
    let device = wb.table2_device();
    let density = 0.5;

    println!(
        "model {} on {} (DRAM holds ~55% of the INT4 weights), DIP @ {:.0}% density\n",
        config.name,
        device.name,
        density * 100.0
    );
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>14}",
        "configuration", "tok/s", "hit rate", "flash MiB/tok", "dram MiB/tok"
    );

    let mib = f64::from(1u32 << 20);
    for policy in [
        EvictionPolicy::None,
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::Belady,
    ] {
        let report = wb.throughput(MethodKind::Dip, density, &device, policy)?;
        println!(
            "{:<26} {:>10.2} {:>11.1}% {:>14.2} {:>14.2}",
            format!("DIP + {policy}"),
            report.throughput_tps,
            100.0 * report.hit_rate,
            report.flash_bytes / report.tokens.max(1) as f64 / mib,
            report.dram_bytes / report.tokens.max(1) as f64 / mib,
        );
    }

    // Cache-aware masking changes the mask itself, so it can beat even the
    // Belady oracle that is stuck with the mask DIP chose.
    let report = wb.throughput(
        MethodKind::DipCacheAware,
        density,
        &device,
        EvictionPolicy::Lfu,
    )?;
    println!(
        "{:<26} {:>10.2} {:>11.1}% {:>14.2} {:>14.2}",
        "DIP-CA + lfu (gamma=0.2)",
        report.throughput_tps,
        100.0 * report.hit_rate,
        report.flash_bytes / report.tokens.max(1) as f64 / mib,
        report.dram_bytes / report.tokens.max(1) as f64 / mib,
    );

    println!("\nBelady's oracle bounds what any eviction policy can do for a fixed mask;");
    println!("cache-aware masking side-steps the bound by choosing a cache-friendly mask.");
    Ok(())
}
