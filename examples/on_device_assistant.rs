//! On-device assistant scenario: stream tokens from a model that does not fit
//! in DRAM and compare how much interactive latency each sparsity strategy
//! recovers.
//!
//! This mirrors the paper's motivating use-case (Section 1): a phone runs a
//! chat assistant whose weights live in Flash; every generated token costs a
//! DRAM + Flash transfer, and dynamic sparsity plus caching decides whether
//! the assistant feels interactive.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example on_device_assistant
//! ```

use experiments::{MethodKind, Scale, Workbench};
use hwsim::{DeviceConfig, EvictionPolicy};
use lm::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::phi3_mini_sim();
    let mut wb = Workbench::new(&config, Scale::Smoke, 11)?;

    // A budget phone: 2 GiB-class DRAM share for the assistant, slow flash.
    // Scaled to the synthetic model: DRAM fits ~45% of the INT4 weights.
    let example = lm::MlpAccessRecord::dense();
    let layout = experiments::convert::layout_for_method(
        &config,
        &example,
        4.0,
        experiments::convert::StaticOverhead::default(),
    );
    let device = DeviceConfig {
        name: "budget-phone-assistant".to_string(),
        dram_capacity_bytes: ((layout.total_bytes() as f64) * 0.45) as u64,
        dram_bandwidth: 30.0 * hwsim::GB_PER_S,
        flash_bandwidth: 0.5 * hwsim::GB_PER_S,
    };
    println!(
        "assistant model: {} ({:.1} MiB at INT4), DRAM budget {:.1} MiB",
        config.name,
        layout.total_bytes() as f64 / (1 << 20) as f64,
        device.dram_capacity_bytes as f64 / (1 << 20) as f64
    );
    println!("(a real 7B-class model at INT4 is ~3.9 GiB against a ~2 GiB budget)\n");

    let scenarios = [
        (MethodKind::Dense, 1.0_f32),
        (MethodKind::GluPruning, 0.8),
        (MethodKind::UpPruning, 0.5),
        (MethodKind::Dip, 0.5),
        (MethodKind::DipCacheAware, 0.5),
    ];
    println!(
        "{:<28} {:>12} {:>14} {:>12}",
        "strategy", "tok/s", "ms / token", "hit rate"
    );
    for (method, density) in scenarios {
        let report = wb.throughput(method, density, &device, EvictionPolicy::Lfu)?;
        println!(
            "{:<28} {:>12.2} {:>14.1} {:>11.1}%",
            format!("{} @ {:.0}%", method.label(), density * 100.0),
            report.throughput_tps,
            report.latency_ms_per_token(),
            100.0 * report.hit_rate
        );
    }

    println!("\nInteractive use needs a few tokens per second: dynamic input pruning");
    println!("with cache-aware masking recovers most of the gap the dense model loses");
    println!("to Flash streaming.");
    Ok(())
}
