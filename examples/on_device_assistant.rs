//! On-device assistant scenario, multi-user edition: one phone-class device
//! serves several assistant sessions at once through the `serve` engine.
//!
//! The paper's motivating use-case (Section 1) is a single chat assistant
//! whose weights stream from Flash. A real deployment multiplexes *several*
//! sessions — keyboard suggestions, a chat window, a summariser — through
//! the same DRAM budget. This example runs that fleet under continuous
//! batching and compares how much interactive latency each sparsity strategy
//! recovers when the DRAM column cache is shared and contended.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example on_device_assistant
//! ```

use dynamic_sparsity::serve::{
    GenRequest, SchedulerPolicy, ServeConfig, ServeEngine, StrategySpec,
};
use lm::{build_synthetic, ModelConfig, SliceAxis};

const SESSIONS: usize = 6;
const TOKENS_PER_SESSION: usize = 12;

fn fleet(strategies: &[StrategySpec]) -> Vec<GenRequest> {
    (0..SESSIONS)
        .map(|i| {
            GenRequest::new(
                i as u64,
                vec![(i % 5) as u32 + 1, (i % 7) as u32 + 3],
                TOKENS_PER_SESSION,
                strategies[i % strategies.len()],
            )
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::phi3_mini_sim();

    // A budget phone with slow flash. Each session's context is budgeted to
    // what the assistant actually needs (32 tokens), and after pinning the
    // static weights + KV slots the DRAM column cache holds ~45% of the INT4
    // MLP weights.
    const KV_BUDGET: usize = 32;
    let layout = dynamic_sparsity::serve::layout::layout_for_serving(
        &config,
        [SliceAxis::Input; 3],
        4.0,
        SESSIONS,
        KV_BUDGET,
    );
    let device = hwsim::DeviceConfig {
        name: "budget-phone-assistant".to_string(),
        dram_capacity_bytes: layout.static_bytes + ((layout.mlp_bytes() as f64) * 0.45) as u64,
        dram_bandwidth: 30.0 * hwsim::GB_PER_S,
        flash_bandwidth: 0.5 * hwsim::GB_PER_S,
    };
    println!(
        "assistant model: {} ({:.1} MiB at INT4), DRAM budget {:.1} MiB, {} concurrent sessions",
        config.name,
        layout.total_bytes() as f64 / (1 << 20) as f64,
        device.dram_capacity_bytes as f64 / (1 << 20) as f64,
        SESSIONS,
    );
    println!("(a real 7B-class model at INT4 is ~3.9 GiB against a ~2 GiB budget)\n");

    let dip_ca = StrategySpec::DipCacheAware {
        density: 0.5,
        gamma: 0.2,
    };
    // homogeneous fleets per strategy, plus a heterogeneous mix: the chat
    // window streams dense while keyboard/summariser sessions run pruned —
    // any spec of the `dip_core::spec` family can ride the same engine run.
    let scenarios: Vec<(String, Vec<StrategySpec>)> = vec![
        ("dense".to_string(), vec![StrategySpec::Dense]),
        (
            "cats@0.50".to_string(),
            vec![StrategySpec::Cats { density: 0.5 }],
        ),
        (
            "dip@0.50".to_string(),
            vec![StrategySpec::Dip { density: 0.5 }],
        ),
        (dip_ca.label(), vec![dip_ca]),
        (
            "mix(dense+glu+dip+dip-ca)".to_string(),
            vec![
                StrategySpec::Dense,
                StrategySpec::GluPruning { density: 0.75 },
                StrategySpec::Dip { density: 0.5 },
                dip_ca,
            ],
        ),
    ];
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "strategy", "tok/s", "p50 ms", "p99 ms", "TTFT ms", "hit rate", "fairness"
    );
    for (label, strategies) in &scenarios {
        let model = build_synthetic(&config, 42)?;
        let mut engine = ServeEngine::new(
            model,
            ServeConfig::new(device.clone())
                .with_max_concurrent(SESSIONS)
                .with_kv_budget(KV_BUDGET),
        )?;
        let report = engine.run(fleet(strategies))?;
        println!(
            "{:<26} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>9.1}% {:>10.3}",
            label,
            report.aggregate_tps,
            1e3 * report.latency_p50_s,
            1e3 * report.latency_p99_s,
            1e3 * report.mean_first_token_s,
            100.0 * report.cache_hit_rate,
            report.fairness,
        );
    }

    // The scheduler axis: a long summarisation job next to short interactive
    // queries, FIFO vs shortest-remaining-first. The longer job needs a
    // bigger context budget, so this deployment re-sizes its DRAM for it.
    const MIXED_KV_BUDGET: usize = 64;
    let mixed_layout = dynamic_sparsity::serve::layout::layout_for_serving(
        &config,
        [SliceAxis::Input; 3],
        4.0,
        SESSIONS,
        MIXED_KV_BUDGET,
    );
    let mixed_device = hwsim::DeviceConfig {
        dram_capacity_bytes: mixed_layout.static_bytes
            + ((mixed_layout.mlp_bytes() as f64) * 0.45) as u64,
        ..device.clone()
    };
    println!(
        "\nmixed workload (1 long summary + {} short queries):",
        SESSIONS - 1
    );
    for scheduler in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::ShortestRemainingFirst,
    ] {
        let model = build_synthetic(&config, 42)?;
        let mut engine = ServeEngine::new(
            model,
            ServeConfig::new(mixed_device.clone())
                .with_max_concurrent(SESSIONS)
                .with_scheduler(scheduler)
                .with_kv_budget(MIXED_KV_BUDGET),
        )?;
        let mut requests = vec![GenRequest::new(
            99,
            vec![1, 2, 3],
            48,
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
        )];
        for i in 0..SESSIONS - 1 {
            requests.push(GenRequest::new(
                i as u64,
                vec![(i % 5) as u32 + 1],
                4,
                StrategySpec::DipCacheAware {
                    density: 0.5,
                    gamma: 0.2,
                },
            ));
        }
        let report = engine.run(requests)?;
        println!(
            "  {:<6} p50 {:>7.2} ms, p99 {:>7.2} ms, {:>9.2} tok/s, fairness {:.3}",
            scheduler.to_string(),
            1e3 * report.latency_p50_s,
            1e3 * report.latency_p99_s,
            report.aggregate_tps,
            report.fairness,
        );
    }

    // The memory axis: every assistant turn opens with the same system
    // prompt. With paged KV the sessions draw fixed-size pages from one
    // pool instead of reserving a flat context each, and with prefix
    // sharing enabled each turn adopts the registered system-prompt pages
    // copy-on-write instead of re-prefilling them.
    const PAGE_SIZE: usize = 8;
    const TURNS: usize = 24;
    const GEN_TOKENS: usize = 6;
    let system_prompt: Vec<u32> = (0..12u32).map(|i| i * 7 + 5).collect();
    let total_context = system_prompt.len() + 2 + GEN_TOKENS;
    let pool_pages = config.n_layers * lm::pages_spanning(total_context, PAGE_SIZE) * SESSIONS;
    println!(
        "\npaged KV ({TURNS} assistant turns over {SESSIONS} slots, \
         {pool_pages} pages of {PAGE_SIZE} positions):"
    );
    for sharing in [false, true] {
        let model = build_synthetic(&config, 42)?;
        let mut paged_config = ServeConfig::new(device.clone())
            .with_max_concurrent(SESSIONS)
            .with_kv_budget(KV_BUDGET)
            .with_paged_kv(PAGE_SIZE, pool_pages);
        if sharing {
            paged_config = paged_config.with_prefix_sharing();
        }
        let mut engine = ServeEngine::new(model, paged_config)?;
        let requests: Vec<GenRequest> = (0..TURNS)
            .map(|i| {
                let mut prompt = system_prompt.clone();
                prompt.extend([(i % 5) as u32 + 1, (i % 7) as u32 + 3]);
                GenRequest::new(
                    i as u64,
                    prompt,
                    GEN_TOKENS,
                    StrategySpec::Dip { density: 0.5 },
                )
                .with_shared_prefix(system_prompt.len())
            })
            .collect();
        let report = engine.run(requests)?;
        let paged = report
            .paged_kv
            .as_ref()
            .expect("paged engine reports stats");
        let lookups = paged.prefix_hits + paged.prefix_misses;
        println!(
            "  {:<8} {:>9.2} tok/s, TTFT {:>6.2} ms, pages high-water {:>3}/{}, \
             prefix hit rate {:>5.1}%, {:>3} prompt tokens never re-prefilled",
            if sharing { "shared" } else { "isolated" },
            report.aggregate_tps,
            1e3 * report.mean_first_token_s,
            paged.pages_high_water,
            paged.pool_pages,
            100.0 * paged.prefix_hits as f64 / (lookups.max(1) as f64),
            paged.prefix_tokens_saved,
        );
    }

    println!("\nDynamic input pruning with cache-aware masking keeps a shared DRAM cache");
    println!("hot across sessions: every user gets tokens faster than streaming the");
    println!("dense model, shortest-remaining-first keeps short queries snappy, and");
    println!("shared-prefix paging stops the fleet paying for the system prompt twice.");
    Ok(())
}
