//! Quickstart: build a synthetic SwiGLU model, compare the dense MLP against
//! Dynamic Input Pruning at 50 % density, and simulate on-device throughput.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dynamic_sparsity::dip::strategies::Dip;
use dynamic_sparsity::dip::DensityAllocation;
use dynamic_sparsity::hwsim::{DeviceConfig, EvictionPolicy};
use dynamic_sparsity::lm::{build_synthetic, eval, mlp::DenseMlp, ModelConfig};
use experiments::{MethodKind, Scale, Workbench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a synthetic SwiGLU transformer (the Phi-3-Mini analogue).
    let config = ModelConfig::phi3_mini_sim();
    let model = build_synthetic(&config, 42)?;
    println!(
        "model `{}`: {} layers, {} params ({:.1}% in MLP blocks)",
        config.name,
        config.n_layers,
        model.num_params(),
        100.0 * config.mlp_param_fraction()
    );

    // 2. Evaluate dense vs DIP perplexity on a held-out corpus.
    let corpus = eval::standard_eval_corpus(&model, 4, 48, 7)?;
    let dense = eval::perplexity(&model, &mut DenseMlp, &corpus)?;
    let mut dip = Dip::for_target_density(0.5, &DensityAllocation::balanced())
        .expect("0.5 is a valid target density");
    let sparse = eval::perplexity(&model, &mut dip, &corpus)?;
    println!(
        "perplexity: dense {:.3} -> DIP@50% {:.3} (+{:.3}), measured MLP density {:.2}",
        dense.perplexity,
        sparse.perplexity,
        sparse.perplexity - dense.perplexity,
        sparse.mean_mlp_density
    );

    // 3. Simulate throughput on a phone-class device whose DRAM holds only
    //    about half of the INT4 model.
    let mut wb = Workbench::new(&config, Scale::Smoke, 42)?;
    let device: DeviceConfig = wb.table2_device();
    let dense_tput = wb.throughput(MethodKind::Dense, 1.0, &device, EvictionPolicy::Lfu)?;
    let dip_tput = wb.throughput(MethodKind::Dip, 0.5, &device, EvictionPolicy::Lfu)?;
    let dip_ca_tput =
        wb.throughput(MethodKind::DipCacheAware, 0.5, &device, EvictionPolicy::Lfu)?;
    println!(
        "throughput on {}: dense {:.2} tok/s, DIP {:.2} tok/s, DIP-CA {:.2} tok/s",
        device.name, dense_tput.throughput_tps, dip_tput.throughput_tps, dip_ca_tput.throughput_tps
    );
    println!(
        "cache hit rate: DIP {:.1}% -> DIP-CA {:.1}%",
        100.0 * dip_tput.hit_rate,
        100.0 * dip_ca_tput.hit_rate
    );
    Ok(())
}
