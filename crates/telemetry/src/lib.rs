//! Zero-allocation observability for the serving stack.
//!
//! The serving engine is bitwise deterministic and its decode hot path is
//! allocation-free; telemetry must not cost either property. This crate is
//! built around that constraint:
//!
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms
//!   addressed by **integer handles** ([`CounterId`] / [`GaugeId`] /
//!   [`HistogramId`]). Names are resolved (and allocate) at *registration*
//!   only; every record operation is an index into a preallocated `Vec`.
//! * [`TraceRing`] — a preallocated ring buffer of `Copy` [`SpanEvent`]s
//!   stamped with both **virtual time** (the run's simulated clock, which is
//!   part of the deterministic computation) and **wall time** (host
//!   monotonic nanoseconds, observation only), so simulated cost and host
//!   compute cost can be told apart in one trace.
//! * [`Timeline`] — a time-sliced view over virtual time (tokens/s, SLO
//!   attainment, cache hit rate per window) whose per-window token counts
//!   sum exactly to the run totals.
//! * [`export`] — Prometheus text exposition, JSONL trace dump and a
//!   `chrome://tracing`-compatible span export, all hand-rendered strings
//!   (the workspace builds offline; see `crates/compat/serde`), plus
//!   format checkers the exporters' consumers use to self-validate.
//!
//! Determinism argument: every structure here is **write-only** from the
//! engine's point of view — the engine records into telemetry but never
//! reads a value back into any computation, so attaching or detaching any
//! sink cannot perturb a `ServeReport` (enforced by
//! `crates/serve/tests/open_loop_determinism.rs`). Wall-clock timestamps
//! live only in ring events and exports, never in metrics or reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod registry;
pub mod ring;
pub mod stats;
pub mod timeline;

pub use export::{
    check_exposition, check_jsonl, render_chrome_trace, render_prometheus,
    render_prometheus_merged, render_timeline_jsonl, render_trace_jsonl,
};
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use ring::{EventKind, SpanEvent, TraceRing};
pub use stats::percentile;
pub use timeline::{Timeline, WindowStats};

use std::time::Instant;

/// Sizing knobs of a [`Telemetry`] pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Capacity of the span ring buffer (events beyond it overwrite the
    /// oldest and are counted in [`TraceRing::dropped`]).
    pub ring_capacity: usize,
    /// Width of one [`Timeline`] window in virtual seconds.
    pub timeline_window_s: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 1 << 16,
            timeline_window_s: 0.05,
        }
    }
}

impl TelemetryConfig {
    /// Returns a copy with the given ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Returns a copy with the given timeline window width.
    pub fn with_timeline_window(mut self, window_s: f64) -> Self {
        self.timeline_window_s = window_s;
        self
    }
}

/// One attachable telemetry pipeline: a metrics registry, a span ring and a
/// virtual-time timeline, sharing one wall-clock epoch.
///
/// The struct is plain data plus an [`Instant`] epoch; it is `Send`, so a
/// caller can attach one pipeline per engine and fan engines out across OS
/// threads (each pipeline is single-writer by construction — the engine that
/// owns it).
#[derive(Debug)]
pub struct Telemetry {
    /// Handle-addressed counters, gauges and histograms.
    pub registry: MetricsRegistry,
    /// Preallocated span/event ring.
    pub ring: TraceRing,
    /// Per-virtual-time-window aggregates.
    pub timeline: Timeline,
    epoch: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// Creates a pipeline; all ring storage is allocated here, up front.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            ring: TraceRing::new(config.ring_capacity),
            timeline: Timeline::new(config.timeline_window_s),
            epoch: Instant::now(),
        }
    }

    /// Monotonic nanoseconds since this pipeline was created. Observation
    /// only: wall time is stamped into ring events and never enters any
    /// deterministic computation.
    pub fn wall_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one span event, stamping the current wall clock. Allocation
    /// free: the ring either appends into reserved capacity or overwrites
    /// its oldest slot.
    pub fn event(&mut self, kind: EventKind, stream: u32, virtual_s: f64, a: u64, b: f64) {
        let wall_ns = self.wall_ns();
        self.ring.push(SpanEvent {
            kind,
            stream,
            virtual_s,
            wall_ns,
            a,
            b,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_wires_the_parts_together() {
        let mut tel = Telemetry::new(
            TelemetryConfig::default()
                .with_ring_capacity(4)
                .with_timeline_window(0.5),
        );
        let c = tel.registry.counter("tokens_total", "tokens");
        tel.registry.inc(c);
        tel.event(EventKind::TokenSettle, 3, 0.25, 1, 0.001);
        tel.timeline.observe_token(0.25, false, 2, 1);
        assert_eq!(tel.registry.counter_value(c), 1.0);
        assert_eq!(tel.ring.len(), 1);
        let e = tel.ring.iter().next().unwrap();
        assert_eq!(e.stream, 3);
        assert_eq!(tel.timeline.total_tokens(), 1);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let tel = Telemetry::default();
        let a = tel.wall_ns();
        let b = tel.wall_ns();
        assert!(b >= a);
    }
}
