//! Time-sliced aggregates over the run's virtual clock.
//!
//! A [`Timeline`] divides virtual time into fixed-width windows and
//! accumulates per-window token counts, cache outcomes and completion/SLO
//! tallies — turning an open-loop run (e.g. the diurnal workload) into an
//! inspectable series: tokens/s, attainment and hit rate per window.
//!
//! Accounting invariant: every observed token lands in exactly one window,
//! so the sum of window token counts equals the run's total served tokens
//! (pinned by `crates/serve/tests/open_loop_determinism.rs` and checked
//! again by the `serving` bin before it writes an export).
//!
//! Window storage grows on demand (amortised, and never in the steady-state
//! decode path once a run's horizon has been seen); callers that need strict
//! zero allocation can pre-size it with [`Timeline::reserve_until`].

/// Aggregates of one virtual-time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Tokens served (prefill + decode) whose settle time fell in this
    /// window.
    pub tokens: u64,
    /// Prefill tokens among them.
    pub prefill_tokens: u64,
    /// Decode (generated) tokens among them.
    pub decode_tokens: u64,
    /// Shared-cache hits of those tokens' weight accesses.
    pub hits: u64,
    /// Shared-cache misses of those tokens' weight accesses.
    pub misses: u64,
    /// Requests that completed in this window.
    pub completed: u64,
    /// Completions that met their SLO.
    pub slo_met: u64,
}

impl WindowStats {
    /// Cache hit rate of the window, 1.0 when nothing was accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// SLO attainment over the window's completions, 1.0 when none.
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }
}

/// The time-sliced view; see the module docs.
#[derive(Debug)]
pub struct Timeline {
    window_s: f64,
    windows: Vec<WindowStats>,
}

impl Timeline {
    /// Creates a timeline with the given window width (clamped to a minimum
    /// of 1 µs so a degenerate width cannot divide by zero).
    pub fn new(window_s: f64) -> Self {
        Timeline {
            window_s: if window_s.is_finite() && window_s > 1e-6 {
                window_s
            } else {
                1e-6
            },
            windows: Vec::new(),
        }
    }

    /// Window width in virtual seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// The windows observed so far, earliest first. Trailing windows with no
    /// observations may be absent; indices map to `[i·w, (i+1)·w)`.
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    fn index(&self, virtual_s: f64) -> usize {
        if !(virtual_s.is_finite() && virtual_s > 0.0) {
            return 0;
        }
        (virtual_s / self.window_s) as usize
    }

    /// Pre-sizes the window storage to cover `virtual_s`, so later
    /// observations up to that horizon are allocation-free.
    pub fn reserve_until(&mut self, virtual_s: f64) {
        let needed = self.index(virtual_s) + 1;
        if self.windows.len() < needed {
            self.windows.resize(needed, WindowStats::default());
        }
    }

    #[inline]
    fn window_mut(&mut self, virtual_s: f64) -> &mut WindowStats {
        let i = self.index(virtual_s);
        if i >= self.windows.len() {
            self.windows.resize(i + 1, WindowStats::default());
        }
        &mut self.windows[i]
    }

    /// Records one served token settled at `virtual_s`.
    #[inline]
    pub fn observe_token(&mut self, virtual_s: f64, was_prefill: bool, hits: u64, misses: u64) {
        let w = self.window_mut(virtual_s);
        w.tokens += 1;
        if was_prefill {
            w.prefill_tokens += 1;
        } else {
            w.decode_tokens += 1;
        }
        w.hits += hits;
        w.misses += misses;
    }

    /// Records one request completion at `virtual_s`.
    #[inline]
    pub fn observe_completion(&mut self, virtual_s: f64, slo_met: bool) {
        let w = self.window_mut(virtual_s);
        w.completed += 1;
        if slo_met {
            w.slo_met += 1;
        }
    }

    /// Total tokens across all windows (must equal the run's served total).
    pub fn total_tokens(&self) -> u64 {
        self.windows.iter().map(|w| w.tokens).sum()
    }

    /// Total decode tokens across all windows.
    pub fn total_decode_tokens(&self) -> u64 {
        self.windows.iter().map(|w| w.decode_tokens).sum()
    }

    /// Total prefill tokens across all windows.
    pub fn total_prefill_tokens(&self) -> u64 {
        self.windows.iter().map(|w| w.prefill_tokens).sum()
    }

    /// Renders the timeline as a markdown table: one row per window with
    /// tokens/s, decode tokens/s, hit rate and SLO attainment.
    pub fn render_table(&self) -> String {
        let mut out = String::from(
            "| window | t start (s) | tokens | tok/s | decode tok/s | hit rate | attainment |\n\
             |---|---|---|---|---|---|---|\n",
        );
        for (i, w) in self.windows.iter().enumerate() {
            out.push_str(&format!(
                "| {} | {:.4} | {} | {:.1} | {:.1} | {:.3} | {:.3} |\n",
                i,
                i as f64 * self.window_s,
                w.tokens,
                w.tokens as f64 / self.window_s,
                w.decode_tokens as f64 / self.window_s,
                w.hit_rate(),
                w.attainment(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_land_in_the_right_window_and_sum_exactly() {
        let mut t = Timeline::new(1.0);
        t.observe_token(0.2, true, 3, 1);
        t.observe_token(0.9, false, 1, 0);
        t.observe_token(1.1, false, 0, 2);
        t.observe_token(5.0, false, 0, 0); // boundary: window 5
        assert_eq!(t.windows().len(), 6);
        assert_eq!(t.windows()[0].tokens, 2);
        assert_eq!(t.windows()[0].prefill_tokens, 1);
        assert_eq!(t.windows()[1].tokens, 1);
        assert_eq!(t.windows()[5].tokens, 1);
        assert_eq!(t.total_tokens(), 4);
        assert_eq!(t.total_decode_tokens() + t.total_prefill_tokens(), 4);
    }

    #[test]
    fn completions_and_attainment() {
        let mut t = Timeline::new(0.5);
        t.observe_completion(0.1, true);
        t.observe_completion(0.2, false);
        t.observe_completion(0.8, true);
        assert_eq!(t.windows()[0].completed, 2);
        assert!((t.windows()[0].attainment() - 0.5).abs() < 1e-12);
        assert!((t.windows()[1].attainment() - 1.0).abs() < 1e-12);
        assert!((WindowStats::default().attainment() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reserve_makes_later_observations_allocation_free() {
        let mut t = Timeline::new(0.1);
        t.reserve_until(10.0);
        let cap = t.windows.capacity();
        for i in 0..100 {
            t.observe_token(i as f64 * 0.1, false, 1, 0);
        }
        assert_eq!(t.windows.capacity(), cap);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let mut t = Timeline::new(0.0);
        assert!(t.window_s() > 0.0);
        t.observe_token(f64::NAN, false, 0, 0);
        t.observe_token(-1.0, false, 0, 0);
        assert_eq!(t.windows()[0].tokens, 2);
        assert!((t.windows()[0].hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_one_row_per_window() {
        let mut t = Timeline::new(1.0);
        t.observe_token(0.5, false, 1, 1);
        t.observe_token(1.5, true, 0, 0);
        let table = t.render_table();
        assert_eq!(table.lines().count(), 4); // header + separator + 2 rows
        assert!(table.contains("| 0 |"));
        assert!(table.contains("| 1 |"));
    }
}
