//! A preallocated ring buffer of `Copy` span events.
//!
//! The engine's hot loop may emit several events per served token; buffering
//! them in a growable `Vec` would allocate mid-decode and an unbounded log
//! would grow without limit on long runs. The ring fixes both: storage is
//! reserved once at construction, pushes never allocate, and when the ring
//! is full the **oldest** event is overwritten (and counted in
//! [`TraceRing::dropped`]) — the export keeps the most recent window of the
//! run, which is the window an operator debugging a latency spike wants.

/// What a [`SpanEvent`] records. The `a`/`b` payload fields are
/// per-kind (documented on each variant); `stream` is the session's stream
/// id where applicable and `u32::MAX` otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A serving run began. `a` = 0, `b` = 0.
    RunStart,
    /// A serving run drained. `a` = total schedule positions, `b` =
    /// makespan in virtual seconds.
    RunEnd,
    /// The planner formed a prefill chunk. `a` = chunk height (rows),
    /// `b` = 0.
    PlanChunk,
    /// The planner formed a cross-session batch lane. `a` = lane width
    /// (rows), `b` = 0.
    PlanLane,
    /// One token was served, priced and settled on the virtual clock.
    /// `a` = `hits << 32 | misses` of the token's cache accesses, `b` = the
    /// token's priced service latency in virtual seconds.
    TokenSettle,
    /// An arrival was admitted to the waiting queue. `a` = queue depth
    /// after admission, `b` = arrival time in virtual seconds.
    Admit,
    /// An arrival was shed. `a` = shed-reason index (0 = rate-limited,
    /// 1 = tier-quota, 2 = queue-full), `b` = arrival time.
    Shed,
    /// An active session was preempted and its KV state parked to Flash.
    /// `a` = KV positions swapped out, `b` = swap time in virtual seconds.
    Preempt,
    /// A parked session resumed. `a` = KV positions swapped back in,
    /// `b` = swap time in virtual seconds.
    Resume,
    /// A session completed. `a` = generated tokens, `b` = completion time
    /// in virtual seconds.
    Complete,
    /// A fault-injection event struck a live request: `a` = fault code
    /// (0 = client cancel, 1 = deadline expired, 2 = worker abort/failure,
    /// 3 = KV page loss, 4 = retry re-admission, 5 = degraded admission),
    /// `b` = virtual time.
    Fault,
}

impl EventKind {
    /// Stable lower-case name used by the JSONL and chrome exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RunStart => "run_start",
            EventKind::RunEnd => "run_end",
            EventKind::PlanChunk => "plan_chunk",
            EventKind::PlanLane => "plan_lane",
            EventKind::TokenSettle => "token_settle",
            EventKind::Admit => "admit",
            EventKind::Shed => "shed",
            EventKind::Preempt => "preempt",
            EventKind::Resume => "resume",
            EventKind::Complete => "complete",
            EventKind::Fault => "fault",
        }
    }
}

/// One recorded event: fixed-size, `Copy`, no heap payload.
///
/// Every event carries **two clocks**: `virtual_s` is the run's simulated
/// clock (deterministic, part of the computation being observed) and
/// `wall_ns` is host monotonic time since the pipeline's epoch (pure
/// observation — it varies run to run and never feeds back into results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// What happened.
    pub kind: EventKind,
    /// Session stream id, or `u32::MAX` when not session-scoped.
    pub stream: u32,
    /// Virtual-clock timestamp in seconds.
    pub virtual_s: f64,
    /// Host monotonic nanoseconds since the [`crate::Telemetry`] epoch.
    pub wall_ns: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: f64,
}

/// The ring itself. See the module docs for the overwrite contract.
#[derive(Debug)]
pub struct TraceRing {
    events: Vec<SpanEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring with room for `capacity` events (minimum 1), fully
    /// preallocated.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, overwriting the oldest when full. Never allocates:
    /// the backing storage was reserved at construction.
    #[inline]
    pub fn push(&mut self, event: SpanEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.dropped += 1;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events[self.head..]
            .iter()
            .chain(self.events[..self.head].iter())
    }

    /// Drops every event (capacity is kept).
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(a: u64) -> SpanEvent {
        SpanEvent {
            kind: EventKind::TokenSettle,
            stream: 0,
            virtual_s: a as f64,
            wall_ns: a,
            a,
            b: 0.0,
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let held: Vec<u64> = ring.iter().map(|e| e.a).collect();
        assert_eq!(held, vec![2, 3, 4]);
    }

    #[test]
    fn pushes_do_not_reallocate() {
        let mut ring = TraceRing::new(8);
        let cap_before = ring.events.capacity();
        for i in 0..100 {
            ring.push(ev(i));
        }
        assert_eq!(ring.events.capacity(), cap_before);
        assert_eq!(ring.len(), 8);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut ring = TraceRing::new(2);
        ring.push(ev(0));
        ring.push(ev(1));
        ring.push(ev(2));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.capacity(), 2);
        ring.push(ev(9));
        assert_eq!(ring.iter().next().unwrap().a, 9);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = TraceRing::new(0);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.iter().next().unwrap().a, 2);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::TokenSettle.name(), "token_settle");
        assert_eq!(EventKind::RunStart.name(), "run_start");
    }
}
