//! Handle-addressed metrics: counters, gauges, fixed-bucket histograms.
//!
//! # Handle lifecycle
//!
//! Registration (`counter` / `gauge` / `histogram`) interns the series name
//! in a map and returns a dense integer handle — the index of the series'
//! slot in a plain `Vec`. Registration is idempotent (the same name returns
//! the same handle) and is the **only** allocating operation; it belongs in
//! setup code (engine attach, run start, session admission). Recording
//! (`inc` / `add` / `set` / `observe`) is an array index plus an add — safe
//! inside a zero-allocation decode loop (`tests/zero_alloc.rs` pins this).
//!
//! Labels are baked into the series name at registration time
//! (`tokens_total{tier="premium"}`): the registry stores flat series, and
//! the Prometheus renderer groups them into families by the name before the
//! `{`. Values are `f64` — exact for integer counts below 2^53, uniform for
//! byte totals and seconds.

use std::collections::HashMap;

/// Handle of a registered counter (monotone non-decreasing value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(pub(crate) usize);

/// Handle of a registered gauge (set to arbitrary values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(pub(crate) usize);

/// Handle of a registered fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct Series {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) value: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Histogram {
    pub(crate) name: String,
    pub(crate) help: String,
    /// Upper bounds of the finite buckets, ascending; an implicit `+Inf`
    /// bucket follows.
    pub(crate) bounds: Vec<f64>,
    /// Cumulative-style storage is rebuilt at render time; these are plain
    /// per-bucket counts (`bounds.len() + 1` slots, last = overflow).
    pub(crate) counts: Vec<u64>,
    pub(crate) sum: f64,
    pub(crate) count: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Counter(usize),
    Gauge(usize),
    Histogram(usize),
}

/// A pre-registered metrics registry. See the module docs for the handle
/// lifecycle and the zero-allocation contract.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    pub(crate) counters: Vec<Series>,
    pub(crate) gauges: Vec<Series>,
    pub(crate) histograms: Vec<Histogram>,
    index: HashMap<String, Slot>,
    const_labels: Vec<(String, String)>,
}

/// Splices extra labels into a series name: `name{a="1"}` + `("b", "2")` →
/// `name{a="1",b="2"}`; a bare name gains a fresh label set.
pub(crate) fn merge_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(open) => format!("{open},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Creates a registry whose every series carries the given constant
    /// labels (e.g. `cell="dense/fifo"` when several engines export into one
    /// exposition).
    pub fn with_const_labels(labels: &[(&str, &str)]) -> Self {
        MetricsRegistry {
            const_labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            ..MetricsRegistry::default()
        }
    }

    fn decorate(&self, name: &str) -> String {
        let mut out = name.to_string();
        for (k, v) in &self.const_labels {
            out = merge_label(&out, k, v);
        }
        out
    }

    /// Registers (or looks up) a counter. Idempotent per name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str, help: &str) -> CounterId {
        let full = self.decorate(name);
        if let Some(slot) = self.index.get(&full) {
            match slot {
                Slot::Counter(i) => return CounterId(*i),
                _ => panic!("metric `{full}` already registered with a different kind"),
            }
        }
        let id = self.counters.len();
        self.counters.push(Series {
            name: full.clone(),
            help: help.to_string(),
            value: 0.0,
        });
        self.index.insert(full, Slot::Counter(id));
        CounterId(id)
    }

    /// Registers (or looks up) a gauge. Idempotent per name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str, help: &str) -> GaugeId {
        let full = self.decorate(name);
        if let Some(slot) = self.index.get(&full) {
            match slot {
                Slot::Gauge(i) => return GaugeId(*i),
                _ => panic!("metric `{full}` already registered with a different kind"),
            }
        }
        let id = self.gauges.len();
        self.gauges.push(Series {
            name: full.clone(),
            help: help.to_string(),
            value: 0.0,
        });
        self.index.insert(full, Slot::Gauge(id));
        GaugeId(id)
    }

    /// Registers (or looks up) a histogram with the given ascending finite
    /// bucket bounds (an implicit `+Inf` bucket is added). Idempotent per
    /// name; the first registration's bounds win.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind, or
    /// if `bounds` is not strictly ascending.
    pub fn histogram(&mut self, name: &str, help: &str, bounds: &[f64]) -> HistogramId {
        let full = self.decorate(name);
        if let Some(slot) = self.index.get(&full) {
            match slot {
                Slot::Histogram(i) => return HistogramId(*i),
                _ => panic!("metric `{full}` already registered with a different kind"),
            }
        }
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let id = self.histograms.len();
        self.histograms.push(Histogram {
            name: full.clone(),
            help: help.to_string(),
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        });
        self.index.insert(full, Slot::Histogram(id));
        HistogramId(id)
    }

    /// Adds 1 to a counter. Zero allocation.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1.0;
    }

    /// Adds `delta` to a counter. Zero allocation.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: f64) {
        self.counters[id.0].value += delta;
    }

    /// Sets a gauge. Zero allocation.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
    }

    /// Records one histogram observation (linear scan over the fixed bucket
    /// bounds — registries keep bucket counts small). Zero allocation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        let h = &mut self.histograms[id.0];
        let mut bucket = h.bounds.len();
        for (i, &bound) in h.bounds.iter().enumerate() {
            if value <= bound {
                bucket = i;
                break;
            }
        }
        h.counts[bucket] += 1;
        h.sum += value;
        h.count += 1;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> f64 {
        self.counters[id.0].value
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Total observations of a histogram.
    pub fn histogram_count(&self, id: HistogramId) -> u64 {
        self.histograms[id.0].count
    }

    /// Sum of all observations of a histogram.
    pub fn histogram_sum(&self, id: HistogramId) -> f64 {
        self.histograms[id.0].sum
    }

    /// Number of registered series (counters + gauges + histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Default latency histogram bounds in seconds: half-decade steps from 10 µs
/// to 10 s — wide enough for both the tiny test models (sub-millisecond
/// virtual tokens) and full-size serving latencies.
pub const LATENCY_BOUNDS_S: [f64; 13] = [
    1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1, 1.0, 3.16, 10.0,
];

/// Default batch-width histogram bounds (lanes/chunks are small powers of
/// two, bounded by the engine's slot count and `MAX_PREFILL_CHUNK`).
pub const WIDTH_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_kinds_collide() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("tokens_total", "tokens");
        let b = r.counter("tokens_total", "ignored on re-registration");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        let g = r.gauge("queue_depth", "depth");
        assert_ne!(a.0, usize::MAX);
        r.set(g, 7.0);
        assert_eq!(r.gauge_value(g), 7.0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collision_panics() {
        let mut r = MetricsRegistry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    fn counter_and_histogram_record() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("n", "");
        r.inc(c);
        r.add(c, 2.5);
        assert_eq!(r.counter_value(c), 3.5);

        let h = r.histogram("lat", "", &[0.1, 1.0]);
        r.observe(h, 0.05); // bucket 0
        r.observe(h, 0.5); // bucket 1
        r.observe(h, 5.0); // overflow
        assert_eq!(r.histogram_count(h), 3);
        assert!((r.histogram_sum(h) - 5.55).abs() < 1e-12);
        assert_eq!(r.histograms[h.0].counts, vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        MetricsRegistry::new().histogram("h", "", &[1.0, 0.5]);
    }

    #[test]
    fn const_labels_are_baked_into_names() {
        let mut r = MetricsRegistry::with_const_labels(&[("cell", "dense/fifo")]);
        let a = r.counter("tokens_total", "");
        assert_eq!(r.counters[a.0].name, "tokens_total{cell=\"dense/fifo\"}");
        let b = r.counter("tokens_total{tier=\"premium\"}", "");
        assert_eq!(
            r.counters[b.0].name,
            "tokens_total{tier=\"premium\",cell=\"dense/fifo\"}"
        );
    }

    #[test]
    fn merge_label_handles_both_shapes() {
        assert_eq!(merge_label("m", "k", "v"), "m{k=\"v\"}");
        assert_eq!(merge_label("m{a=\"1\"}", "k", "v"), "m{a=\"1\",k=\"v\"}");
    }
}
