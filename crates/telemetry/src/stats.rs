//! Shared statistics helpers (one percentile implementation for the whole
//! workspace; `serve::report` re-exports it).

/// Nearest-rank percentile of an unsorted sample; `q` is clamped to
/// `[0, 1]`.
///
/// Every input is total-ordered (`f64::total_cmp`), so the function never
/// panics: an **empty sample returns `0.0`** by definition (there is no
/// latency to report, and reports render the run as idle rather than
/// crashing), a single-element sample returns that element for every `q`,
/// and NaNs sort last instead of aborting the sort.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_contract() {
        let v = vec![4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.5], 0.99), 7.5);
    }
}
