//! Text exporters and format checkers.
//!
//! The workspace builds offline against no-op serde stand-ins, so every
//! export format here is rendered by hand: Prometheus text exposition
//! ([`render_prometheus`] / [`render_prometheus_merged`]), a JSONL trace
//! dump ([`render_trace_jsonl`] / [`render_timeline_jsonl`]) and a
//! `chrome://tracing`-compatible span export ([`render_chrome_trace`]).
//! [`check_exposition`] and [`check_jsonl`] are the matching line-format
//! validators; the `serving` bin runs them on its own output before writing,
//! and CI runs them again on the written artifacts.

use crate::registry::{merge_label, MetricsRegistry};
use crate::ring::{EventKind, TraceRing};
use crate::timeline::Timeline;
use std::fmt::Write as _;

/// Family name of a series: everything before the label block.
fn family(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders one registry as Prometheus text exposition.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    render_prometheus_merged(&[registry])
}

/// Renders several registries (e.g. one per serving cell, distinguished by
/// constant labels) into one exposition: `# HELP`/`# TYPE` are emitted once
/// per family, followed by every registry's samples of that family.
pub fn render_prometheus_merged(registries: &[&MetricsRegistry]) -> String {
    // family -> (kind, help), in first-seen order
    let mut families: Vec<(String, &'static str, String)> = Vec::new();
    let mut samples: Vec<(usize, String)> = Vec::new(); // (family index, line)
    let family_index = |families: &mut Vec<(String, &'static str, String)>,
                        name: &str,
                        kind: &'static str,
                        help: &str|
     -> usize {
        let fam = family(name);
        if let Some(i) = families.iter().position(|(f, _, _)| f == fam) {
            return i;
        }
        families.push((fam.to_string(), kind, help.to_string()));
        families.len() - 1
    };

    for reg in registries {
        for series in &reg.counters {
            let i = family_index(&mut families, &series.name, "counter", &series.help);
            samples.push((i, format!("{} {}", series.name, fmt_value(series.value))));
        }
        for series in &reg.gauges {
            let i = family_index(&mut families, &series.name, "gauge", &series.help);
            samples.push((i, format!("{} {}", series.name, fmt_value(series.value))));
        }
        for hist in &reg.histograms {
            let i = family_index(&mut families, &hist.name, "histogram", &hist.help);
            let fam = family(&hist.name).to_string();
            let labels = &hist.name[fam.len()..]; // "" or "{...}"
            let mut cumulative = 0u64;
            for (bi, bound) in hist.bounds.iter().enumerate() {
                cumulative += hist.counts[bi];
                let series =
                    merge_label(&format!("{fam}_bucket{labels}"), "le", &fmt_value(*bound));
                samples.push((i, format!("{series} {cumulative}")));
            }
            let series = merge_label(&format!("{fam}_bucket{labels}"), "le", "+Inf");
            samples.push((i, format!("{series} {}", hist.count)));
            samples.push((i, format!("{fam}_sum{labels} {}", fmt_value(hist.sum))));
            samples.push((i, format!("{fam}_count{labels} {}", hist.count)));
        }
    }

    let mut out = String::new();
    for (i, (fam, kind, help)) in families.iter().enumerate() {
        let _ = writeln!(out, "# HELP {fam} {help}");
        let _ = writeln!(out, "# TYPE {fam} {kind}");
        for (_, line) in samples.iter().filter(|(fi, _)| *fi == i) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses `{k="v",...}` starting at the `{`; returns the byte length of the
/// label block, or an error description.
fn check_label_block(s: &str) -> std::result::Result<usize, String> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes[0], b'{');
    let mut i = 1;
    loop {
        if i >= s.len() {
            return Err("unterminated label block".to_string());
        }
        if bytes[i] == b'}' {
            return Ok(i + 1);
        }
        let name_start = i;
        while i < s.len() && bytes[i] != b'=' && bytes[i] != b'}' {
            i += 1;
        }
        if i >= s.len() || bytes[i] != b'=' {
            return Err("label without `=`".to_string());
        }
        if !valid_label_name(&s[name_start..i]) {
            return Err(format!("invalid label name `{}`", &s[name_start..i]));
        }
        i += 1;
        if i >= s.len() || bytes[i] != b'"' {
            return Err("label value must be quoted".to_string());
        }
        i += 1;
        while i < s.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' {
                i += 1; // escaped char
            }
            i += 1;
        }
        if i >= s.len() {
            return Err("unterminated label value".to_string());
        }
        i += 1; // closing quote
        if i < s.len() && bytes[i] == b',' {
            i += 1;
        }
    }
}

/// Validates Prometheus text-exposition lines: comment structure, sample
/// name/label/value syntax, and `# TYPE` placement (at most one per family,
/// before that family's first sample). Returns the first offending line.
///
/// # Errors
///
/// Returns `Err(description)` naming the first malformed line.
pub fn check_exposition(text: &str) -> std::result::Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    let mut sampled: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(rest) = rest.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: HELP for invalid metric name `{name}`"));
                }
            } else if let Some(rest) = rest.strip_prefix("TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: TYPE for invalid metric name `{name}`"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type `{kind}`"));
                }
                if typed.iter().any(|t| t == name) {
                    return Err(format!("line {n}: duplicate TYPE for `{name}`"));
                }
                if sampled.iter().any(|s| s == name) {
                    return Err(format!("line {n}: TYPE for `{name}` after its samples"));
                }
                typed.push(name.to_string());
            }
            // other comments are legal and ignored
            continue;
        }
        // sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {n}: sample without value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name `{name}`"));
        }
        let mut rest = &line[name_end..];
        if rest.starts_with('{') {
            let consumed = check_label_block(rest).map_err(|e| format!("line {n}: {e}"))?;
            rest = &rest[consumed..];
        }
        let value = rest.trim_start_matches(' ');
        if value.is_empty() || value.contains(' ') {
            // a trailing timestamp is legal Prometheus but our renderer
            // never emits one; reject to keep the checker strict
            return Err(format!("line {n}: expected exactly one value"));
        }
        let ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !ok {
            return Err(format!("line {n}: unparseable value `{value}`"));
        }
        // histogram machine series map onto their base family for the
        // TYPE-before-sample check
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.iter().any(|t| t == b))
            .unwrap_or(name);
        sampled.push(base.to_string());
    }
    Ok(())
}

fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders ring events as one JSON object per line. Each line carries the
/// event kind, the owning cell label, both clocks and the kind-specific
/// payload (field semantics in [`EventKind`]).
pub fn render_trace_jsonl(cells: &[(&str, &TraceRing)]) -> String {
    let mut out = String::new();
    for (label, ring) in cells {
        for e in ring.iter() {
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"cell\":\"{}\",\"virtual_s\":{},\"wall_ns\":{}",
                e.kind.name(),
                label,
                fmt_json_f64(e.virtual_s),
                e.wall_ns
            );
            if e.stream != u32::MAX {
                let _ = write!(out, ",\"stream\":{}", e.stream);
            }
            let _ = writeln!(out, ",\"a\":{},\"b\":{}}}", e.a, fmt_json_f64(e.b));
        }
    }
    out
}

/// Renders a timeline as JSONL window records (`"kind":"window"`), one per
/// virtual-time window — the inspectable series (tok/s, attainment, hit
/// rate) of the run. Window token counts sum exactly to the run's totals.
pub fn render_timeline_jsonl(label: &str, timeline: &Timeline) -> String {
    let mut out = String::new();
    for (i, w) in timeline.windows().iter().enumerate() {
        let _ = writeln!(
            out,
            "{{\"kind\":\"window\",\"cell\":\"{}\",\"index\":{},\"t_start_s\":{},\
             \"tokens\":{},\"prefill_tokens\":{},\"decode_tokens\":{},\
             \"hits\":{},\"misses\":{},\"completed\":{},\"slo_met\":{},\
             \"tok_per_s\":{},\"hit_rate\":{},\"attainment\":{}}}",
            label,
            i,
            fmt_json_f64(i as f64 * timeline.window_s()),
            w.tokens,
            w.prefill_tokens,
            w.decode_tokens,
            w.hits,
            w.misses,
            w.completed,
            w.slo_met,
            fmt_json_f64(w.tokens as f64 / timeline.window_s()),
            fmt_json_f64(w.hit_rate()),
            fmt_json_f64(w.attainment()),
        );
    }
    out
}

/// Minimal recursive-descent JSON value parser used by [`check_jsonl`].
/// Returns the byte index just past the parsed value.
fn parse_json_value(s: &[u8], mut i: usize) -> std::result::Result<usize, String> {
    fn skip_ws(s: &[u8], mut i: usize) -> usize {
        while i < s.len() && matches!(s[i], b' ' | b'\t' | b'\r' | b'\n') {
            i += 1;
        }
        i
    }
    fn parse_string(s: &[u8], mut i: usize) -> std::result::Result<usize, String> {
        debug_assert_eq!(s[i], b'"');
        i += 1;
        while i < s.len() {
            match s[i] {
                b'"' => return Ok(i + 1),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        Err("unterminated string".to_string())
    }
    i = skip_ws(s, i);
    if i >= s.len() {
        return Err("unexpected end of input".to_string());
    }
    match s[i] {
        b'{' => {
            i = skip_ws(s, i + 1);
            if i < s.len() && s[i] == b'}' {
                return Ok(i + 1);
            }
            loop {
                i = skip_ws(s, i);
                if i >= s.len() || s[i] != b'"' {
                    return Err("object key must be a string".to_string());
                }
                i = parse_string(s, i)?;
                i = skip_ws(s, i);
                if i >= s.len() || s[i] != b':' {
                    return Err("missing `:` after object key".to_string());
                }
                i = parse_json_value(s, i + 1)?;
                i = skip_ws(s, i);
                match s.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => return Ok(i + 1),
                    _ => return Err("expected `,` or `}` in object".to_string()),
                }
            }
        }
        b'[' => {
            i = skip_ws(s, i + 1);
            if i < s.len() && s[i] == b']' {
                return Ok(i + 1);
            }
            loop {
                i = parse_json_value(s, i)?;
                i = skip_ws(s, i);
                match s.get(i) {
                    Some(b',') => i += 1,
                    Some(b']') => return Ok(i + 1),
                    _ => return Err("expected `,` or `]` in array".to_string()),
                }
            }
        }
        b'"' => parse_string(s, i),
        b't' => expect_literal(s, i, b"true"),
        b'f' => expect_literal(s, i, b"false"),
        b'n' => expect_literal(s, i, b"null"),
        _ => {
            let start = i;
            while i < s.len() && matches!(s[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                i += 1;
            }
            let text = std::str::from_utf8(&s[start..i]).unwrap_or("");
            text.parse::<f64>()
                .map(|_| i)
                .map_err(|_| format!("invalid number `{text}`"))
        }
    }
}

fn expect_literal(s: &[u8], i: usize, lit: &[u8]) -> std::result::Result<usize, String> {
    if s.len() >= i + lit.len() && &s[i..i + lit.len()] == lit {
        Ok(i + lit.len())
    } else {
        Err(format!(
            "invalid literal (expected `{}`)",
            String::from_utf8_lossy(lit)
        ))
    }
}

/// Validates that every non-empty line of `text` is one well-formed JSON
/// value (the JSONL contract).
///
/// # Errors
///
/// Returns `Err(description)` naming the first malformed line.
pub fn check_jsonl(text: &str) -> std::result::Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let bytes = line.as_bytes();
        let end = parse_json_value(bytes, 0).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let rest = line[end..].trim();
        if !rest.is_empty() {
            return Err(format!(
                "line {}: trailing content after JSON value: `{rest}`",
                lineno + 1
            ));
        }
    }
    Ok(())
}

/// Renders ring events in the `chrome://tracing` JSON-array format (load via
/// `chrome://tracing` or <https://ui.perfetto.dev>). One pid per cell; tids
/// are session streams; virtual time maps to trace microseconds. Events
/// with a duration payload ([`EventKind::TokenSettle`],
/// [`EventKind::Preempt`], [`EventKind::Resume`]) become complete (`"X"`)
/// spans ending at their settle time; everything else is an instant.
pub fn render_chrome_trace(cells: &[(&str, &TraceRing)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, item: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&item);
    };
    for (pid, (label, _)) in cells.iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ),
        );
    }
    for (pid, (_, ring)) in cells.iter().enumerate() {
        for e in ring.iter() {
            let tid = if e.stream == u32::MAX {
                0
            } else {
                e.stream + 1
            };
            let ts_us = e.virtual_s * 1e6;
            let item = match e.kind {
                EventKind::TokenSettle | EventKind::Preempt | EventKind::Resume => {
                    let dur_us = (e.b * 1e6).max(0.0);
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{{\"a\":{},\
                         \"wall_ns\":{}}}}}",
                        e.kind.name(),
                        fmt_json_f64(ts_us - dur_us),
                        fmt_json_f64(dur_us),
                        e.a,
                        e.wall_ns
                    )
                }
                _ => format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{\"a\":{},\"b\":{},\
                     \"wall_ns\":{}}}}}",
                    e.kind.name(),
                    fmt_json_f64(ts_us),
                    e.a,
                    fmt_json_f64(e.b),
                    e.wall_ns
                ),
            };
            push(&mut out, item);
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::SpanEvent;

    fn sample_registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        let c = r.counter("serve_tokens_total{tier=\"premium\"}", "tokens served");
        r.add(c, 42.0);
        let g = r.gauge("serve_queue_depth", "waiting requests");
        r.set(g, 3.0);
        let h = r.histogram("serve_ttft_seconds", "time to first token", &[0.01, 0.1]);
        r.observe(h, 0.005);
        r.observe(h, 0.05);
        r.observe(h, 0.5);
        r
    }

    #[test]
    fn exposition_round_trips_through_the_checker() {
        let text = render_prometheus(&sample_registry());
        check_exposition(&text).unwrap();
        assert!(text.contains("# TYPE serve_tokens_total counter"));
        assert!(text.contains("serve_tokens_total{tier=\"premium\"} 42"));
        assert!(text.contains("# TYPE serve_ttft_seconds histogram"));
        // buckets are cumulative and end at +Inf
        assert!(text.contains("serve_ttft_seconds_bucket{le=\"0.01\"} 1"));
        assert!(text.contains("serve_ttft_seconds_bucket{le=\"0.1\"} 2"));
        assert!(text.contains("serve_ttft_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("serve_ttft_seconds_count 3"));
    }

    #[test]
    fn merged_expositions_share_families() {
        let mut a = MetricsRegistry::with_const_labels(&[("cell", "a")]);
        let mut b = MetricsRegistry::with_const_labels(&[("cell", "b")]);
        let ca = a.counter("tokens_total", "tokens");
        let cb = b.counter("tokens_total", "tokens");
        a.add(ca, 1.0);
        b.add(cb, 2.0);
        let text = render_prometheus_merged(&[&a, &b]);
        check_exposition(&text).unwrap();
        assert_eq!(text.matches("# TYPE tokens_total counter").count(), 1);
        assert!(text.contains("tokens_total{cell=\"a\"} 1"));
        assert!(text.contains("tokens_total{cell=\"b\"} 2"));
    }

    #[test]
    fn checker_rejects_malformed_lines() {
        assert!(check_exposition("9bad_name 1").is_err());
        assert!(check_exposition("metric 1 2 3").is_err());
        assert!(check_exposition("metric{unclosed=\"x\" 1").is_err());
        assert!(check_exposition("metric notanumber").is_err());
        assert!(check_exposition("# TYPE m widget").is_err());
        assert!(check_exposition("m 1\n# TYPE m counter\n").is_err());
        assert!(check_exposition("# TYPE m counter\n# TYPE m counter\n").is_err());
        // legal: comments, empty lines, ±Inf/NaN values, bare names
        check_exposition("# a comment\n\nm_total 1\nx{a=\"b\",c=\"d\"} +Inf\nn NaN").unwrap();
    }

    fn ring_with_events() -> TraceRing {
        let mut ring = TraceRing::new(8);
        ring.push(SpanEvent {
            kind: EventKind::RunStart,
            stream: u32::MAX,
            virtual_s: 0.0,
            wall_ns: 10,
            a: 0,
            b: 0.0,
        });
        ring.push(SpanEvent {
            kind: EventKind::TokenSettle,
            stream: 2,
            virtual_s: 0.004,
            wall_ns: 2_000,
            a: (5u64 << 32) | 3,
            b: 0.004,
        });
        ring
    }

    #[test]
    fn trace_jsonl_is_well_formed() {
        let ring = ring_with_events();
        let text = render_trace_jsonl(&[("cell0", &ring)]);
        check_jsonl(&text).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"kind\":\"run_start\""));
        assert!(text.contains("\"stream\":2"));
        // non-session events omit the stream field
        assert!(!text.lines().next().unwrap().contains("stream"));
    }

    #[test]
    fn timeline_jsonl_is_well_formed_and_sums() {
        let mut t = Timeline::new(0.5);
        t.observe_token(0.1, true, 1, 0);
        t.observe_token(0.7, false, 0, 1);
        let text = render_timeline_jsonl("c", &t);
        check_jsonl(&text).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"kind\":\"window\""));
        assert!(text.contains("\"tokens\":1"));
    }

    #[test]
    fn jsonl_checker_rejects_garbage() {
        assert!(check_jsonl("{\"a\":1}\nnot json").is_err());
        assert!(check_jsonl("{\"a\":}").is_err());
        assert!(check_jsonl("{\"a\":1} trailing").is_err());
        assert!(check_jsonl("{\"a\":\"unterminated}").is_err());
        check_jsonl("{\"a\":[1,2,{\"b\":null}],\"c\":true}\n\n{\"d\":-1.5e3}").unwrap();
    }

    #[test]
    fn chrome_trace_is_one_json_value() {
        let ring = ring_with_events();
        let text = render_chrome_trace(&[("cell0", &ring)]);
        check_jsonl(&text).unwrap(); // a single JSON object is valid JSONL
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"process_name\""));
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("]}"));
    }
}
