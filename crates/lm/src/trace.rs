//! Activation tracing.
//!
//! A [`TracingMlp`] wraps the dense forward pass and records, for every token
//! and layer, the normalised MLP input and the GLU activations. The resulting
//! [`ActivationTrace`] is the calibration artefact used throughout the
//! workspace: per-layer threshold calibration (Sec. 3.1), DejaVu predictor
//! training data, LoRA distillation data, the density-allocation fit
//! (App. B.1), and the activation histograms of Fig. 3 / Fig. 10.

use crate::error::Result;
use crate::mlp::{GluMlp, MlpAccessRecord, MlpForward, MlpForwardOutput};
use crate::model::TransformerModel;
use tensor::stats::Histogram;

/// Recorded activations for a single (token, layer) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationSample {
    /// The normalised input to the MLP block (`d_model` values).
    pub input: Vec<f32>,
    /// The GLU activations `W_u x ⊙ σ(W_g x)` (`d_ff` values).
    pub glu: Vec<f32>,
}

/// Activations collected over a calibration run, grouped by layer.
#[derive(Debug, Clone, Default)]
pub struct ActivationTrace {
    /// `samples[layer]` holds one entry per traced token.
    pub samples: Vec<Vec<ActivationSample>>,
}

impl ActivationTrace {
    /// Creates an empty trace for `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        ActivationTrace {
            samples: vec![Vec::new(); n_layers],
        }
    }

    /// Number of layers covered by the trace.
    pub fn n_layers(&self) -> usize {
        self.samples.len()
    }

    /// Number of tokens traced (assumes all layers saw the same tokens).
    pub fn n_tokens(&self) -> usize {
        self.samples.first().map(|s| s.len()).unwrap_or(0)
    }

    /// All GLU activation magnitudes of one layer, flattened.
    pub fn glu_magnitudes(&self, layer: usize) -> Vec<f32> {
        self.samples
            .get(layer)
            .map(|samples| {
                samples
                    .iter()
                    .flat_map(|s| s.glu.iter().map(|v| v.abs()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All MLP-input magnitudes of one layer, flattened.
    pub fn input_magnitudes(&self, layer: usize) -> Vec<f32> {
        self.samples
            .get(layer)
            .map(|samples| {
                samples
                    .iter()
                    .flat_map(|s| s.input.iter().map(|v| v.abs()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Fraction of GLU activations that are exactly zero in a layer
    /// (the "natural sparsity" of Fig. 3).
    pub fn natural_sparsity(&self, layer: usize) -> f32 {
        let samples = match self.samples.get(layer) {
            Some(s) if !s.is_empty() => s,
            _ => return 0.0,
        };
        let total: usize = samples.iter().map(|s| s.glu.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let zeros: usize = samples
            .iter()
            .map(|s| s.glu.iter().filter(|v| **v == 0.0).count())
            .sum();
        zeros as f32 / total as f32
    }

    /// Histogram of |GLU| magnitudes for a layer (used for Fig. 3 / Fig. 10).
    ///
    /// # Errors
    ///
    /// Propagates histogram construction errors.
    pub fn glu_histogram(&self, layer: usize, lo: f32, hi: f32, bins: usize) -> Result<Histogram> {
        let mut h = Histogram::new(lo, hi, bins).map_err(crate::error::LmError::from)?;
        h.extend_from_slice(&self.glu_magnitudes(layer));
        Ok(h)
    }
}

/// An [`MlpForward`] implementation that computes the dense forward pass and
/// records inputs and GLU activations into an [`ActivationTrace`].
#[derive(Debug, Clone, Default)]
pub struct TracingMlp {
    /// The trace being accumulated.
    pub trace: ActivationTrace,
}

impl TracingMlp {
    /// Creates a tracer for a model with `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        TracingMlp {
            trace: ActivationTrace::new(n_layers),
        }
    }

    /// Consumes the tracer and returns the collected trace.
    pub fn into_trace(self) -> ActivationTrace {
        self.trace
    }
}

impl MlpForward for TracingMlp {
    fn forward(&mut self, layer: usize, mlp: &GluMlp, x: &[f32]) -> Result<MlpForwardOutput> {
        let glu = mlp.glu_activations(x)?;
        let y = mlp
            .w_down
            .matvec(&glu)
            .map_err(crate::error::LmError::from)?;
        if layer >= self.trace.samples.len() {
            self.trace.samples.resize(layer + 1, Vec::new());
        }
        self.trace.samples[layer].push(ActivationSample {
            input: x.to_vec(),
            glu,
        });
        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord::dense(),
        })
    }

    fn name(&self) -> String {
        "dense-tracing".to_string()
    }
}

/// Runs the model dense over the given sequences and collects an
/// [`ActivationTrace`].
///
/// # Errors
///
/// Propagates forward-pass errors (e.g. invalid tokens).
pub fn collect_activation_trace(
    model: &TransformerModel,
    sequences: &[Vec<u32>],
) -> Result<ActivationTrace> {
    let mut tracer = TracingMlp::new(model.n_layers());
    let mut scratch = crate::scratch::DecodeScratch::for_model(model);
    for seq in sequences {
        let mut state = model.new_decode_state();
        for &t in seq {
            model.forward_token_into(t, &mut state, &mut tracer, &mut scratch)?;
        }
    }
    Ok(tracer.into_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_synthetic;
    use crate::config::ModelConfig;
    use crate::data::model_generated_corpus;

    fn tiny() -> TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 5).unwrap()
    }

    #[test]
    fn tracing_matches_dense_forward() {
        let model = tiny();
        let seq = vec![1u32, 2, 3, 4];

        let mut dense_state = model.new_decode_state();
        let mut traced_state = model.new_decode_state();
        let mut tracer = TracingMlp::new(model.n_layers());
        for &t in &seq {
            let dense = model.forward_token_dense(t, &mut dense_state).unwrap();
            let traced = model
                .forward_token(t, &mut traced_state, &mut tracer)
                .unwrap();
            for (a, b) in dense.logits.iter().zip(traced.logits.iter()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn trace_dimensions_match_model() {
        let model = tiny();
        let seqs = model_generated_corpus(&model, 2, 6, 3).unwrap();
        let trace = collect_activation_trace(&model, &seqs).unwrap();
        assert_eq!(trace.n_layers(), model.n_layers());
        assert_eq!(trace.n_tokens(), 12);
        let sample = &trace.samples[0][0];
        assert_eq!(sample.input.len(), model.config.d_model);
        assert_eq!(sample.glu.len(), model.config.d_ff);
    }

    #[test]
    fn magnitudes_and_histogram() {
        let model = tiny();
        let seqs = model_generated_corpus(&model, 1, 8, 3).unwrap();
        let trace = collect_activation_trace(&model, &seqs).unwrap();
        let mags = trace.glu_magnitudes(0);
        assert_eq!(mags.len(), 8 * model.config.d_ff);
        assert!(mags.iter().all(|m| *m >= 0.0));
        let hist = trace.glu_histogram(0, 0.0, 5.0, 20).unwrap();
        assert_eq!(hist.total() as usize, mags.len());
        assert!(trace.input_magnitudes(0).len() == 8 * model.config.d_model);
        assert!(trace.glu_magnitudes(99).is_empty());
    }

    #[test]
    fn natural_sparsity_high_for_relufied() {
        let config = ModelConfig::tiny();
        let swiglu = build_synthetic(&config, 5).unwrap();
        let relu = build_synthetic(&config.relufied(), 5).unwrap();
        let seqs = model_generated_corpus(&swiglu, 1, 8, 3).unwrap();

        let t_swiglu = collect_activation_trace(&swiglu, &seqs).unwrap();
        let t_relu = collect_activation_trace(&relu, &seqs).unwrap();
        assert!(t_swiglu.natural_sparsity(0) < 0.05);
        assert!(t_relu.natural_sparsity(0) > 0.5);
        assert_eq!(ActivationTrace::new(2).natural_sparsity(0), 0.0);
    }
}
