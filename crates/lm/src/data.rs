//! Synthetic corpus generation.
//!
//! Stands in for WikiText-2 / SlimPajama (see DESIGN.md §1). Two sources are
//! provided:
//!
//! * [`MarkovCorpus`] — a sparse random Markov chain over the vocabulary,
//!   used to produce structured prompts,
//! * [`model_generated_corpus`] — sequences sampled from the dense model
//!   itself, which is the corpus every evaluation in this workspace uses:
//!   the dense model defines the "language", its own perplexity on that
//!   language is the floor, and sparsified variants are measured against it
//!   exactly as the paper measures perplexity deltas over the dense model.

use crate::error::{LmError, Result};
use crate::mlp::DenseMlp;
use crate::model::TransformerModel;
use rand::Rng;
use tensor::init;

/// A sparse random Markov chain over a token vocabulary.
#[derive(Debug, Clone)]
pub struct MarkovCorpus {
    vocab_size: usize,
    /// `successors[t]` lists the likely next tokens of `t` with weights.
    successors: Vec<Vec<(u32, f32)>>,
}

impl MarkovCorpus {
    /// Creates a Markov chain where each token has `branching` likely
    /// successors with Zipf-like weights.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::InvalidConfig`] if `vocab_size == 0` or
    /// `branching == 0`.
    pub fn new(vocab_size: usize, branching: usize, seed: u64) -> Result<Self> {
        if vocab_size == 0 {
            return Err(LmError::InvalidConfig {
                field: "vocab_size",
                reason: "must be > 0".to_string(),
            });
        }
        if branching == 0 {
            return Err(LmError::InvalidConfig {
                field: "branching",
                reason: "must be > 0".to_string(),
            });
        }
        let mut rng = init::rng(seed);
        let successors = (0..vocab_size)
            .map(|_| {
                (0..branching)
                    .map(|rank| {
                        let next = rng.gen_range(0..vocab_size) as u32;
                        let weight = 1.0 / (rank + 1) as f32;
                        (next, weight)
                    })
                    .collect()
            })
            .collect();
        Ok(MarkovCorpus {
            vocab_size,
            successors,
        })
    }

    /// Vocabulary size of the chain.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Samples a sequence of `len` tokens starting from a random token.
    pub fn sample_sequence<R: Rng>(&self, len: usize, rng: &mut R) -> Vec<u32> {
        let mut seq = Vec::with_capacity(len);
        if len == 0 {
            return seq;
        }
        let mut current = rng.gen_range(0..self.vocab_size) as u32;
        seq.push(current);
        for _ in 1..len {
            current = self.sample_next(current, rng);
            seq.push(current);
        }
        seq
    }

    /// Samples the successor of `token` according to the chain weights.
    pub fn sample_next<R: Rng>(&self, token: u32, rng: &mut R) -> u32 {
        let succ = &self.successors[token as usize % self.vocab_size];
        let total: f32 = succ.iter().map(|(_, w)| w).sum();
        let mut r = rng.gen_range(0.0..total);
        for (t, w) in succ {
            if r < *w {
                return *t;
            }
            r -= w;
        }
        succ.last().map(|(t, _)| *t).unwrap_or(0)
    }

    /// Samples `n` prompts of the given length.
    pub fn sample_prompts<R: Rng>(&self, n: usize, len: usize, rng: &mut R) -> Vec<Vec<u32>> {
        (0..n).map(|_| self.sample_sequence(len, rng)).collect()
    }
}

/// Generates `n_sequences` sequences of `seq_len` tokens from the dense model
/// itself by autoregressive sampling at temperature 1.0, each seeded with a
/// short Markov prompt.
///
/// The returned sequences include the prompt tokens, so they can be used
/// directly for teacher-forced perplexity evaluation.
///
/// # Errors
///
/// Propagates generation errors (e.g. `seq_len` exceeding the model context).
pub fn model_generated_corpus(
    model: &TransformerModel,
    n_sequences: usize,
    seq_len: usize,
    seed: u64,
) -> Result<Vec<Vec<u32>>> {
    let prompt_len = 4.min(seq_len.max(1));
    let corpus = MarkovCorpus::new(model.config.vocab_size, 6, seed ^ 0x9e37_79b9)?;
    let mut rng = init::rng(seed);
    let mut sequences = Vec::with_capacity(n_sequences);
    for _ in 0..n_sequences {
        let prompt = corpus.sample_sequence(prompt_len, &mut rng);
        let generated = if seq_len > prompt_len {
            model.generate(&prompt, seq_len - prompt_len, 1.0, &mut rng, &mut DenseMlp)?
        } else {
            Vec::new()
        };
        let mut seq = prompt;
        seq.extend(generated);
        sequences.push(seq);
    }
    Ok(sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_synthetic;
    use crate::config::ModelConfig;

    #[test]
    fn markov_sequences_have_requested_length_and_valid_tokens() {
        let corpus = MarkovCorpus::new(50, 4, 1).unwrap();
        let mut rng = init::rng(2);
        let seq = corpus.sample_sequence(100, &mut rng);
        assert_eq!(seq.len(), 100);
        assert!(seq.iter().all(|t| (*t as usize) < 50));
        assert!(corpus.sample_sequence(0, &mut rng).is_empty());
    }

    #[test]
    fn markov_rejects_degenerate_parameters() {
        assert!(MarkovCorpus::new(0, 4, 1).is_err());
        assert!(MarkovCorpus::new(10, 0, 1).is_err());
    }

    #[test]
    fn markov_chain_is_not_uniform() {
        // successors should be a small subset of the vocabulary
        let corpus = MarkovCorpus::new(100, 3, 7);
        let corpus = corpus.unwrap();
        let mut rng = init::rng(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(corpus.sample_next(5, &mut rng));
        }
        assert!(seen.len() <= 3);
    }

    #[test]
    fn prompts_are_batched() {
        let corpus = MarkovCorpus::new(32, 4, 1).unwrap();
        let mut rng = init::rng(0);
        let prompts = corpus.sample_prompts(5, 8, &mut rng);
        assert_eq!(prompts.len(), 5);
        assert!(prompts.iter().all(|p| p.len() == 8));
    }

    #[test]
    fn model_generated_corpus_shapes_and_determinism() {
        let model = build_synthetic(&ModelConfig::tiny(), 1).unwrap();
        let a = model_generated_corpus(&model, 3, 12, 9).unwrap();
        let b = model_generated_corpus(&model, 3, 12, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|s| s.len() == 12));
        let c = model_generated_corpus(&model, 3, 12, 10).unwrap();
        assert_ne!(a, c);
    }
}
