//! Rotary position embeddings (RoPE).

/// Applies rotary position embeddings in place to a single head vector.
///
/// The vector is interpreted as `head_dim / 2` complex pairs `(x[2i], x[2i+1])`
/// which are rotated by an angle that grows with the position and shrinks with
/// the pair index, following the standard RoPE formulation.
///
/// # Panics
///
/// Panics if `head.len()` is odd.
pub fn apply_rope(head: &mut [f32], position: usize, theta: f32) {
    assert!(
        head.len().is_multiple_of(2),
        "RoPE requires an even head dimension"
    );
    let half = head.len() / 2;
    for i in 0..half {
        let freq = 1.0 / theta.powf(2.0 * i as f32 / head.len() as f32);
        let angle = position as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = head[2 * i];
        let b = head[2 * i + 1];
        head[2 * i] = a * cos - b * sin;
        head[2 * i + 1] = a * sin + b * cos;
    }
}

/// Applies RoPE to every head of a flattened multi-head vector
/// (`n_heads * head_dim` values, heads stored contiguously).
///
/// # Panics
///
/// Panics if `x.len()` is not a multiple of `head_dim` or `head_dim` is odd.
pub fn apply_rope_multihead(x: &mut [f32], head_dim: usize, position: usize, theta: f32) {
    assert!(
        head_dim > 0 && x.len().is_multiple_of(head_dim),
        "bad head layout"
    );
    for head in x.chunks_exact_mut(head_dim) {
        apply_rope(head, position, theta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Vector;

    #[test]
    fn position_zero_is_identity() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0];
        apply_rope(&mut h, 0, 10_000.0);
        assert_eq!(h, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rotation_preserves_norm() {
        let original = vec![0.3, -1.2, 2.0, 0.5, -0.7, 1.1];
        let mut rotated = original.clone();
        apply_rope(&mut rotated, 17, 10_000.0);
        assert!((Vector::norm_l2(&original) - Vector::norm_l2(&rotated)).abs() < 1e-4);
        assert_ne!(original, rotated);
    }

    #[test]
    fn relative_angle_property() {
        // <rope(q, m), rope(k, n)> depends only on m - n for a single pair.
        let q = vec![1.0, 0.0];
        let k = vec![0.5, 0.5];
        let dot_at = |m: usize, n: usize| {
            let mut qm = q.clone();
            let mut kn = k.clone();
            apply_rope(&mut qm, m, 10_000.0);
            apply_rope(&mut kn, n, 10_000.0);
            Vector::dot(&qm, &kn).unwrap()
        };
        assert!((dot_at(5, 3) - dot_at(12, 10)).abs() < 1e-4);
        assert!((dot_at(7, 7) - dot_at(0, 0)).abs() < 1e-4);
    }

    #[test]
    fn multihead_applies_per_head() {
        let mut x = vec![1.0, 0.0, 1.0, 0.0];
        apply_rope_multihead(&mut x, 2, 3, 10_000.0);
        // both heads rotated by the same angle since pair index is 0 in each
        assert!((x[0] - x[2]).abs() < 1e-6);
        assert!((x[1] - x[3]).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "even head dimension")]
    fn odd_head_dim_panics() {
        apply_rope(&mut [1.0, 2.0, 3.0], 1, 10_000.0);
    }
}
