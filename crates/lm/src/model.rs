//! The decoder-only transformer model and its single-token decoding loop.

use crate::attention::Attention;
use crate::config::ModelConfig;
use crate::error::{LmError, Result};
use crate::kv_cache::KvCache;
use crate::mlp::{DenseMlp, GluMlp, MlpAccessRecord, MlpForward};
use crate::norm::RmsNorm;
use crate::scratch::DecodeScratch;
use rand::Rng;
use tensor::{Matrix, Vector, WorkerPool};

/// One transformer block: pre-norm attention followed by a pre-norm GLU MLP,
/// both with residual connections.
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    /// RMSNorm applied before attention.
    pub attn_norm: RmsNorm,
    /// Grouped-query attention block.
    pub attn: Attention,
    /// RMSNorm applied before the MLP.
    pub mlp_norm: RmsNorm,
    /// Gated MLP block.
    pub mlp: GluMlp,
}

/// Mutable decoding state: one KV cache per layer plus the current position.
#[derive(Debug, Clone)]
pub struct DecodeState {
    /// Per-layer key/value caches.
    pub kv: Vec<KvCache>,
    /// Next position index to be decoded.
    pub pos: usize,
}

impl DecodeState {
    /// Clears the caches and resets the position to zero.
    pub fn reset(&mut self) {
        for c in &mut self.kv {
            c.clear();
        }
        self.pos = 0;
    }
}

/// Output of decoding a single token.
#[derive(Debug, Clone)]
pub struct TokenOutput {
    /// Raw logits over the vocabulary.
    pub logits: Vec<f32>,
    /// Per-layer MLP weight-access records (one per transformer layer).
    pub mlp_accesses: Vec<MlpAccessRecord>,
}

impl TokenOutput {
    /// Log-probabilities (log-softmax of the logits).
    ///
    /// # Errors
    ///
    /// Returns an error if the logits are empty.
    pub fn log_probs(&self) -> Result<Vec<f32>> {
        Ok(Vector::log_softmax(&self.logits)?)
    }
}

/// A decoder-only transformer with untied embedding and LM head.
#[derive(Debug, Clone)]
pub struct TransformerModel {
    /// The configuration the model was built from.
    pub config: ModelConfig,
    /// Token embedding table (`vocab_size x d_model`).
    pub embedding: Matrix,
    /// Transformer blocks.
    pub layers: Vec<TransformerLayer>,
    /// Final RMSNorm before the LM head.
    pub final_norm: RmsNorm,
    /// LM head (`vocab_size x d_model`).
    pub lm_head: Matrix,
}

impl TransformerModel {
    /// Creates a model from already-built components.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::InvalidConfig`] if the component shapes do not
    /// match the configuration.
    pub fn from_parts(
        config: ModelConfig,
        embedding: Matrix,
        layers: Vec<TransformerLayer>,
        final_norm: RmsNorm,
        lm_head: Matrix,
    ) -> Result<Self> {
        config.validate()?;
        if embedding.shape() != (config.vocab_size, config.d_model) {
            return Err(LmError::InvalidConfig {
                field: "embedding",
                reason: format!("expected {}x{}", config.vocab_size, config.d_model),
            });
        }
        if lm_head.shape() != (config.vocab_size, config.d_model) {
            return Err(LmError::InvalidConfig {
                field: "lm_head",
                reason: format!("expected {}x{}", config.vocab_size, config.d_model),
            });
        }
        if layers.len() != config.n_layers {
            return Err(LmError::InvalidConfig {
                field: "layers",
                reason: format!("expected {} layers, got {}", config.n_layers, layers.len()),
            });
        }
        Ok(TransformerModel {
            config,
            embedding,
            layers,
            final_norm,
            lm_head,
        })
    }

    /// Number of transformer layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter count of the instantiated weights.
    pub fn num_params(&self) -> usize {
        let mut n = self.embedding.len() + self.lm_head.len();
        for l in &self.layers {
            n += l.attn.num_params() + l.mlp.num_params();
            n += l.attn_norm.dim() + l.mlp_norm.dim();
        }
        n + self.final_norm.dim()
    }

    /// Creates a fresh decoding state sized for `max_seq_len`.
    pub fn new_decode_state(&self) -> DecodeState {
        DecodeState {
            kv: (0..self.config.n_layers)
                .map(|_| KvCache::new(self.config.max_seq_len))
                .collect(),
            pos: 0,
        }
    }

    /// Decodes a single token through every layer, using `mlp_fw` for the MLP
    /// blocks, and returns the next-token logits plus the MLP access records.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::TokenOutOfRange`] for an invalid token and
    /// propagates shape errors from the blocks.
    pub fn forward_token(
        &self,
        token: u32,
        state: &mut DecodeState,
        mlp_fw: &mut dyn MlpForward,
    ) -> Result<TokenOutput> {
        let mut scratch = DecodeScratch::for_model(self);
        // a one-shot scratch must not pay the per-model mirror transpose
        scratch.use_mirrors = false;
        self.forward_token_into(token, state, mlp_fw, &mut scratch)?;
        Ok(TokenOutput {
            logits: scratch.logits,
            mlp_accesses: scratch.accesses.iter().map(|a| a.to_record()).collect(),
        })
    }

    /// Allocation-free [`TransformerModel::forward_token`]: the logits land
    /// in [`DecodeScratch::logits`] and the per-layer access records in
    /// [`DecodeScratch::accesses`], all buffers reused across tokens.
    ///
    /// This is the decode hot path: once the scratch is warm, a dense or
    /// DIP token performs zero heap allocations. Results are bitwise
    /// identical to the allocating wrapper (which delegates here).
    ///
    /// # Errors
    ///
    /// Returns [`LmError::TokenOutOfRange`] for an invalid token and
    /// propagates shape errors from the blocks.
    pub fn forward_token_into(
        &self,
        token: u32,
        state: &mut DecodeState,
        mlp_fw: &mut dyn MlpForward,
        scratch: &mut DecodeScratch,
    ) -> Result<()> {
        if (token as usize) >= self.config.vocab_size {
            return Err(LmError::TokenOutOfRange {
                token,
                vocab: self.config.vocab_size,
            });
        }
        let pos = state.pos;
        scratch.x.clear();
        scratch
            .x
            .extend_from_slice(self.embedding.row(token as usize)?);
        scratch.normed.resize(self.config.d_model, 0.0);
        scratch.attn_out.resize(self.config.d_model, 0.0);
        scratch.final_normed.resize(self.config.d_model, 0.0);
        scratch.logits.resize(self.config.vocab_size, 0.0);
        if scratch.accesses.len() != self.layers.len() {
            scratch
                .accesses
                .resize_with(self.layers.len(), Default::default);
        }

        // Mirror management: build the pre-transposed weight mirrors on the
        // first token of a (scratch, model) pairing, revalidate (cheap
        // pointer + sampled-bits check) every token. Reference mode runs
        // without mirrors so before/after measurements are honest.
        let use_mirrors = scratch.use_mirrors && !tensor::kernels::reference_mode();
        if use_mirrors
            && scratch
                .mirrors
                .as_ref()
                .map(|m| !m.matches(self))
                .unwrap_or(true)
        {
            scratch.mirrors = Some(crate::scratch::ModelMirrors::build(self));
        }
        let mirrors = if use_mirrors {
            scratch.mirrors.as_ref()
        } else {
            None
        };

        for (li, layer) in self.layers.iter().enumerate() {
            let layer_mirrors = mirrors.map(|m| &m.layers[li]);
            layer
                .attn_norm
                .forward_into(&scratch.x, &mut scratch.normed);
            layer.attn.forward_token_into(
                &scratch.normed,
                pos,
                &mut state.kv[li],
                &mut scratch.attn,
                &mut scratch.attn_out,
                layer_mirrors.map(|m| &m.attn),
            )?;
            Vector::axpy(1.0, &scratch.attn_out, &mut scratch.x)?;

            layer.mlp_norm.forward_into(&scratch.x, &mut scratch.normed);
            mlp_fw.forward_scratch(
                li,
                &layer.mlp,
                &scratch.normed,
                &mut scratch.mlp,
                &mut scratch.accesses[li],
                layer_mirrors.map(|m| &m.mlp),
            )?;
            Vector::axpy(1.0, &scratch.mlp.y, &mut scratch.x)?;
        }

        self.final_norm
            .forward_into(&scratch.x, &mut scratch.final_normed);
        // the LM head is the single largest matvec: mirrored when mirrors
        // exist, row-partitioned across the pool otherwise (all variants
        // bitwise identical)
        match mirrors {
            Some(m) => self.lm_head.matvec_mirrored(
                &m.lm_head,
                &scratch.final_normed,
                &mut scratch.logits,
            )?,
            None => self.lm_head.matvec_into_threaded(
                &scratch.final_normed,
                &mut scratch.logits,
                WorkerPool::global(),
            )?,
        }
        state.pos += 1;
        Ok(())
    }

    /// Convenience wrapper: decodes a token with the dense MLP.
    ///
    /// # Errors
    ///
    /// See [`TransformerModel::forward_token`].
    pub fn forward_token_dense(&self, token: u32, state: &mut DecodeState) -> Result<TokenOutput> {
        self.forward_token(token, state, &mut DenseMlp)
    }

    /// Samples `n_tokens` continuations of `prompt` at the given temperature.
    ///
    /// With `temperature == 0.0` sampling degenerates to greedy argmax.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] for an empty prompt or when the
    /// requested length exceeds the KV-cache capacity, and propagates forward
    /// errors.
    pub fn generate<R: Rng>(
        &self,
        prompt: &[u32],
        n_tokens: usize,
        temperature: f32,
        rng: &mut R,
        mlp_fw: &mut dyn MlpForward,
    ) -> Result<Vec<u32>> {
        if prompt.is_empty() {
            return Err(LmError::BadSequence {
                reason: "prompt must contain at least one token".to_string(),
            });
        }
        if prompt.len() + n_tokens > self.config.max_seq_len {
            return Err(LmError::BadSequence {
                reason: format!(
                    "prompt ({}) + generation ({}) exceeds max_seq_len ({})",
                    prompt.len(),
                    n_tokens,
                    self.config.max_seq_len
                ),
            });
        }
        let mut state = self.new_decode_state();
        let mut scratch = DecodeScratch::for_model(self);
        for &t in prompt {
            self.forward_token_into(t, &mut state, mlp_fw, &mut scratch)?;
        }
        let mut out = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            let next = sample_from_logits(&scratch.logits, temperature, rng)?;
            out.push(next);
            if out.len() == n_tokens {
                break;
            }
            self.forward_token_into(next, &mut state, mlp_fw, &mut scratch)?;
        }
        Ok(out)
    }
}

/// Samples a token id from logits at the given temperature (0 = greedy).
///
/// # Errors
///
/// Returns an error if `logits` is empty.
pub fn sample_from_logits<R: Rng>(logits: &[f32], temperature: f32, rng: &mut R) -> Result<u32> {
    if temperature <= 0.0 {
        return Ok(Vector::argmax(logits)? as u32);
    }
    let scaled: Vec<f32> = logits.iter().map(|l| l / temperature).collect();
    let probs = Vector::softmax(&scaled)?;
    let r: f32 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return Ok(i as u32);
        }
    }
    Ok((probs.len() - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_synthetic;
    use tensor::init;

    fn tiny_model() -> TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 42).unwrap()
    }

    #[test]
    fn forward_token_produces_vocab_logits() {
        let model = tiny_model();
        let mut state = model.new_decode_state();
        let out = model.forward_token_dense(3, &mut state).unwrap();
        assert_eq!(out.logits.len(), model.config.vocab_size);
        assert_eq!(out.mlp_accesses.len(), model.config.n_layers);
        assert!(out.logits.iter().all(|v| v.is_finite()));
        assert_eq!(state.pos, 1);
    }

    #[test]
    fn forward_rejects_out_of_range_token() {
        let model = tiny_model();
        let mut state = model.new_decode_state();
        assert!(model.forward_token_dense(64, &mut state).is_err());
    }

    #[test]
    fn decoding_is_deterministic() {
        let model = tiny_model();
        let mut s1 = model.new_decode_state();
        let mut s2 = model.new_decode_state();
        for t in [1u32, 5, 9] {
            let a = model.forward_token_dense(t, &mut s1).unwrap();
            let b = model.forward_token_dense(t, &mut s2).unwrap();
            assert_eq!(a.logits, b.logits);
        }
    }

    #[test]
    fn logits_depend_on_context() {
        let model = tiny_model();
        let mut with_ctx = model.new_decode_state();
        model.forward_token_dense(2, &mut with_ctx).unwrap();
        let a = model.forward_token_dense(7, &mut with_ctx).unwrap();

        let mut without_ctx = model.new_decode_state();
        let b = model.forward_token_dense(7, &mut without_ctx).unwrap();

        let diff: f32 = a
            .logits
            .iter()
            .zip(b.logits.iter())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let model = tiny_model();
        let mut rng_a = init::rng(0);
        let mut rng_b = init::rng(1);
        let a = model
            .generate(&[1, 2, 3], 8, 0.0, &mut rng_a, &mut DenseMlp)
            .unwrap();
        let b = model
            .generate(&[1, 2, 3], 8, 0.0, &mut rng_b, &mut DenseMlp)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|t| (*t as usize) < model.config.vocab_size));
    }

    #[test]
    fn generation_validates_inputs() {
        let model = tiny_model();
        let mut rng = init::rng(0);
        assert!(model
            .generate(&[], 4, 1.0, &mut rng, &mut DenseMlp)
            .is_err());
        assert!(model
            .generate(&[1], 1000, 1.0, &mut rng, &mut DenseMlp)
            .is_err());
    }

    #[test]
    fn sampling_respects_temperature_zero() {
        let mut rng = init::rng(0);
        let logits = vec![0.0, 5.0, 1.0];
        for _ in 0..10 {
            assert_eq!(sample_from_logits(&logits, 0.0, &mut rng).unwrap(), 1);
        }
    }

    #[test]
    fn sampling_covers_support_at_high_temperature() {
        let mut rng = init::rng(0);
        let logits = vec![0.0, 0.0, 0.0, 0.0];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let t = sample_from_logits(&logits, 1.0, &mut rng).unwrap();
            seen[t as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn log_probs_normalise() {
        let model = tiny_model();
        let mut state = model.new_decode_state();
        let out = model.forward_token_dense(0, &mut state).unwrap();
        let lp = out.log_probs().unwrap();
        let sum: f32 = lp.iter().map(|l| l.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn num_params_close_to_config_estimate() {
        let model = tiny_model();
        let estimated = model.config.total_params();
        let actual = model.num_params();
        let rel = (estimated as f64 - actual as f64).abs() / actual as f64;
        assert!(rel < 0.05, "estimate {estimated} vs actual {actual}");
    }
}
