//! The decoder-only transformer model and its single-token decoding loop.

use crate::attention::Attention;
use crate::config::ModelConfig;
use crate::error::{LmError, Result};
use crate::kv_cache::KvCache;
use crate::kv_paged::{KvBacking, PagePoolHandle, PagedKv};
use crate::mlp::{DenseMlp, GluMlp, MlpAccessRecord, MlpForward};
use crate::norm::RmsNorm;
use crate::scratch::{BatchScratch, DecodeScratch};
use rand::Rng;
use tensor::{Matrix, Vector, WorkerPool};

/// How a batched forward pass drives the MLP strategies of its rows.
pub enum BatchStrategies<'a> {
    /// One strategy instance serves every row: a prefill chunk (all rows are
    /// one session), or a serving lane whose strategy is
    /// [`MlpForward::batch_fusable`] (stateless, or state shared by every
    /// lane member).
    Fused(&'a mut dyn MlpForward),
    /// One strategy per row, invoked row by row in batch order — correct
    /// for any mix of per-session state; only the attention projections and
    /// the LM head are fused.
    PerRow(&'a mut [Box<dyn MlpForward>]),
}

/// One transformer block: pre-norm attention followed by a pre-norm GLU MLP,
/// both with residual connections.
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    /// RMSNorm applied before attention.
    pub attn_norm: RmsNorm,
    /// Grouped-query attention block.
    pub attn: Attention,
    /// RMSNorm applied before the MLP.
    pub mlp_norm: RmsNorm,
    /// Gated MLP block.
    pub mlp: GluMlp,
}

/// Mutable decoding state: one KV cache per layer plus the current position.
#[derive(Debug, Clone)]
pub struct DecodeState {
    /// Per-layer key/value caches (flat, or paged over a shared pool).
    pub kv: Vec<KvBacking>,
    /// Next position index to be decoded.
    pub pos: usize,
}

impl DecodeState {
    /// Clears the caches (releasing pool pages for paged backings) and
    /// resets the position to zero.
    pub fn reset(&mut self) {
        for c in &mut self.kv {
            c.clear();
        }
        self.pos = 0;
    }

    /// Whether the state's KV lives in paged backings.
    pub fn is_paged(&self) -> bool {
        matches!(self.kv.first(), Some(KvBacking::Paged(_)))
    }

    /// Spills every paged layer to its session-owned buffer, releasing all
    /// pool pages (a no-op for flat states). A parked session then holds
    /// zero pool memory until [`DecodeState::reload_kv`].
    pub fn spill_kv(&mut self) {
        for c in &mut self.kv {
            if let Some(p) = c.paged_mut() {
                p.spill();
            }
        }
    }

    /// Whether any layer is currently spilled.
    pub fn is_spilled(&self) -> bool {
        self.kv
            .iter()
            .any(|c| c.paged().map(PagedKv::is_spilled).unwrap_or(false))
    }

    /// Total pool pages a [`DecodeState::reload_kv`] would need right now.
    pub fn kv_pages_to_reload(&self) -> usize {
        self.kv
            .iter()
            .filter_map(|c| c.paged().map(PagedKv::pages_to_reload))
            .sum()
    }

    /// Reloads every spilled layer back into pool pages, bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] when the pool cannot supply enough
    /// pages for *all* layers (checked up front, so no layer is partially
    /// reloaded); the state stays spilled and can be retried later.
    pub fn reload_kv(&mut self) -> Result<()> {
        let needed = self.kv_pages_to_reload();
        if !self.is_spilled() {
            return Ok(());
        }
        if let Some(p) = self.kv.iter().find_map(|c| c.paged()) {
            let pool = p.pool_handle().borrow();
            if pool.free_pages() < needed {
                return Err(LmError::BadSequence {
                    reason: format!(
                        "KV page pool has {} free pages but reloading needs {needed}",
                        pool.free_pages()
                    ),
                });
            }
        }
        for c in &mut self.kv {
            if let Some(p) = c.paged_mut() {
                p.reload()?;
            }
        }
        Ok(())
    }
}

/// Output of decoding a single token.
#[derive(Debug, Clone)]
pub struct TokenOutput {
    /// Raw logits over the vocabulary.
    pub logits: Vec<f32>,
    /// Per-layer MLP weight-access records (one per transformer layer).
    pub mlp_accesses: Vec<MlpAccessRecord>,
}

impl TokenOutput {
    /// Log-probabilities (log-softmax of the logits).
    ///
    /// # Errors
    ///
    /// Returns an error if the logits are empty.
    pub fn log_probs(&self) -> Result<Vec<f32>> {
        Ok(Vector::log_softmax(&self.logits)?)
    }
}

/// A decoder-only transformer with untied embedding and LM head.
#[derive(Debug, Clone)]
pub struct TransformerModel {
    /// The configuration the model was built from.
    pub config: ModelConfig,
    /// Token embedding table (`vocab_size x d_model`).
    pub embedding: Matrix,
    /// Transformer blocks.
    pub layers: Vec<TransformerLayer>,
    /// Final RMSNorm before the LM head.
    pub final_norm: RmsNorm,
    /// LM head (`vocab_size x d_model`).
    pub lm_head: Matrix,
}

impl TransformerModel {
    /// Creates a model from already-built components.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::InvalidConfig`] if the component shapes do not
    /// match the configuration.
    pub fn from_parts(
        config: ModelConfig,
        embedding: Matrix,
        layers: Vec<TransformerLayer>,
        final_norm: RmsNorm,
        lm_head: Matrix,
    ) -> Result<Self> {
        config.validate()?;
        if embedding.shape() != (config.vocab_size, config.d_model) {
            return Err(LmError::InvalidConfig {
                field: "embedding",
                reason: format!("expected {}x{}", config.vocab_size, config.d_model),
            });
        }
        if lm_head.shape() != (config.vocab_size, config.d_model) {
            return Err(LmError::InvalidConfig {
                field: "lm_head",
                reason: format!("expected {}x{}", config.vocab_size, config.d_model),
            });
        }
        if layers.len() != config.n_layers {
            return Err(LmError::InvalidConfig {
                field: "layers",
                reason: format!("expected {} layers, got {}", config.n_layers, layers.len()),
            });
        }
        Ok(TransformerModel {
            config,
            embedding,
            layers,
            final_norm,
            lm_head,
        })
    }

    /// Number of transformer layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter count of the instantiated weights.
    pub fn num_params(&self) -> usize {
        let mut n = self.embedding.len() + self.lm_head.len();
        for l in &self.layers {
            n += l.attn.num_params() + l.mlp.num_params();
            n += l.attn_norm.dim() + l.mlp_norm.dim();
        }
        n + self.final_norm.dim()
    }

    /// Creates a fresh decoding state sized for `max_seq_len`, backed by
    /// flat per-session caches (the bitwise oracle backing).
    pub fn new_decode_state(&self) -> DecodeState {
        DecodeState {
            kv: (0..self.config.n_layers)
                .map(|_| KvBacking::Flat(KvCache::new(self.config.max_seq_len)))
                .collect(),
            pos: 0,
        }
    }

    /// Creates a fresh decoding state whose layers are page tables over the
    /// shared `pool` — bitwise identical in behaviour to the flat state,
    /// but with memory allocated page by page on demand.
    pub fn new_decode_state_paged(&self, pool: &PagePoolHandle) -> DecodeState {
        DecodeState {
            kv: (0..self.config.n_layers)
                .map(|_| KvBacking::Paged(PagedKv::new(pool, self.config.max_seq_len)))
                .collect(),
            pos: 0,
        }
    }

    /// Decodes a single token through every layer, using `mlp_fw` for the MLP
    /// blocks, and returns the next-token logits plus the MLP access records.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::TokenOutOfRange`] for an invalid token and
    /// propagates shape errors from the blocks.
    pub fn forward_token(
        &self,
        token: u32,
        state: &mut DecodeState,
        mlp_fw: &mut dyn MlpForward,
    ) -> Result<TokenOutput> {
        let mut scratch = DecodeScratch::for_model(self);
        // a one-shot scratch must not pay the per-model mirror transpose
        scratch.use_mirrors = false;
        self.forward_token_into(token, state, mlp_fw, &mut scratch)?;
        Ok(TokenOutput {
            logits: scratch.logits,
            mlp_accesses: scratch.accesses.iter().map(|a| a.to_record()).collect(),
        })
    }

    /// Allocation-free [`TransformerModel::forward_token`]: the logits land
    /// in [`DecodeScratch::logits`] and the per-layer access records in
    /// [`DecodeScratch::accesses`], all buffers reused across tokens.
    ///
    /// This is the decode hot path: once the scratch is warm, a dense or
    /// DIP token performs zero heap allocations. Results are bitwise
    /// identical to the allocating wrapper (which delegates here).
    ///
    /// # Errors
    ///
    /// Returns [`LmError::TokenOutOfRange`] for an invalid token and
    /// propagates shape errors from the blocks.
    pub fn forward_token_into(
        &self,
        token: u32,
        state: &mut DecodeState,
        mlp_fw: &mut dyn MlpForward,
        scratch: &mut DecodeScratch,
    ) -> Result<()> {
        if (token as usize) >= self.config.vocab_size {
            return Err(LmError::TokenOutOfRange {
                token,
                vocab: self.config.vocab_size,
            });
        }
        let pos = state.pos;
        scratch.x.clear();
        scratch
            .x
            .extend_from_slice(self.embedding.row(token as usize)?);
        scratch.normed.resize(self.config.d_model, 0.0);
        scratch.attn_out.resize(self.config.d_model, 0.0);
        scratch.final_normed.resize(self.config.d_model, 0.0);
        scratch.logits.resize(self.config.vocab_size, 0.0);
        if scratch.accesses.len() != self.layers.len() {
            scratch
                .accesses
                .resize_with(self.layers.len(), Default::default);
        }

        // Mirror management: build the pre-transposed + packed-panel weight
        // mirrors on the first token of a (scratch, model) pairing,
        // revalidate (cheap pointer + sampled-bits check) every token.
        // Reference mode runs without mirrors so before/after measurements
        // are honest.
        let use_mirrors = scratch.use_mirrors && !tensor::kernels::reference_mode();
        if use_mirrors
            && scratch
                .mirrors
                .as_ref()
                .map(|m| !m.matches(self))
                .unwrap_or(true)
        {
            let t0 = std::time::Instant::now();
            scratch.mirrors = Some(crate::scratch::ModelMirrors::build(self));
            scratch.pack_nanos += t0.elapsed().as_nanos() as u64;
            scratch.pack_builds += 1;
        }
        let mirrors = if use_mirrors {
            scratch.mirrors.as_ref()
        } else {
            None
        };

        for (li, layer) in self.layers.iter().enumerate() {
            let layer_mirrors = mirrors.map(|m| &m.layers[li]);
            layer
                .attn_norm
                .forward_into(&scratch.x, &mut scratch.normed);
            layer.attn.forward_token_into(
                &scratch.normed,
                pos,
                &mut state.kv[li],
                &mut scratch.attn,
                &mut scratch.attn_out,
                layer_mirrors.map(|m| &m.attn),
            )?;
            Vector::axpy(1.0, &scratch.attn_out, &mut scratch.x)?;

            layer.mlp_norm.forward_into(&scratch.x, &mut scratch.normed);
            mlp_fw.forward_scratch(
                li,
                &layer.mlp,
                &scratch.normed,
                &mut scratch.mlp,
                &mut scratch.accesses[li],
                layer_mirrors.map(|m| &m.mlp),
            )?;
            Vector::axpy(1.0, &scratch.mlp.y, &mut scratch.x)?;
        }

        self.final_norm
            .forward_into(&scratch.x, &mut scratch.final_normed);
        // the LM head is the single largest matvec: mirrored when mirrors
        // exist, row-partitioned across the pool otherwise (all variants
        // bitwise identical)
        match mirrors {
            Some(m) => self.lm_head.matvec_packed(
                &m.lm_head.packed,
                &scratch.final_normed,
                &mut scratch.logits,
            )?,
            None => self.lm_head.matvec_into_threaded(
                &scratch.final_normed,
                &mut scratch.logits,
                WorkerPool::global(),
            )?,
        }
        state.pos += 1;
        Ok(())
    }

    /// Convenience wrapper: decodes a token with the dense MLP.
    ///
    /// # Errors
    ///
    /// See [`TransformerModel::forward_token`].
    pub fn forward_token_dense(&self, token: u32, state: &mut DecodeState) -> Result<TokenOutput> {
        self.forward_token(token, state, &mut DenseMlp)
    }

    /// Validates one batch row's token id.
    fn check_token(&self, token: u32) -> Result<()> {
        if (token as usize) >= self.config.vocab_size {
            return Err(LmError::TokenOutOfRange {
                token,
                vocab: self.config.vocab_size,
            });
        }
        Ok(())
    }

    /// Builds (or revalidates) the batch scratch's weight mirrors, mirroring
    /// the per-token management of [`TransformerModel::forward_token_into`].
    fn ensure_batch_mirrors(&self, scratch: &mut BatchScratch) -> bool {
        let use_mirrors = scratch.use_mirrors && !tensor::kernels::reference_mode();
        if use_mirrors
            && scratch
                .mirrors
                .as_ref()
                .map(|m| !m.matches(self))
                .unwrap_or(true)
        {
            let t0 = std::time::Instant::now();
            scratch.mirrors = Some(crate::scratch::ModelMirrors::build(self));
            scratch.pack_nanos += t0.elapsed().as_nanos() as u64;
            scratch.pack_builds += 1;
        }
        use_mirrors
    }

    /// Fused cross-session decode step: serves **one token each** of `rows`
    /// distinct sessions through the whole stack in a single pass over the
    /// weights.
    ///
    /// Row `r` feeds `tokens[r]` to `states[r]` exactly as
    /// [`TransformerModel::forward_token_into`] would: per-row outputs,
    /// logits (stacked in [`BatchScratch::logits`]) and access records
    /// ([`BatchScratch::accesses`], indexed `[layer][row]`) are **bitwise
    /// identical** to serving the rows one at a time in batch order. The
    /// batched kernels fuse the QKV/output projections, the MLP weight
    /// passes (per [`BatchStrategies`]) and the LM head across the batch —
    /// one weight pass per matrix per *batch* instead of per token — while
    /// the per-session parts (norms, RoPE, KV append, attention, residuals)
    /// run row by row in batch order through the very same code the
    /// sequential path uses.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] for an empty batch or mismatched
    /// `tokens`/`states`/`strategies` lengths, [`LmError::TokenOutOfRange`]
    /// for an invalid token, and propagates shape errors from the blocks.
    pub fn forward_tokens_batch_into(
        &self,
        tokens: &[u32],
        states: &mut [DecodeState],
        strategies: &mut BatchStrategies<'_>,
        scratch: &mut BatchScratch,
    ) -> Result<()> {
        let rows = tokens.len();
        if rows == 0 || states.len() != rows {
            return Err(LmError::BadSequence {
                reason: format!(
                    "batch of {rows} tokens does not match {} states",
                    states.len()
                ),
            });
        }
        if let BatchStrategies::PerRow(boxes) = strategies {
            if boxes.len() != rows {
                return Err(LmError::BadSequence {
                    reason: format!("batch of {rows} tokens but {} strategies", boxes.len()),
                });
            }
        }
        for &t in tokens {
            self.check_token(t)?;
        }
        scratch.ensure(rows, &self.config);
        scratch.fused_passes += 1;
        scratch.rows_computed += rows as u64;
        let d = self.config.d_model;
        for (r, &t) in tokens.iter().enumerate() {
            scratch.x[r * d..(r + 1) * d].copy_from_slice(self.embedding.row(t as usize)?);
        }

        let use_mirrors = self.ensure_batch_mirrors(scratch);
        let mirrors = if use_mirrors {
            scratch.mirrors.as_ref()
        } else {
            None
        };
        let q_dim = self.layers[0].attn.q_dim();
        let kv_dim = self.layers[0].attn.kv_dim();

        for (li, layer) in self.layers.iter().enumerate() {
            let layer_mirrors = mirrors.map(|m| &m.layers[li]);
            for r in 0..rows {
                layer.attn_norm.forward_into(
                    &scratch.x[r * d..(r + 1) * d],
                    &mut scratch.normed[r * d..(r + 1) * d],
                );
            }
            layer.attn.project_qkv_batch(
                &scratch.normed,
                rows,
                &mut scratch.q,
                &mut scratch.k,
                &mut scratch.v,
                layer_mirrors.map(|m| &m.attn),
            )?;
            for (r, state) in states.iter_mut().enumerate() {
                let pos = state.pos;
                layer.attn.attend_row(
                    pos,
                    &mut state.kv[li],
                    &mut scratch.q[r * q_dim..(r + 1) * q_dim],
                    &mut scratch.k[r * kv_dim..(r + 1) * kv_dim],
                    &scratch.v[r * kv_dim..(r + 1) * kv_dim],
                    &mut scratch.attn.scores,
                    &mut scratch.attn.weights,
                    &mut scratch.attended[r * q_dim..(r + 1) * q_dim],
                )?;
            }
            layer.attn.project_out_batch(
                &scratch.attended,
                rows,
                &mut scratch.attn_out,
                layer_mirrors.map(|m| &m.attn),
            )?;
            for r in 0..rows {
                Vector::axpy(
                    1.0,
                    &scratch.attn_out[r * d..(r + 1) * d],
                    &mut scratch.x[r * d..(r + 1) * d],
                )?;
                layer.mlp_norm.forward_into(
                    &scratch.x[r * d..(r + 1) * d],
                    &mut scratch.normed[r * d..(r + 1) * d],
                );
            }
            let layer_accesses = &mut scratch.accesses[li][..rows];
            match strategies {
                BatchStrategies::Fused(strategy) => strategy.forward_batch_scratch(
                    li,
                    &layer.mlp,
                    &scratch.normed,
                    rows,
                    &mut scratch.mlp,
                    layer_accesses,
                    layer_mirrors.map(|m| &m.mlp),
                )?,
                BatchStrategies::PerRow(boxes) => {
                    for (r, strategy) in boxes.iter_mut().enumerate() {
                        let crate::scratch::MlpBatchWorkspace { y, row_ws, .. } = &mut scratch.mlp;
                        strategy.forward_scratch(
                            li,
                            &layer.mlp,
                            &scratch.normed[r * d..(r + 1) * d],
                            row_ws,
                            &mut layer_accesses[r],
                            layer_mirrors.map(|m| &m.mlp),
                        )?;
                        y[r * d..(r + 1) * d].copy_from_slice(&row_ws.y);
                    }
                }
            }
            for r in 0..rows {
                Vector::axpy(
                    1.0,
                    &scratch.mlp.y[r * d..(r + 1) * d],
                    &mut scratch.x[r * d..(r + 1) * d],
                )?;
            }
        }

        for r in 0..rows {
            self.final_norm.forward_into(
                &scratch.x[r * d..(r + 1) * d],
                &mut scratch.final_normed[r * d..(r + 1) * d],
            );
        }
        match mirrors {
            Some(m) => self.lm_head.matvec_batch_packed(
                &m.lm_head.packed,
                &scratch.final_normed,
                rows,
                &mut scratch.logits,
            )?,
            None => self.lm_head.matvec_batch_into_threaded(
                &scratch.final_normed,
                rows,
                &mut scratch.logits,
                WorkerPool::global(),
            )?,
        }
        for state in states.iter_mut() {
            state.pos += 1;
        }
        Ok(())
    }

    /// Chunked prefill: pushes a whole prompt chunk of **one** session
    /// through each layer as a stacked matrix.
    ///
    /// Row `t` is position `state.pos + t`; within a layer, row `t`'s
    /// attention runs after rows `0..t` appended their KV entries, so it
    /// sees exactly the causal context the token-at-a-time loop would —
    /// KV contents, access records and the *last* row's logits (written to
    /// the last row of [`BatchScratch::logits`]) are bitwise identical to
    /// feeding the chunk through
    /// [`TransformerModel::forward_token_into`] token by token. Earlier
    /// rows' logits are **not** computed: the sequential path computes and
    /// immediately overwrites them, so skipping the LM head there changes
    /// no observable value while removing `chunk - 1` head passes.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] for an empty chunk,
    /// [`LmError::TokenOutOfRange`] for an invalid token, and propagates
    /// KV-capacity and shape errors from the blocks.
    pub fn forward_prompt_into(
        &self,
        chunk: &[u32],
        state: &mut DecodeState,
        mlp_fw: &mut dyn MlpForward,
        scratch: &mut BatchScratch,
    ) -> Result<()> {
        let rows = chunk.len();
        if rows == 0 {
            return Err(LmError::BadSequence {
                reason: "prompt chunk must contain at least one token".to_string(),
            });
        }
        for &t in chunk {
            self.check_token(t)?;
        }
        scratch.ensure(rows, &self.config);
        scratch.fused_passes += 1;
        scratch.rows_computed += rows as u64;
        let d = self.config.d_model;
        for (r, &t) in chunk.iter().enumerate() {
            scratch.x[r * d..(r + 1) * d].copy_from_slice(self.embedding.row(t as usize)?);
        }

        let use_mirrors = self.ensure_batch_mirrors(scratch);
        let mirrors = if use_mirrors {
            scratch.mirrors.as_ref()
        } else {
            None
        };
        let q_dim = self.layers[0].attn.q_dim();
        let kv_dim = self.layers[0].attn.kv_dim();
        let base = state.pos;

        for (li, layer) in self.layers.iter().enumerate() {
            let layer_mirrors = mirrors.map(|m| &m.layers[li]);
            for r in 0..rows {
                layer.attn_norm.forward_into(
                    &scratch.x[r * d..(r + 1) * d],
                    &mut scratch.normed[r * d..(r + 1) * d],
                );
            }
            layer.attn.project_qkv_batch(
                &scratch.normed,
                rows,
                &mut scratch.q,
                &mut scratch.k,
                &mut scratch.v,
                layer_mirrors.map(|m| &m.attn),
            )?;
            // row t attends after rows 0..t pushed their KV — causal by
            // construction, identical to the token-at-a-time order
            for r in 0..rows {
                layer.attn.attend_row(
                    base + r,
                    &mut state.kv[li],
                    &mut scratch.q[r * q_dim..(r + 1) * q_dim],
                    &mut scratch.k[r * kv_dim..(r + 1) * kv_dim],
                    &scratch.v[r * kv_dim..(r + 1) * kv_dim],
                    &mut scratch.attn.scores,
                    &mut scratch.attn.weights,
                    &mut scratch.attended[r * q_dim..(r + 1) * q_dim],
                )?;
            }
            layer.attn.project_out_batch(
                &scratch.attended,
                rows,
                &mut scratch.attn_out,
                layer_mirrors.map(|m| &m.attn),
            )?;
            for r in 0..rows {
                Vector::axpy(
                    1.0,
                    &scratch.attn_out[r * d..(r + 1) * d],
                    &mut scratch.x[r * d..(r + 1) * d],
                )?;
                layer.mlp_norm.forward_into(
                    &scratch.x[r * d..(r + 1) * d],
                    &mut scratch.normed[r * d..(r + 1) * d],
                );
            }
            mlp_fw.forward_batch_scratch(
                li,
                &layer.mlp,
                &scratch.normed,
                rows,
                &mut scratch.mlp,
                &mut scratch.accesses[li][..rows],
                layer_mirrors.map(|m| &m.mlp),
            )?;
            for r in 0..rows {
                Vector::axpy(
                    1.0,
                    &scratch.mlp.y[r * d..(r + 1) * d],
                    &mut scratch.x[r * d..(r + 1) * d],
                )?;
            }
        }

        // only the last row's logits are observable (the sequential loop
        // overwrites every earlier row's)
        let last = rows - 1;
        self.final_norm.forward_into(
            &scratch.x[last * d..(last + 1) * d],
            &mut scratch.final_normed[last * d..(last + 1) * d],
        );
        let vocab = self.config.vocab_size;
        let logits_row = &mut scratch.logits[last * vocab..(last + 1) * vocab];
        let final_row = &scratch.final_normed[last * d..(last + 1) * d];
        match mirrors {
            Some(m) => self
                .lm_head
                .matvec_packed(&m.lm_head.packed, final_row, logits_row)?,
            None => {
                self.lm_head
                    .matvec_into_threaded(final_row, logits_row, WorkerPool::global())?
            }
        }
        state.pos += rows;
        Ok(())
    }

    /// Samples `n_tokens` continuations of `prompt` at the given temperature.
    ///
    /// With `temperature == 0.0` sampling degenerates to greedy argmax.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] for an empty prompt or when the
    /// requested length exceeds the KV-cache capacity, and propagates forward
    /// errors.
    pub fn generate<R: Rng>(
        &self,
        prompt: &[u32],
        n_tokens: usize,
        temperature: f32,
        rng: &mut R,
        mlp_fw: &mut dyn MlpForward,
    ) -> Result<Vec<u32>> {
        if prompt.is_empty() {
            return Err(LmError::BadSequence {
                reason: "prompt must contain at least one token".to_string(),
            });
        }
        if prompt.len() + n_tokens > self.config.max_seq_len {
            return Err(LmError::BadSequence {
                reason: format!(
                    "prompt ({}) + generation ({}) exceeds max_seq_len ({})",
                    prompt.len(),
                    n_tokens,
                    self.config.max_seq_len
                ),
            });
        }
        let mut state = self.new_decode_state();
        let mut scratch = DecodeScratch::for_model(self);
        for &t in prompt {
            self.forward_token_into(t, &mut state, mlp_fw, &mut scratch)?;
        }
        let mut out = Vec::with_capacity(n_tokens);
        for _ in 0..n_tokens {
            let next = sample_from_logits(&scratch.logits, temperature, rng)?;
            out.push(next);
            if out.len() == n_tokens {
                break;
            }
            self.forward_token_into(next, &mut state, mlp_fw, &mut scratch)?;
        }
        Ok(out)
    }
}

/// Samples a token id from logits at the given temperature (0 = greedy).
///
/// # Errors
///
/// Returns an error if `logits` is empty.
pub fn sample_from_logits<R: Rng>(logits: &[f32], temperature: f32, rng: &mut R) -> Result<u32> {
    if temperature <= 0.0 {
        return Ok(Vector::argmax(logits)? as u32);
    }
    let scaled: Vec<f32> = logits.iter().map(|l| l / temperature).collect();
    let probs = Vector::softmax(&scaled)?;
    let r: f32 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return Ok(i as u32);
        }
    }
    Ok((probs.len() - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_synthetic;
    use tensor::init;

    fn tiny_model() -> TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 42).unwrap()
    }

    #[test]
    fn forward_token_produces_vocab_logits() {
        let model = tiny_model();
        let mut state = model.new_decode_state();
        let out = model.forward_token_dense(3, &mut state).unwrap();
        assert_eq!(out.logits.len(), model.config.vocab_size);
        assert_eq!(out.mlp_accesses.len(), model.config.n_layers);
        assert!(out.logits.iter().all(|v| v.is_finite()));
        assert_eq!(state.pos, 1);
    }

    #[test]
    fn forward_rejects_out_of_range_token() {
        let model = tiny_model();
        let mut state = model.new_decode_state();
        assert!(model.forward_token_dense(64, &mut state).is_err());
    }

    #[test]
    fn decoding_is_deterministic() {
        let model = tiny_model();
        let mut s1 = model.new_decode_state();
        let mut s2 = model.new_decode_state();
        for t in [1u32, 5, 9] {
            let a = model.forward_token_dense(t, &mut s1).unwrap();
            let b = model.forward_token_dense(t, &mut s2).unwrap();
            assert_eq!(a.logits, b.logits);
        }
    }

    #[test]
    fn logits_depend_on_context() {
        let model = tiny_model();
        let mut with_ctx = model.new_decode_state();
        model.forward_token_dense(2, &mut with_ctx).unwrap();
        let a = model.forward_token_dense(7, &mut with_ctx).unwrap();

        let mut without_ctx = model.new_decode_state();
        let b = model.forward_token_dense(7, &mut without_ctx).unwrap();

        let diff: f32 = a
            .logits
            .iter()
            .zip(b.logits.iter())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let model = tiny_model();
        let mut rng_a = init::rng(0);
        let mut rng_b = init::rng(1);
        let a = model
            .generate(&[1, 2, 3], 8, 0.0, &mut rng_a, &mut DenseMlp)
            .unwrap();
        let b = model
            .generate(&[1, 2, 3], 8, 0.0, &mut rng_b, &mut DenseMlp)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|t| (*t as usize) < model.config.vocab_size));
    }

    #[test]
    fn generation_validates_inputs() {
        let model = tiny_model();
        let mut rng = init::rng(0);
        assert!(model
            .generate(&[], 4, 1.0, &mut rng, &mut DenseMlp)
            .is_err());
        assert!(model
            .generate(&[1], 1000, 1.0, &mut rng, &mut DenseMlp)
            .is_err());
    }

    #[test]
    fn sampling_respects_temperature_zero() {
        let mut rng = init::rng(0);
        let logits = vec![0.0, 5.0, 1.0];
        for _ in 0..10 {
            assert_eq!(sample_from_logits(&logits, 0.0, &mut rng).unwrap(), 1);
        }
    }

    #[test]
    fn sampling_covers_support_at_high_temperature() {
        let mut rng = init::rng(0);
        let logits = vec![0.0, 0.0, 0.0, 0.0];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let t = sample_from_logits(&logits, 1.0, &mut rng).unwrap();
            seen[t as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn log_probs_normalise() {
        let model = tiny_model();
        let mut state = model.new_decode_state();
        let out = model.forward_token_dense(0, &mut state).unwrap();
        let lp = out.log_probs().unwrap();
        let sum: f32 = lp.iter().map(|l| l.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn chunked_prefill_is_bitwise_identical_to_token_at_a_time() {
        let model = tiny_model();
        let prompt: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6];

        let mut seq_state = model.new_decode_state();
        let mut seq_scratch = DecodeScratch::for_model(&model);
        for &t in &prompt {
            model
                .forward_token_into(t, &mut seq_state, &mut DenseMlp, &mut seq_scratch)
                .unwrap();
        }

        // two chunks of different sizes, through the batched path
        let mut chunk_state = model.new_decode_state();
        let mut batch = crate::scratch::BatchScratch::for_model(&model);
        model
            .forward_prompt_into(&prompt[..5], &mut chunk_state, &mut DenseMlp, &mut batch)
            .unwrap();
        model
            .forward_prompt_into(&prompt[5..], &mut chunk_state, &mut DenseMlp, &mut batch)
            .unwrap();

        assert_eq!(chunk_state.pos, seq_state.pos);
        for (a, b) in chunk_state.kv.iter().zip(seq_state.kv.iter()) {
            assert_eq!(a.len(), b.len());
            for t in 0..a.len() {
                assert_eq!(a.key(t).unwrap(), b.key(t).unwrap(), "KV keys diverged");
                assert_eq!(a.value(t).unwrap(), b.value(t).unwrap());
            }
        }
        let vocab = model.config.vocab_size;
        let last = prompt[5..].len() - 1;
        let chunk_logits = &batch.logits[last * vocab..(last + 1) * vocab];
        for (i, (a, b)) in chunk_logits
            .iter()
            .zip(seq_scratch.logits.iter())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "logit {i} diverged");
        }
    }

    #[test]
    fn batched_decode_is_bitwise_identical_to_sequential_rows() {
        let model = tiny_model();
        let tokens = [5u32, 9, 13, 2];
        let rows = tokens.len();

        // sequential: each "session" decodes its token on its own state
        let mut seq_logits = Vec::new();
        let mut seq_states: Vec<DecodeState> =
            (0..rows).map(|_| model.new_decode_state()).collect();
        let mut seq_scratch = DecodeScratch::for_model(&model);
        for (r, &t) in tokens.iter().enumerate() {
            // give each session distinct context first
            model
                .forward_token_into(
                    (r as u32) + 1,
                    &mut seq_states[r],
                    &mut DenseMlp,
                    &mut seq_scratch,
                )
                .unwrap();
            model
                .forward_token_into(t, &mut seq_states[r], &mut DenseMlp, &mut seq_scratch)
                .unwrap();
            seq_logits.push(seq_scratch.logits.clone());
        }

        let mut batch_states: Vec<DecodeState> =
            (0..rows).map(|_| model.new_decode_state()).collect();
        let mut batch = crate::scratch::BatchScratch::for_model(&model);
        let context: Vec<u32> = (0..rows as u32).map(|r| r + 1).collect();
        let mut fused = BatchStrategies::Fused(&mut DenseMlp);
        model
            .forward_tokens_batch_into(&context, &mut batch_states, &mut fused, &mut batch)
            .unwrap();
        model
            .forward_tokens_batch_into(&tokens, &mut batch_states, &mut fused, &mut batch)
            .unwrap();

        let vocab = model.config.vocab_size;
        for r in 0..rows {
            assert_eq!(batch_states[r].pos, seq_states[r].pos);
            let row = &batch.logits[r * vocab..(r + 1) * vocab];
            for (i, (a, b)) in row.iter().zip(seq_logits[r].iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r} logit {i} diverged");
            }
        }
    }

    #[test]
    fn batch_entry_points_validate_inputs() {
        let model = tiny_model();
        let mut batch = crate::scratch::BatchScratch::for_model(&model);
        let mut state = model.new_decode_state();
        assert!(model
            .forward_prompt_into(&[], &mut state, &mut DenseMlp, &mut batch)
            .is_err());
        assert!(model
            .forward_prompt_into(&[999], &mut state, &mut DenseMlp, &mut batch)
            .is_err());
        let mut fused = BatchStrategies::Fused(&mut DenseMlp);
        assert!(model
            .forward_tokens_batch_into(&[], &mut [], &mut fused, &mut batch)
            .is_err());
        let mut states = vec![model.new_decode_state()];
        assert!(model
            .forward_tokens_batch_into(&[1, 2], &mut states, &mut fused, &mut batch)
            .is_err());
        let mut empty: Vec<Box<dyn MlpForward>> = Vec::new();
        let mut per_row = BatchStrategies::PerRow(&mut empty);
        assert!(model
            .forward_tokens_batch_into(&[1], &mut states, &mut per_row, &mut batch)
            .is_err());
    }

    #[test]
    fn num_params_close_to_config_estimate() {
        let model = tiny_model();
        let estimated = model.config.total_params();
        let actual = model.num_params();
        let rel = (estimated as f64 - actual as f64).abs() / actual as f64;
        assert!(rel < 0.05, "estimate {estimated} vs actual {actual}");
    }
}
