//! Per-layer key/value cache for autoregressive decoding.

use crate::error::{LmError, Result};

/// Key/value cache for a single attention layer.
///
/// Stores one flattened key vector and one flattened value vector
/// (`n_kv_heads * head_dim` floats each) per generated position.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    keys: Vec<Vec<f32>>,
    values: Vec<Vec<f32>>,
    capacity: usize,
}

impl KvCache {
    /// Creates an empty cache with a maximum capacity of `max_seq_len` positions.
    pub fn new(max_seq_len: usize) -> Self {
        KvCache {
            keys: Vec::new(),
            values: Vec::new(),
            capacity: max_seq_len,
        }
    }

    /// Number of positions currently stored.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache holds no positions.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Maximum number of positions the cache accepts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends the key/value vectors of a new position.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] when the cache is full or the key and
    /// value lengths differ.
    pub fn push(&mut self, key: Vec<f32>, value: Vec<f32>) -> Result<()> {
        if self.keys.len() >= self.capacity {
            return Err(LmError::BadSequence {
                reason: format!("KV cache full at capacity {}", self.capacity),
            });
        }
        if key.len() != value.len() {
            return Err(LmError::BadSequence {
                reason: format!("key length {} != value length {}", key.len(), value.len()),
            });
        }
        self.keys.push(key);
        self.values.push(value);
        Ok(())
    }

    /// Key vector stored at position `i`.
    pub fn key(&self, i: usize) -> Option<&[f32]> {
        self.keys.get(i).map(|v| v.as_slice())
    }

    /// Value vector stored at position `i`.
    pub fn value(&self, i: usize) -> Option<&[f32]> {
        self.values.get(i).map(|v| v.as_slice())
    }

    /// Removes all stored positions, keeping the capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = KvCache::new(4);
        c.push(vec![1.0, 2.0], vec![3.0, 4.0]).unwrap();
        c.push(vec![5.0, 6.0], vec![7.0, 8.0]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.key(0).unwrap(), &[1.0, 2.0]);
        assert_eq!(c.value(1).unwrap(), &[7.0, 8.0]);
        assert!(c.key(2).is_none());
    }

    #[test]
    fn rejects_overflow_and_mismatch() {
        let mut c = KvCache::new(1);
        c.push(vec![1.0], vec![1.0]).unwrap();
        assert!(c.push(vec![2.0], vec![2.0]).is_err());
        let mut c = KvCache::new(4);
        assert!(c.push(vec![1.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = KvCache::new(2);
        c.push(vec![1.0], vec![1.0]).unwrap();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
        c.push(vec![2.0], vec![2.0]).unwrap();
        assert_eq!(c.len(), 1);
    }
}
