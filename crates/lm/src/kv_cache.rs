//! Per-layer key/value cache for autoregressive decoding.

use crate::error::{LmError, Result};

/// Key/value cache for a single attention layer.
///
/// Stores one flattened key vector and one flattened value vector
/// (`n_kv_heads * head_dim` floats each) per generated position, in two
/// *flat* contiguous buffers: the first push of a (fresh or cleared) cache
/// fixes the per-position width and reserves the full
/// `capacity × width` storage up front, so steady-state decode appends
/// without ever reallocating — and sequential attention walks over the
/// cached positions stream through contiguous memory.
///
/// Alongside the position-major buffers, the cache maintains a
/// **transposed key store** (`[component][position]`, see
/// [`KvCache::keys_t_row`]): each push scatters its `dim` key components
/// into per-component rows, so the attention score kernel can run its
/// reduction loops over *contiguous positions* (SIMD-width vectors)
/// instead of `head_dim`-length strips — at identical per-output
/// accumulation order, hence bitwise-identical results (see
/// `Attention::attend_row`; the weighted-value pass stays position-major
/// with multiple positions in flight).
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    keys: Vec<f32>,
    values: Vec<f32>,
    /// `[component][position]` view of `keys`: component `d` of position
    /// `t` lives at `d * capacity + t`.
    keys_t: Vec<f32>,
    dim: usize,
    len: usize,
    capacity: usize,
}

impl KvCache {
    /// Creates an empty cache with a maximum capacity of `max_seq_len` positions.
    pub fn new(max_seq_len: usize) -> Self {
        KvCache {
            keys: Vec::new(),
            values: Vec::new(),
            keys_t: Vec::new(),
            dim: 0,
            len: 0,
            capacity: max_seq_len,
        }
    }

    /// Number of positions currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions the cache accepts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends the key/value vectors of a new position.
    ///
    /// # Errors
    ///
    /// See [`KvCache::push_slices`].
    pub fn push(&mut self, key: Vec<f32>, value: Vec<f32>) -> Result<()> {
        self.push_slices(&key, &value)
    }

    /// Appends the key/value vectors of a new position from borrowed slices
    /// (the allocation-free decode path).
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] when the cache is full, the key and
    /// value lengths differ, or the width does not match the positions
    /// already stored.
    pub fn push_slices(&mut self, key: &[f32], value: &[f32]) -> Result<()> {
        if self.len >= self.capacity {
            return Err(LmError::BadSequence {
                reason: format!("KV cache full at capacity {}", self.capacity),
            });
        }
        if key.len() != value.len() {
            return Err(LmError::BadSequence {
                reason: format!("key length {} != value length {}", key.len(), value.len()),
            });
        }
        if self.len == 0 {
            self.dim = key.len();
            self.keys.reserve_exact(self.capacity * self.dim);
            self.values.reserve_exact(self.capacity * self.dim);
            // full transposed key storage (no-op when a recycled cache
            // already holds it); stale entries beyond `len` are never read
            self.keys_t.resize(self.capacity * self.dim, 0.0);
        } else if key.len() != self.dim {
            return Err(LmError::BadSequence {
                reason: format!("key/value width {} != cached width {}", key.len(), self.dim),
            });
        }
        self.keys.extend_from_slice(key);
        self.values.extend_from_slice(value);
        for (d, &kv) in key.iter().enumerate() {
            self.keys_t[d * self.capacity + self.len] = kv;
        }
        self.len += 1;
        Ok(())
    }

    /// Component `d` of every cached position, as one contiguous slice
    /// (`len` values): the transposed view the attention kernels reduce
    /// over.
    ///
    /// # Panics
    ///
    /// Panics if `d >= dim` (the per-position width fixed by the first
    /// push).
    #[inline]
    pub fn keys_t_row(&self, d: usize) -> &[f32] {
        assert!(d < self.dim, "component {d} out of width {}", self.dim);
        &self.keys_t[d * self.capacity..d * self.capacity + self.len]
    }

    /// Key vector stored at position `i`.
    pub fn key(&self, i: usize) -> Option<&[f32]> {
        if i < self.len {
            Some(&self.keys[i * self.dim..(i + 1) * self.dim])
        } else {
            None
        }
    }

    /// Value vector stored at position `i`.
    pub fn value(&self, i: usize) -> Option<&[f32]> {
        if i < self.len {
            Some(&self.values[i * self.dim..(i + 1) * self.dim])
        } else {
            None
        }
    }

    /// Removes all stored positions, keeping the capacity (and the flat
    /// buffers' reserved storage, so a recycled cache never reallocates).
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
        self.len = 0;
    }

    /// Drops every position at index `len` or later, keeping the first `len`.
    ///
    /// A no-op when the cache already holds `len` or fewer positions. (The
    /// serving engine's shared-prefix reuse runs on the paged backing — see
    /// [`crate::kv_paged`] — where a prefix is *mapped*, not re-derived by
    /// rollback; `truncate` remains for flat-cache callers.)
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.keys.truncate(len * self.dim);
            self.values.truncate(len * self.dim);
            self.len = len;
        }
    }
}

/// A pool of [`crate::model::DecodeState`]s for session-scoped reuse.
///
/// A serving engine creates and retires one decode state per user session;
/// allocating `n_layers` fresh [`KvCache`]s for every arrival churns the
/// allocator. The pool recycles released states whose shape (layer count and
/// per-layer capacity) matches the requesting model: `acquire` returns a
/// cleared recycled state when one fits and builds a fresh one otherwise.
///
/// Preemptive schedulers additionally **park** a live session's state
/// ([`DecodeStatePool::park`]) when the session is descheduled at a token
/// boundary: the state keeps its KV entries and position, and
/// [`DecodeStatePool::resume`] hands back *exactly* the parked state, so a
/// resumed session continues its generation without output divergence. A
/// parked state that is never resumed can be reclaimed into the free list
/// with [`DecodeStatePool::reclaim_parked`].
///
/// Under the paged backing ([`crate::kv_paged::PagedKv`]) the pool keeps
/// pool-page residency bounded by *active* sessions: parking spills a
/// paged state's pages into its session-owned buffer (the caller reloads
/// after [`DecodeStatePool::resume`], see [`crate::DecodeState::reload_kv`]),
/// and releasing clears a paged state's pages before it idles in the free
/// list — so neither parked nor idle states ever hold pool pages.
#[derive(Debug, Default)]
pub struct DecodeStatePool {
    free: Vec<crate::model::DecodeState>,
    parked: Vec<(u64, crate::model::DecodeState)>,
    reused: u64,
    built: u64,
    parks: u64,
    resumes: u64,
}

impl DecodeStatePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        DecodeStatePool::default()
    }

    /// Number of idle states currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// How many acquisitions were served by recycling a released state.
    pub fn reuse_count(&self) -> u64 {
        self.reused
    }

    /// How many acquisitions had to build a fresh state.
    pub fn build_count(&self) -> u64 {
        self.built
    }

    fn fits(
        state: &crate::model::DecodeState,
        model: &crate::model::TransformerModel,
        pool: Option<&crate::kv_paged::PagePoolHandle>,
    ) -> bool {
        if state.kv.len() != model.n_layers() {
            return false;
        }
        let cap_ok = state
            .kv
            .first()
            .map(|c| c.capacity() == model.config.max_seq_len)
            .unwrap_or(model.n_layers() == 0);
        if !cap_ok {
            return false;
        }
        match (state.kv.first(), pool) {
            (None, _) => true,
            (Some(crate::kv_paged::KvBacking::Flat(_)), None) => true,
            (Some(crate::kv_paged::KvBacking::Paged(p)), Some(h)) => {
                std::rc::Rc::ptr_eq(p.pool_handle(), h)
            }
            _ => false,
        }
    }

    /// Returns a reset decode state for `model`, recycling a pooled one when
    /// its shape matches (flat backing).
    pub fn acquire(&mut self, model: &crate::model::TransformerModel) -> crate::model::DecodeState {
        self.acquire_backed(model, None)
    }

    /// Returns a reset decode state for `model` on the requested backing:
    /// flat when `pool` is `None`, paged over `pool` otherwise. A recycled
    /// state must match the backing (including the exact page pool) as well
    /// as the shape.
    pub fn acquire_backed(
        &mut self,
        model: &crate::model::TransformerModel,
        pool: Option<&crate::kv_paged::PagePoolHandle>,
    ) -> crate::model::DecodeState {
        if let Some(pos) = self.free.iter().position(|s| Self::fits(s, model, pool)) {
            let mut state = self.free.swap_remove(pos);
            state.reset();
            self.reused += 1;
            state
        } else {
            self.built += 1;
            match pool {
                Some(h) => model.new_decode_state_paged(h),
                None => model.new_decode_state(),
            }
        }
    }

    /// Returns a finished session's state to the pool for later reuse. A
    /// paged state's pages are released immediately — an idle pooled state
    /// must not hold pool memory.
    pub fn release(&mut self, mut state: crate::model::DecodeState) {
        if state.is_paged() {
            for c in &mut state.kv {
                c.clear();
            }
        }
        self.free.push(state);
    }

    /// Parks a preempted session's state under `key` **without resetting
    /// it**: KV entries and position survive until [`DecodeStatePool::resume`].
    /// A paged state is spilled ([`crate::DecodeState::spill_kv`]), so a parked
    /// session holds zero pool pages; the caller reloads after resuming.
    ///
    /// Parking a key that is already parked replaces the previous state
    /// (the old one is reclaimed into the free list — a session has exactly
    /// one live state).
    pub fn park(&mut self, key: u64, mut state: crate::model::DecodeState) {
        state.spill_kv();
        if let Some(pos) = self.parked.iter().position(|(k, _)| *k == key) {
            let (_, old) = self.parked.swap_remove(pos);
            self.free.push(old);
        }
        self.parked.push((key, state));
        self.parks += 1;
    }

    /// Takes the state parked under `key` back out, contents intact, or
    /// `None` when nothing is parked under that key.
    pub fn resume(&mut self, key: u64) -> Option<crate::model::DecodeState> {
        let pos = self.parked.iter().position(|(k, _)| *k == key)?;
        let (_, state) = self.parked.swap_remove(pos);
        self.resumes += 1;
        Some(state)
    }

    /// Number of states currently parked.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// How many park operations happened over the pool's lifetime.
    pub fn park_count(&self) -> u64 {
        self.parks
    }

    /// How many parked states were resumed over the pool's lifetime.
    pub fn resume_count(&self) -> u64 {
        self.resumes
    }

    /// Moves every parked state into the free list (states of sessions that
    /// will never resume — e.g. an engine run that was abandoned). Returns
    /// how many states were reclaimed.
    pub fn reclaim_parked(&mut self) -> usize {
        let n = self.parked.len();
        for (_, state) in self.parked.drain(..) {
            self.free.push(state);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = KvCache::new(4);
        c.push(vec![1.0, 2.0], vec![3.0, 4.0]).unwrap();
        c.push(vec![5.0, 6.0], vec![7.0, 8.0]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.key(0).unwrap(), &[1.0, 2.0]);
        assert_eq!(c.value(1).unwrap(), &[7.0, 8.0]);
        assert!(c.key(2).is_none());
    }

    #[test]
    fn rejects_overflow_and_mismatch() {
        let mut c = KvCache::new(1);
        c.push(vec![1.0], vec![1.0]).unwrap();
        assert!(c.push(vec![2.0], vec![2.0]).is_err());
        let mut c = KvCache::new(4);
        assert!(c.push(vec![1.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn truncate_drops_suffix_only() {
        let mut c = KvCache::new(4);
        for i in 0..3 {
            c.push(vec![i as f32], vec![i as f32]).unwrap();
        }
        c.truncate(5); // no-op beyond current length
        assert_eq!(c.len(), 3);
        c.truncate(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.key(0).unwrap(), &[0.0]);
        assert!(c.key(1).is_none());
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn pool_recycles_matching_states() {
        use crate::builder::build_synthetic;
        use crate::config::ModelConfig;

        let model = build_synthetic(&ModelConfig::tiny(), 2).unwrap();
        let mut pool = DecodeStatePool::new();
        let mut state = pool.acquire(&model);
        assert_eq!(pool.build_count(), 1);

        // dirty the state, release it, and acquire again: same shape comes back reset
        model.forward_token_dense(1, &mut state).unwrap();
        assert_eq!(state.pos, 1);
        pool.release(state);
        assert_eq!(pool.idle(), 1);
        let state = pool.acquire(&model);
        assert_eq!(state.pos, 0);
        assert!(state.kv.iter().all(|c| c.is_empty()));
        assert_eq!(pool.reuse_count(), 1);
        assert_eq!(pool.idle(), 0);

        // a model with a different shape does not reuse the pooled state
        pool.release(state);
        let mut other_config = ModelConfig::tiny();
        other_config.max_seq_len = 128;
        let other = build_synthetic(&other_config, 2).unwrap();
        let _ = pool.acquire(&other);
        assert_eq!(pool.build_count(), 2);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn park_and_resume_preserve_state_contents() {
        use crate::builder::build_synthetic;
        use crate::config::ModelConfig;

        let model = build_synthetic(&ModelConfig::tiny(), 2).unwrap();
        let mut pool = DecodeStatePool::new();
        let mut state = pool.acquire(&model);
        model.forward_token_dense(1, &mut state).unwrap();
        model.forward_token_dense(2, &mut state).unwrap();
        let pos = state.pos;
        let kv_len = state.kv[0].len();
        assert_eq!(pos, 2);

        pool.park(7, state);
        assert_eq!(pool.parked_count(), 1);
        assert_eq!(pool.park_count(), 1);
        assert!(pool.resume(9).is_none());

        // a co-tenant churns through acquire/release in between; the parked
        // state must not be handed out
        let other = pool.acquire(&model);
        pool.release(other);

        let resumed = pool.resume(7).expect("state parked under key 7");
        assert_eq!(pool.parked_count(), 0);
        assert_eq!(pool.resume_count(), 1);
        assert_eq!(resumed.pos, pos, "position survives the park");
        assert_eq!(resumed.kv[0].len(), kv_len, "KV entries survive the park");

        // double-park under one key keeps exactly one live state
        pool.park(3, resumed);
        let fresh = pool.acquire(&model);
        pool.park(3, fresh);
        assert_eq!(pool.parked_count(), 1);
        assert_eq!(pool.reclaim_parked(), 1);
        assert_eq!(pool.parked_count(), 0);
        // reclaimed + replaced states are recyclable, not leaked
        let _ = pool.acquire(&model);
        assert!(pool.reuse_count() >= 2);
    }

    #[test]
    fn pool_recycles_paged_states_and_never_leaks_pages() {
        use crate::builder::build_synthetic;
        use crate::config::ModelConfig;
        use crate::kv_paged::KvPagePool;

        let model = build_synthetic(&ModelConfig::tiny(), 2).unwrap();
        let pages = KvPagePool::new_handle(64, 8);
        let mut pool = DecodeStatePool::new();

        let mut state = pool.acquire_backed(&model, Some(&pages));
        assert!(state.is_paged());
        model.forward_token_dense(1, &mut state).unwrap();
        model.forward_token_dense(2, &mut state).unwrap();
        assert!(pages.borrow().pages_in_use() > 0);

        // parking spills: a parked session holds zero pool pages
        pool.park(7, state);
        assert_eq!(pages.borrow().pages_in_use(), 0);
        let mut state = pool.resume(7).unwrap();
        assert!(state.is_spilled());
        state.reload_kv().unwrap();
        model.forward_token_dense(3, &mut state).unwrap();
        assert_eq!(state.pos, 3);

        // releasing clears: an idle pooled state holds zero pool pages
        pool.release(state);
        assert_eq!(pages.borrow().pages_in_use(), 0);

        // a paged acquire recycles the paged state; a flat acquire must not
        let recycled = pool.acquire_backed(&model, Some(&pages));
        assert_eq!(pool.reuse_count(), 1);
        pool.release(recycled);
        let flat = pool.acquire(&model);
        assert!(!flat.is_paged());
        assert_eq!(pool.build_count(), 2);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = KvCache::new(2);
        c.push(vec![1.0], vec![1.0]).unwrap();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
        c.push(vec![2.0], vec![2.0]).unwrap();
        assert_eq!(c.len(), 1);
    }
}
