//! The gated (GLU) MLP block and the sparsification hook used to plug in
//! dynamic pruning strategies.
//!
//! The block computes `MLP(x) = W_d (W_u x ⊙ σ(W_g x))` (Eqs. 1–2 of the
//! paper). Dynamic sparsity methods replace the dense forward pass with a
//! pruned one; they are plugged into the model through the [`MlpForward`]
//! trait and report which weight *slices* of each matrix they actually
//! touched via [`MlpAccessRecord`], which the hardware simulator consumes to
//! estimate DRAM/Flash traffic.
//!
//! Two slicing axes exist because different methods prune along different
//! dimensions (Fig. 5 of the paper):
//!
//! * [`SliceAxis::Input`] — slices are weight *columns*, indexed by the input
//!   dimension of the matrix. DIP prunes the up/gate matrices this way
//!   (input pruning) and every method prunes `W_d` this way.
//! * [`SliceAxis::Output`] — slices are weight *rows*, indexed by the output
//!   (neuron) dimension. Gate/Up/DejaVu/CATS pruning skip whole neurons, i.e.
//!   rows of `W_u`/`W_g`.

use crate::error::Result;
use crate::scratch::{MlpAccessScratch, MlpBatchWorkspace, MlpWorkspace};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tensor::{Activation, Matrix, QuantMatvec, WeightMirror};

/// Identifies one of the three weight matrices of a GLU MLP block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlpMatrix {
    /// The up projection `W_u` (`d_ff x d_model`).
    Up,
    /// The gate projection `W_g` (`d_ff x d_model`).
    Gate,
    /// The down projection `W_d` (`d_model x d_ff`).
    Down,
}

impl MlpMatrix {
    /// All three matrices, in a fixed order.
    pub const ALL: [MlpMatrix; 3] = [MlpMatrix::Up, MlpMatrix::Gate, MlpMatrix::Down];
}

impl std::fmt::Display for MlpMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MlpMatrix::Up => "up",
            MlpMatrix::Gate => "gate",
            MlpMatrix::Down => "down",
        };
        f.write_str(s)
    }
}

/// The dimension along which a matrix was sliced for loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SliceAxis {
    /// Slices are columns, indexed by the matrix's input dimension.
    Input,
    /// Slices are rows, indexed by the matrix's output dimension.
    Output,
}

/// The set of weight slices of one linear layer accessed for one token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ColumnAccess {
    /// Every slice was needed (dense computation).
    #[default]
    All,
    /// Only the listed slices were needed.
    Subset(Vec<usize>),
}

impl ColumnAccess {
    /// Number of slices accessed, given the total slice count of the axis.
    pub fn count(&self, total: usize) -> usize {
        match self {
            ColumnAccess::All => total,
            ColumnAccess::Subset(v) => v.len(),
        }
    }

    /// Fraction of slices accessed.
    pub fn density(&self, total: usize) -> f32 {
        if total == 0 {
            return 1.0;
        }
        self.count(total) as f32 / total as f32
    }

    /// The accessed slice indices (materialised — allocates; prefer
    /// [`ColumnAccess::for_each_index`] / [`ColumnAccess::extend_indices`]
    /// on hot paths).
    pub fn indices(&self, total: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.extend_indices(total, &mut out);
        out
    }

    /// Visits every accessed slice index in order without materialising.
    pub fn for_each_index(&self, total: usize, mut f: impl FnMut(usize)) {
        match self {
            ColumnAccess::All => (0..total).for_each(&mut f),
            ColumnAccess::Subset(v) => v.iter().copied().for_each(&mut f),
        }
    }

    /// Appends the accessed slice indices to a reused buffer (not cleared).
    pub fn extend_indices(&self, total: usize, out: &mut Vec<usize>) {
        match self {
            ColumnAccess::All => out.extend(0..total),
            ColumnAccess::Subset(v) => out.extend_from_slice(v),
        }
    }

    /// Borrows the subset indices (`None` for a dense access).
    pub fn as_subset(&self) -> Option<&[usize]> {
        match self {
            ColumnAccess::All => None,
            ColumnAccess::Subset(v) => Some(v),
        }
    }
}

/// Access record for a single weight matrix: which slices, along which axis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixAccess {
    /// The slicing axis.
    pub axis: SliceAxis,
    /// The slices that were accessed.
    pub slices: ColumnAccess,
}

impl MatrixAccess {
    /// Dense access (every slice, input axis by convention).
    pub fn dense() -> Self {
        MatrixAccess {
            axis: SliceAxis::Input,
            slices: ColumnAccess::All,
        }
    }

    /// Sparse access along the input (column) axis.
    pub fn input(indices: Vec<usize>) -> Self {
        MatrixAccess {
            axis: SliceAxis::Input,
            slices: ColumnAccess::Subset(indices),
        }
    }

    /// Sparse access along the output (row / neuron) axis.
    pub fn output(indices: Vec<usize>) -> Self {
        MatrixAccess {
            axis: SliceAxis::Output,
            slices: ColumnAccess::Subset(indices),
        }
    }

    /// Number of slices along this access's axis for a matrix with the given
    /// input and output dimensions.
    pub fn axis_len(&self, in_dim: usize, out_dim: usize) -> usize {
        match self.axis {
            SliceAxis::Input => in_dim,
            SliceAxis::Output => out_dim,
        }
    }

    /// Fraction of the matrix's weights that had to be loaded.
    pub fn weight_density(&self, in_dim: usize, out_dim: usize) -> f32 {
        self.slices.density(self.axis_len(in_dim, out_dim))
    }
}

impl Default for MatrixAccess {
    fn default() -> Self {
        MatrixAccess::dense()
    }
}

/// Per-token, per-layer record of the weight slices touched in each MLP matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpAccessRecord {
    /// Access to `W_u`.
    pub up: MatrixAccess,
    /// Access to `W_g`.
    pub gate: MatrixAccess,
    /// Access to `W_d`.
    pub down: MatrixAccess,
}

impl MlpAccessRecord {
    /// A fully dense access record.
    pub fn dense() -> Self {
        MlpAccessRecord::default()
    }

    /// Access record for a specific matrix.
    pub fn access(&self, m: MlpMatrix) -> &MatrixAccess {
        match m {
            MlpMatrix::Up => &self.up,
            MlpMatrix::Gate => &self.gate,
            MlpMatrix::Down => &self.down,
        }
    }

    /// Overall MLP weight density implied by this record for the given block
    /// shape (all three matrices have `d_model * d_ff` parameters, so the
    /// density is the unweighted mean of the per-matrix weight densities).
    pub fn mlp_density(&self, d_model: usize, d_ff: usize) -> f32 {
        let up = self.up.weight_density(d_model, d_ff);
        let gate = self.gate.weight_density(d_model, d_ff);
        let down = self.down.weight_density(d_ff, d_model);
        (up + gate + down) / 3.0
    }
}

/// Output of one MLP forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpForwardOutput {
    /// The MLP output vector added to the residual stream.
    pub y: Vec<f32>,
    /// Which weight slices were needed to produce it.
    pub access: MlpAccessRecord,
}

/// The hook through which dynamic sparsity strategies replace the dense MLP
/// forward pass.
///
/// Implementations live in the `dip-core` crate (DIP, DIP-CA, Gate/Up/GLU
/// pruning, CATS, DejaVu-style predictive pruning, …); the dense baseline
/// [`DenseMlp`] lives here. Implementations may be stateful (e.g. DIP-CA
/// keeps a model of the DRAM cache).
pub trait MlpForward {
    /// Computes the MLP output for one token at the given layer index.
    ///
    /// # Errors
    ///
    /// Implementations propagate shape errors from the underlying kernels.
    fn forward(&mut self, layer: usize, mlp: &GluMlp, x: &[f32]) -> Result<MlpForwardOutput>;

    /// Allocation-free forward pass: leaves the block output in
    /// [`MlpWorkspace::y`] and the access report in `access`, reusing every
    /// buffer across tokens. `mirrors`, when present, are this layer's
    /// pre-transposed weight mirrors (see [`crate::scratch::ModelMirrors`])
    /// for the SIMD-friendly mirrored kernels.
    ///
    /// The default falls back to [`MlpForward::forward`] and copies; the
    /// strategies on the decode hot path override it with zero-allocation
    /// implementations that are bitwise identical to their allocating
    /// counterparts.
    ///
    /// # Errors
    ///
    /// Same as [`MlpForward::forward`].
    fn forward_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&crate::scratch::MlpMirrors>,
    ) -> Result<()> {
        let _ = mirrors;
        let out = self.forward(layer, mlp, x)?;
        ws.y.clear();
        ws.y.extend_from_slice(&out.y);
        access.set_from(&out.access);
        Ok(())
    }

    /// Whether one instance of this strategy may drive a whole batch lane of
    /// sessions through [`MlpForward::forward_batch_scratch`].
    ///
    /// `true` is a **semantic contract**: calling one lane member's
    /// `forward_batch_scratch` over the stacked rows must be bitwise
    /// identical to calling each member's own `forward_scratch` row by row
    /// in the same order. That holds for stateless strategies and for
    /// strategies whose state is *shared* by every lane member (DIP-CA's
    /// shared cache cell). Strategies with private per-session state must
    /// leave this `false` (the default) — the engine then runs each row
    /// through its own instance, still inside the fused attention/LM-head
    /// batch.
    fn batch_fusable(&self) -> bool {
        false
    }

    /// Batched forward: `xs` holds `rows` stacked activation vectors
    /// (`rows × d_model`, row-major); the block outputs land stacked in
    /// [`MlpBatchWorkspace::y`] and row `r`'s access report in
    /// `accesses[r]`.
    ///
    /// The default processes rows one at a time through
    /// [`MlpForward::forward_scratch`] — correct for any strategy when the
    /// rows belong to *one* session (a prefill chunk), and for lanes of
    /// sessions when [`MlpForward::batch_fusable`] holds. Strategies on the
    /// serving hot path override it with fused multi-RHS kernels that pass
    /// over each weight matrix once per batch.
    ///
    /// # Errors
    ///
    /// Same as [`MlpForward::forward_scratch`].
    #[allow(clippy::too_many_arguments)]
    fn forward_batch_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        xs: &[f32],
        rows: usize,
        ws: &mut MlpBatchWorkspace,
        accesses: &mut [MlpAccessScratch],
        mirrors: Option<&crate::scratch::MlpMirrors>,
    ) -> Result<()> {
        let (d_model, d_ff) = (mlp.d_model(), mlp.d_ff());
        ws.ensure(rows, d_model, d_ff);
        for r in 0..rows {
            let x = &xs[r * d_model..(r + 1) * d_model];
            // split borrow: the row workspace is disjoint from the stacked
            // output buffer
            let MlpBatchWorkspace { y, row_ws, .. } = ws;
            self.forward_scratch(layer, mlp, x, row_ws, &mut accesses[r], mirrors)?;
            y[r * d_model..(r + 1) * d_model].copy_from_slice(&row_ws.y);
        }
        Ok(())
    }

    /// Human-readable strategy name used in reports.
    fn name(&self) -> String {
        "custom".to_string()
    }

    /// Resets any per-session state (e.g. simulated caches). Called between
    /// independent evaluation runs; the default is a no-op.
    fn reset(&mut self) {}
}

/// The dense (unpruned) MLP forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenseMlp;

impl MlpForward for DenseMlp {
    fn forward(&mut self, _layer: usize, mlp: &GluMlp, x: &[f32]) -> Result<MlpForwardOutput> {
        Ok(MlpForwardOutput {
            y: mlp.forward_dense(x)?,
            access: MlpAccessRecord::dense(),
        })
    }

    fn forward_scratch(
        &mut self,
        _layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&crate::scratch::MlpMirrors>,
    ) -> Result<()> {
        mlp.forward_dense_into(x, ws, mirrors)?;
        access.set_dense();
        Ok(())
    }

    fn batch_fusable(&self) -> bool {
        true
    }

    fn forward_batch_scratch(
        &mut self,
        _layer: usize,
        mlp: &GluMlp,
        xs: &[f32],
        rows: usize,
        ws: &mut MlpBatchWorkspace,
        accesses: &mut [MlpAccessScratch],
        mirrors: Option<&crate::scratch::MlpMirrors>,
    ) -> Result<()> {
        mlp.forward_dense_batch_into(xs, rows, ws, mirrors)?;
        for access in accesses.iter_mut().take(rows) {
            access.set_dense();
        }
        Ok(())
    }

    fn name(&self) -> String {
        "dense".to_string()
    }
}

/// Packed-quantized views of a GLU block's three matrices, attached by the
/// `quant` crate (see `quant::model_ops::quantize_mlp_fused`).
///
/// When present, every kernel helper of [`GluMlp`] routes through the fused
/// dequant-matvec implementations **first** — before the mirrored/packed
/// f32 paths — so each sparsity strategy's column selections ride the fused
/// panels with zero strategy changes. The attach step also replaces
/// `w_up`/`w_gate`/`w_down` with the dequantized reconstruction, so paths
/// that don't consult `quant` (reference mode, allocating helpers, hwsim
/// accounting) compute bitwise-identical results.
#[derive(Debug, Clone)]
pub struct QuantizedGluWeights {
    /// Fused view of `W_u`.
    pub up: Arc<dyn QuantMatvec>,
    /// Fused view of `W_g`.
    pub gate: Arc<dyn QuantMatvec>,
    /// Fused view of `W_d`.
    pub down: Arc<dyn QuantMatvec>,
}

/// A gated MLP block (`SwiGLU` when the activation is SiLU).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GluMlp {
    /// Up projection `W_u` (`d_ff x d_model`).
    pub w_up: Matrix,
    /// Gate projection `W_g` (`d_ff x d_model`).
    pub w_gate: Matrix,
    /// Down projection `W_d` (`d_model x d_ff`).
    pub w_down: Matrix,
    /// Gate non-linearity.
    pub activation: Activation,
    /// Optional per-neuron bias added to the gate pre-activation.
    ///
    /// The synthetic "ReLU-fied" models use a negative bias here so that the
    /// gate produces the high natural sparsity (80–90 % zeros) that real
    /// ReLU-fied LLMs exhibit; SwiGLU models leave it `None`.
    pub gate_bias: Option<Vec<f32>>,
    /// Optional packed-quantized weights; when set, the `_into` kernel
    /// helpers run fused dequant-matvec instead of the f32 kernels (see
    /// [`QuantizedGluWeights`]).
    pub quant: Option<QuantizedGluWeights>,
}

impl GluMlp {
    /// Creates a GLU MLP from its three weight matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes are inconsistent.
    pub fn new(w_up: Matrix, w_gate: Matrix, w_down: Matrix, activation: Activation) -> Self {
        assert_eq!(
            w_up.shape(),
            w_gate.shape(),
            "W_u and W_g must have equal shapes"
        );
        assert_eq!(w_down.cols(), w_up.rows(), "W_d cols must equal d_ff");
        assert_eq!(w_down.rows(), w_up.cols(), "W_d rows must equal d_model");
        GluMlp {
            w_up,
            w_gate,
            w_down,
            activation,
            gate_bias: None,
            quant: None,
        }
    }

    /// Residual-stream width.
    pub fn d_model(&self) -> usize {
        self.w_up.cols()
    }

    /// Hidden (intermediate) width.
    pub fn d_ff(&self) -> usize {
        self.w_up.rows()
    }

    /// Total number of parameters in the block.
    pub fn num_params(&self) -> usize {
        self.w_up.len() + self.w_gate.len() + self.w_down.len()
    }

    /// Gate pre-activations `W_g x (+ bias)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model`.
    pub fn gate_preactivations(&self, x: &[f32]) -> Result<Vec<f32>> {
        let mut g = self.w_gate.matvec(x)?;
        if let Some(bias) = &self.gate_bias {
            for (gi, bi) in g.iter_mut().zip(bias.iter()) {
                *gi += bi;
            }
        }
        Ok(g)
    }

    /// Gate activations `σ(W_g x)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model`.
    pub fn gate_activations(&self, x: &[f32]) -> Result<Vec<f32>> {
        let mut g = self.gate_preactivations(x)?;
        self.activation.apply(&mut g);
        Ok(g)
    }

    /// Up projections `W_u x`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model`.
    pub fn up_activations(&self, x: &[f32]) -> Result<Vec<f32>> {
        Ok(self.w_up.matvec(x)?)
    }

    /// Gate activations computed only on a subset of the input columns
    /// (input pruning of `W_g`): `σ(W_g[:, S] x_S + bias)`.
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the sparse kernel.
    pub fn gate_activations_input_pruned(
        &self,
        x: &[f32],
        active_inputs: &[usize],
    ) -> Result<Vec<f32>> {
        let mut g = self.w_gate.matvec_cols(x, active_inputs)?;
        if let Some(bias) = &self.gate_bias {
            for (gi, bi) in g.iter_mut().zip(bias.iter()) {
                *gi += bi;
            }
        }
        self.activation.apply(&mut g);
        Ok(g)
    }

    /// Up projections computed only on a subset of the input columns
    /// (input pruning of `W_u`): `W_u[:, S] x_S`.
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the sparse kernel.
    pub fn up_activations_input_pruned(
        &self,
        x: &[f32],
        active_inputs: &[usize],
    ) -> Result<Vec<f32>> {
        Ok(self.w_up.matvec_cols(x, active_inputs)?)
    }

    /// Full GLU activations `W_u x ⊙ σ(W_g x)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model`.
    pub fn glu_activations(&self, x: &[f32]) -> Result<Vec<f32>> {
        let up = self.up_activations(x)?;
        let gate = self.gate_activations(x)?;
        Ok(up.iter().zip(gate.iter()).map(|(u, g)| u * g).collect())
    }

    /// Dense forward pass `W_d GLU(x)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model`.
    pub fn forward_dense(&self, x: &[f32]) -> Result<Vec<f32>> {
        let glu = self.glu_activations(x)?;
        Ok(self.w_down.matvec(&glu)?)
    }

    /// Down projection applied to an (already pruned) GLU activation vector,
    /// touching only the listed columns of `W_d`.
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the underlying sparse kernel.
    pub fn down_from_glu(&self, glu: &[f32], active: &[usize]) -> Result<Vec<f32>> {
        Ok(self.w_down.matvec_cols(glu, active)?)
    }

    // ----- allocation-free variants (see `crate::scratch`) -----
    //
    // Each `_into` method is bitwise identical to its allocating
    // counterpart; it differs only in writing into a caller-owned buffer.
    // Kernel routing, in priority order:
    //
    // 1. fused dequant-matvec when packed-quantized weights are attached
    //    ([`GluMlp::quant`]) — the f32 matrices then hold the dequantized
    //    reconstruction, so every route still computes the same bits;
    // 2. the packed register-blocked microkernels when a [`WeightMirror`]
    //    is supplied (`Matrix::matvec_packed` family, arch-dispatched);
    // 3. the row-major kernels otherwise.
    //
    // All three are bitwise identical (see `tensor::packed`).

    /// Allocation-free [`GluMlp::gate_preactivations`]; `mirror`, when
    /// given, must be built from `w_gate`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model` or `out.len() != d_ff`.
    pub fn gate_preactivations_into(
        &self,
        x: &[f32],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        match (&self.quant, mirror) {
            (Some(q), _) => q.gate.matvec_into(x, out)?,
            (None, Some(m)) => self.w_gate.matvec_packed(&m.packed, x, out)?,
            (None, None) => self.w_gate.matvec_into(x, out)?,
        }
        if let Some(bias) = &self.gate_bias {
            for (gi, bi) in out.iter_mut().zip(bias.iter()) {
                *gi += bi;
            }
        }
        Ok(())
    }

    /// Allocation-free [`GluMlp::gate_activations`]; `mirror`, when given,
    /// must be built from `w_gate`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model` or `out.len() != d_ff`.
    pub fn gate_activations_into(
        &self,
        x: &[f32],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        self.gate_preactivations_into(x, out, mirror)?;
        self.activation.apply(out);
        Ok(())
    }

    /// Allocation-free [`GluMlp::up_activations`]; `mirror`, when given,
    /// must be built from `w_up`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model` or `out.len() != d_ff`.
    pub fn up_activations_into(
        &self,
        x: &[f32],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        match (&self.quant, mirror) {
            (Some(q), _) => Ok(q.up.matvec_into(x, out)?),
            (None, Some(m)) => Ok(self.w_up.matvec_packed(&m.packed, x, out)?),
            (None, None) => Ok(self.w_up.matvec_into(x, out)?),
        }
    }

    /// Allocation-free [`GluMlp::gate_activations_input_pruned`]; `mirror`,
    /// when given, must be built from `w_gate`.
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the sparse kernel.
    pub fn gate_activations_input_pruned_into(
        &self,
        x: &[f32],
        active_inputs: &[usize],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        match (&self.quant, mirror) {
            (Some(q), _) => q.gate.matvec_cols_into(x, active_inputs, out)?,
            (None, Some(m)) => self
                .w_gate
                .matvec_cols_packed(&m.packed, x, active_inputs, out)?,
            (None, None) => self.w_gate.matvec_cols_into(x, active_inputs, out)?,
        }
        if let Some(bias) = &self.gate_bias {
            for (gi, bi) in out.iter_mut().zip(bias.iter()) {
                *gi += bi;
            }
        }
        self.activation.apply(out);
        Ok(())
    }

    /// Allocation-free [`GluMlp::up_activations_input_pruned`]; `mirror`,
    /// when given, must be built from `w_up`.
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the sparse kernel.
    pub fn up_activations_input_pruned_into(
        &self,
        x: &[f32],
        active_inputs: &[usize],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        match (&self.quant, mirror) {
            (Some(q), _) => Ok(q.up.matvec_cols_into(x, active_inputs, out)?),
            (None, Some(m)) => {
                Ok(self
                    .w_up
                    .matvec_cols_packed(&m.packed, x, active_inputs, out)?)
            }
            (None, None) => Ok(self.w_up.matvec_cols_into(x, active_inputs, out)?),
        }
    }

    /// Allocation-free [`GluMlp::down_from_glu`]; `mirror`, when given,
    /// must be built from `w_down`.
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the sparse kernel.
    pub fn down_from_glu_into(
        &self,
        glu: &[f32],
        active: &[usize],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        match (&self.quant, mirror) {
            (Some(q), _) => Ok(q.down.matvec_cols_into(glu, active, out)?),
            (None, Some(m)) => Ok(self
                .w_down
                .matvec_cols_packed(&m.packed, glu, active, out)?),
            (None, None) => Ok(self.w_down.matvec_cols_into(glu, active, out)?),
        }
    }

    // ----- batched (multi-row) variants -----
    //
    // `xs` stacks `rows` activation vectors row-major; every helper is
    // bitwise identical to calling its single-row counterpart once per row
    // (the batched kernels never reorder a reduction), while passing over
    // each weight matrix once per batch.

    /// Adds the gate bias to every stacked row (no-op without a bias).
    fn add_gate_bias_rows(&self, out: &mut [f32], rows: usize) {
        if let Some(bias) = &self.gate_bias {
            let d_ff = self.d_ff();
            for r in 0..rows {
                for (gi, bi) in out[r * d_ff..(r + 1) * d_ff].iter_mut().zip(bias.iter()) {
                    *gi += bi;
                }
            }
        }
    }

    /// Batched [`GluMlp::up_activations_into`] over `rows` stacked inputs.
    ///
    /// # Errors
    ///
    /// Returns a shape error from the batched kernel.
    pub fn up_activations_batch_into(
        &self,
        xs: &[f32],
        rows: usize,
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        match (&self.quant, mirror) {
            (Some(q), _) => Ok(q.up.matvec_batch_into(xs, rows, out)?),
            (None, Some(m)) => Ok(self.w_up.matvec_batch_packed(&m.packed, xs, rows, out)?),
            (None, None) => Ok(self.w_up.matvec_batch_into(xs, rows, out)?),
        }
    }

    /// Batched [`GluMlp::gate_activations_into`] over `rows` stacked inputs.
    ///
    /// # Errors
    ///
    /// Returns a shape error from the batched kernel.
    pub fn gate_activations_batch_into(
        &self,
        xs: &[f32],
        rows: usize,
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        match (&self.quant, mirror) {
            (Some(q), _) => q.gate.matvec_batch_into(xs, rows, out)?,
            (None, Some(m)) => self.w_gate.matvec_batch_packed(&m.packed, xs, rows, out)?,
            (None, None) => self.w_gate.matvec_batch_into(xs, rows, out)?,
        }
        self.add_gate_bias_rows(out, rows);
        // element-wise non-linearity: applying it to the stacked buffer is
        // identical to applying it per row
        self.activation.apply(&mut out[..rows * self.d_ff()]);
        Ok(())
    }

    /// One column-sparse weight pass over a CSR batch: fused dequant when
    /// quantized weights are attached, the packed column-sparse microkernel
    /// per row when a mirror exists (the panel buffer stays cache-resident
    /// across the batch), the fused gathered row-outer kernel otherwise.
    /// All are bitwise identical to per-row [`Matrix::matvec_cols_into`].
    #[allow(clippy::too_many_arguments)]
    fn cols_batch(
        matrix: &Matrix,
        quant: Option<&dyn QuantMatvec>,
        mirror: Option<&WeightMirror>,
        xs: &[f32],
        rows: usize,
        indices: &[usize],
        offsets: &[usize],
        out: &mut [f32],
    ) -> Result<()> {
        match (quant, mirror) {
            (Some(q), _) => Ok(q.matvec_cols_batch_into(xs, rows, indices, offsets, out)?),
            (None, Some(m)) => {
                Ok(matrix.matvec_cols_batch_packed(&m.packed, xs, rows, indices, offsets, out)?)
            }
            (None, None) => Ok(matrix.matvec_cols_batch_into(xs, rows, indices, offsets, out)?),
        }
    }

    /// Batched [`GluMlp::up_activations_input_pruned_into`]: each row has
    /// its own active-input list (CSR over `indices`/`offsets`).
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the underlying sparse kernels.
    #[allow(clippy::too_many_arguments)]
    pub fn up_activations_input_pruned_batch_into(
        &self,
        xs: &[f32],
        rows: usize,
        indices: &[usize],
        offsets: &[usize],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        let quant = self.quant.as_ref().map(|q| q.up.as_ref());
        Self::cols_batch(&self.w_up, quant, mirror, xs, rows, indices, offsets, out)
    }

    /// Batched [`GluMlp::gate_activations_input_pruned_into`]: each row has
    /// its own active-input list (CSR over `indices`/`offsets`).
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the underlying sparse kernels.
    #[allow(clippy::too_many_arguments)]
    pub fn gate_activations_input_pruned_batch_into(
        &self,
        xs: &[f32],
        rows: usize,
        indices: &[usize],
        offsets: &[usize],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        let quant = self.quant.as_ref().map(|q| q.gate.as_ref());
        Self::cols_batch(&self.w_gate, quant, mirror, xs, rows, indices, offsets, out)?;
        self.add_gate_bias_rows(out, rows);
        self.activation.apply(&mut out[..rows * self.d_ff()]);
        Ok(())
    }

    /// Batched [`GluMlp::down_from_glu_into`]: each row has its own active
    /// GLU-column list (CSR over `indices`/`offsets`).
    ///
    /// # Errors
    ///
    /// Returns a shape or index error from the underlying sparse kernels.
    #[allow(clippy::too_many_arguments)]
    pub fn down_from_glu_batch_into(
        &self,
        glus: &[f32],
        rows: usize,
        indices: &[usize],
        offsets: &[usize],
        out: &mut [f32],
        mirror: Option<&WeightMirror>,
    ) -> Result<()> {
        let quant = self.quant.as_ref().map(|q| q.down.as_ref());
        Self::cols_batch(
            &self.w_down,
            quant,
            mirror,
            glus,
            rows,
            indices,
            offsets,
            out,
        )
    }

    /// Batched dense forward pass: one weight pass per matrix for the whole
    /// batch, outputs stacked in [`MlpBatchWorkspace::y`].
    ///
    /// # Errors
    ///
    /// Returns a shape error from the batched kernels.
    pub fn forward_dense_batch_into(
        &self,
        xs: &[f32],
        rows: usize,
        ws: &mut MlpBatchWorkspace,
        mirrors: Option<&crate::scratch::MlpMirrors>,
    ) -> Result<()> {
        ws.ensure(rows, self.d_model(), self.d_ff());
        self.up_activations_batch_into(xs, rows, &mut ws.up, mirrors.map(|m| &m.up))?;
        self.gate_activations_batch_into(xs, rows, &mut ws.gate, mirrors.map(|m| &m.gate))?;
        let n = rows * self.d_ff();
        for ((g, u), gate) in ws.glu[..n]
            .iter_mut()
            .zip(ws.up[..n].iter())
            .zip(ws.gate[..n].iter())
        {
            *g = u * gate;
        }
        match (&self.quant, mirrors) {
            (Some(q), _) => Ok(q.down.matvec_batch_into(&ws.glu[..n], rows, &mut ws.y)?),
            (None, Some(m)) => Ok(self.w_down.matvec_batch_packed(
                &m.down.packed,
                &ws.glu[..n],
                rows,
                &mut ws.y,
            )?),
            (None, None) => Ok(self
                .w_down
                .matvec_batch_into(&ws.glu[..n], rows, &mut ws.y)?),
        }
    }

    /// Allocation-free dense forward pass: computes up/gate/GLU activations
    /// in the workspace and leaves `W_d GLU(x)` in [`MlpWorkspace::y`].
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x.len() != d_model`.
    pub fn forward_dense_into(
        &self,
        x: &[f32],
        ws: &mut MlpWorkspace,
        mirrors: Option<&crate::scratch::MlpMirrors>,
    ) -> Result<()> {
        ws.ensure(self.d_model(), self.d_ff());
        self.up_activations_into(x, &mut ws.up, mirrors.map(|m| &m.up))?;
        self.gate_activations_into(x, &mut ws.gate, mirrors.map(|m| &m.gate))?;
        for ((g, u), gate) in ws.glu.iter_mut().zip(ws.up.iter()).zip(ws.gate.iter()) {
            *g = u * gate;
        }
        match (&self.quant, mirrors) {
            (Some(q), _) => Ok(q.down.matvec_into(&ws.glu, &mut ws.y)?),
            (None, Some(m)) => Ok(self
                .w_down
                .matvec_packed(&m.down.packed, &ws.glu, &mut ws.y)?),
            (None, None) => Ok(self.w_down.matvec_into(&ws.glu, &mut ws.y)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::init;

    fn small_mlp(activation: Activation) -> GluMlp {
        let mut rng = init::rng(9);
        GluMlp::new(
            init::xavier_matrix(&mut rng, 12, 8),
            init::xavier_matrix(&mut rng, 12, 8),
            init::xavier_matrix(&mut rng, 8, 12),
            activation,
        )
    }

    #[test]
    fn shapes_and_params() {
        let mlp = small_mlp(Activation::Silu);
        assert_eq!(mlp.d_model(), 8);
        assert_eq!(mlp.d_ff(), 12);
        assert_eq!(mlp.num_params(), 3 * 8 * 12);
    }

    #[test]
    fn dense_forward_matches_manual_composition() {
        let mlp = small_mlp(Activation::Silu);
        let x = vec![0.3; 8];
        let up = mlp.up_activations(&x).unwrap();
        let gate = mlp.gate_activations(&x).unwrap();
        let glu: Vec<f32> = up.iter().zip(gate.iter()).map(|(u, g)| u * g).collect();
        let manual = mlp.w_down.matvec(&glu).unwrap();
        let fwd = mlp.forward_dense(&x).unwrap();
        for (a, b) in manual.iter().zip(fwd.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn input_pruned_projections_match_masked_inputs() {
        let mlp = small_mlp(Activation::Silu);
        let x = vec![0.5, -0.2, 0.1, 0.3, -0.4, 0.2, 0.0, 0.6];
        let active = vec![0usize, 2, 3, 7];
        let mut masked = vec![0.0f32; 8];
        for &i in &active {
            masked[i] = x[i];
        }
        let up_pruned = mlp.up_activations_input_pruned(&x, &active).unwrap();
        let up_masked = mlp.up_activations(&masked).unwrap();
        for (a, b) in up_pruned.iter().zip(up_masked.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
        let gate_pruned = mlp.gate_activations_input_pruned(&x, &active).unwrap();
        let gate_masked = mlp.gate_activations(&masked).unwrap();
        for (a, b) in gate_pruned.iter().zip(gate_masked.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn negative_gate_bias_induces_natural_sparsity_under_relu() {
        let mut mlp = small_mlp(Activation::Relu);
        mlp.gate_bias = Some(vec![-10.0; 12]);
        let x = vec![0.1; 8];
        let gate = mlp.gate_activations(&x).unwrap();
        assert!(gate.iter().all(|g| *g == 0.0));
        let glu = mlp.glu_activations(&x).unwrap();
        assert!(glu.iter().all(|g| *g == 0.0));
    }

    #[test]
    fn down_from_glu_matches_masked_dense() {
        let mlp = small_mlp(Activation::Silu);
        let x = vec![0.5, -0.2, 0.1, 0.3, -0.4, 0.2, 0.0, 0.6];
        let glu = mlp.glu_activations(&x).unwrap();
        let active: Vec<usize> = (0..6).collect();
        let sparse = mlp.down_from_glu(&glu, &active).unwrap();
        let mut masked = glu.clone();
        for v in masked.iter_mut().skip(6) {
            *v = 0.0;
        }
        let dense = mlp.w_down.matvec(&masked).unwrap();
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn dense_mlp_hook_reports_dense_access() {
        let mlp = small_mlp(Activation::Silu);
        let mut hook = DenseMlp;
        let out = hook.forward(0, &mlp, &[0.1; 8]).unwrap();
        assert_eq!(out.access, MlpAccessRecord::dense());
        assert_eq!(out.y.len(), 8);
        assert_eq!(hook.name(), "dense");
        assert!((out.access.mlp_density(8, 12) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn column_access_counts() {
        let a = ColumnAccess::All;
        assert_eq!(a.count(10), 10);
        assert!((a.density(10) - 1.0).abs() < 1e-6);
        let s = ColumnAccess::Subset(vec![1, 3, 5]);
        assert_eq!(s.count(10), 3);
        assert!((s.density(10) - 0.3).abs() < 1e-6);
        assert_eq!(s.indices(10), vec![1, 3, 5]);
        assert_eq!(a.indices(3), vec![0, 1, 2]);
        assert!((ColumnAccess::All.density(0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn matrix_access_densities_respect_axis() {
        // input axis over d_model = 8
        let input = MatrixAccess::input((0..4).collect());
        assert!((input.weight_density(8, 12) - 0.5).abs() < 1e-6);
        // output axis over d_ff = 12
        let output = MatrixAccess::output((0..3).collect());
        assert!((output.weight_density(8, 12) - 0.25).abs() < 1e-6);
        assert_eq!(MatrixAccess::dense().weight_density(8, 12), 1.0);
        assert_eq!(input.axis_len(8, 12), 8);
        assert_eq!(output.axis_len(8, 12), 12);
    }

    #[test]
    fn access_record_density_mixes_matrices() {
        // DIP-style record: up/gate input-pruned to 50%, down pruned to 50%
        let rec = MlpAccessRecord {
            up: MatrixAccess::input((0..4).collect()),
            gate: MatrixAccess::input((0..4).collect()),
            down: MatrixAccess::input((0..6).collect()),
        };
        assert!((rec.mlp_density(8, 12) - 0.5).abs() < 1e-6);
        assert_eq!(rec.access(MlpMatrix::Down).slices.count(12), 6);

        // DejaVu-style record: all three pruned to the same neuron set
        let neurons: Vec<usize> = (0..6).collect();
        let rec = MlpAccessRecord {
            up: MatrixAccess::output(neurons.clone()),
            gate: MatrixAccess::output(neurons.clone()),
            down: MatrixAccess::input(neurons),
        };
        assert!((rec.mlp_density(8, 12) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn matrix_display() {
        assert_eq!(MlpMatrix::Up.to_string(), "up");
        assert_eq!(MlpMatrix::ALL.len(), 3);
    }
}
