//! Reusable decode workspaces — the zero-allocation hot path.
//!
//! Every buffer the single-token decode path needs lives in a
//! [`DecodeScratch`] owned by the caller (one per decode loop / serving
//! engine, *not* per session — it is pure workspace, all state lives in
//! [`crate::DecodeState`] and the strategy). After a warm-up token sizes the
//! buffers, steady-state decode through
//! [`crate::TransformerModel::forward_token_into`] performs **zero heap
//! allocations per token** on the dense and DIP paths: activations, top-k
//! selections and the per-layer access records all reuse their capacity.
//!
//! Ownership rules (see DESIGN.md §"Performance architecture"):
//!
//! * scratch buffers carry no state across tokens — any token may clobber
//!   any buffer, and nothing reads a buffer it did not write this token;
//! * [`MlpWorkspace`] belongs to the *strategy invocation*: a strategy may
//!   use every field freely but must leave its output in
//!   [`MlpWorkspace::y`] and its access report in the [`MlpAccessScratch`]
//!   it was handed;
//! * access-index buffers ([`AccessBuf`]) are cleared and refilled in
//!   place; converting to an owned [`crate::MlpAccessRecord`] (for traces
//!   or reports) is explicit and allocating.

use crate::config::ModelConfig;
use crate::mlp::{ColumnAccess, MatrixAccess, MlpAccessRecord, SliceAxis};
use crate::model::TransformerModel;
use tensor::{Matrix, WeightMirror};

/// Identity fingerprint of one weight matrix: buffer address, shape and a
/// small sample of element bits. Used to detect that a scratch's mirrors
/// belong to the model currently being decoded (see [`ModelMirrors`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MatrixTag {
    ptr: usize,
    shape: (usize, usize),
    sample: u64,
}

fn matrix_tag(m: &Matrix) -> MatrixTag {
    let s = m.as_slice();
    let mut sample = 0u64;
    if !s.is_empty() {
        for i in 0..8usize {
            let idx = i * (s.len() - 1) / 7;
            sample = sample.rotate_left(8) ^ u64::from(s[idx].to_bits());
        }
    }
    MatrixTag {
        ptr: s.as_ptr() as usize,
        shape: m.shape(),
        sample,
    }
}

/// Mirror set of one attention block's projections (transposed copy +
/// packed panels each; see [`WeightMirror`]).
#[derive(Debug, Clone)]
pub struct AttnMirrors {
    /// `W_q` mirrors.
    pub q: WeightMirror,
    /// `W_k` mirrors.
    pub k: WeightMirror,
    /// `W_v` mirrors.
    pub v: WeightMirror,
    /// `W_o` mirrors.
    pub o: WeightMirror,
}

/// Mirror set of one GLU MLP block's matrices (transposed copy + packed
/// panels each; see [`WeightMirror`]).
#[derive(Debug, Clone)]
pub struct MlpMirrors {
    /// `W_u` mirrors.
    pub up: WeightMirror,
    /// `W_g` mirrors.
    pub gate: WeightMirror,
    /// `W_d` mirrors.
    pub down: WeightMirror,
}

/// Mirrors of one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerMirrors {
    /// Attention projection mirrors.
    pub attn: AttnMirrors,
    /// MLP matrix mirrors.
    pub mlp: MlpMirrors,
}

/// Mirrors of every hot-path weight matrix of one model: for each matrix,
/// both a pre-transposed copy (the historical mirrored kernels; also the
/// layout transpose-consuming callers want) and the packed `MR`-row panels
/// the register-blocked microkernels ([`Matrix::matvec_packed`] family)
/// run on. Both kernel families stay bitwise identical to the row-major
/// kernels — the mirrors cost memory and build time, never bits.
///
/// The decode loop builds mirrors lazily into its [`DecodeScratch`] and
/// validates them each token against the model's fingerprints (buffer
/// pointers, shapes and sampled element bits), so a scratch reused with a
/// *different* model — or a model whose weights were swapped out mid-run —
/// rebuilds every mirror (transposed *and* packed) instead of computing
/// garbage. Mutating a model's weights in place while reusing a warm
/// scratch with it is not supported (transforms happen before decode loops
/// everywhere in this workspace).
#[derive(Debug, Clone)]
pub struct ModelMirrors {
    /// Per-layer mirrors.
    pub layers: Vec<LayerMirrors>,
    /// LM head mirror.
    pub lm_head: WeightMirror,
    tags: Vec<MatrixTag>,
}

impl ModelMirrors {
    /// Iterates a model's mirrored matrices in the canonical tag order.
    fn model_matrices(model: &TransformerModel) -> impl Iterator<Item = &Matrix> {
        model
            .layers
            .iter()
            .flat_map(|l| {
                [
                    &l.attn.w_q,
                    &l.attn.w_k,
                    &l.attn.w_v,
                    &l.attn.w_o,
                    &l.mlp.w_up,
                    &l.mlp.w_gate,
                    &l.mlp.w_down,
                ]
            })
            .chain(std::iter::once(&model.lm_head))
    }

    /// Transposes **and packs** every hot-path matrix of `model` (the one
    /// expensive step; done once per (scratch, model) pairing).
    pub fn build(model: &TransformerModel) -> Self {
        let layers = model
            .layers
            .iter()
            .map(|l| LayerMirrors {
                attn: AttnMirrors {
                    q: WeightMirror::build(&l.attn.w_q),
                    k: WeightMirror::build(&l.attn.w_k),
                    v: WeightMirror::build(&l.attn.w_v),
                    o: WeightMirror::build(&l.attn.w_o),
                },
                mlp: MlpMirrors {
                    up: WeightMirror::build(&l.mlp.w_up),
                    gate: WeightMirror::build(&l.mlp.w_gate),
                    down: WeightMirror::build(&l.mlp.w_down),
                },
            })
            .collect();
        ModelMirrors {
            layers,
            lm_head: WeightMirror::build(&model.lm_head),
            tags: Self::model_matrices(model).map(matrix_tag).collect(),
        }
    }

    /// Whether these mirrors were built from (exactly) this model's current
    /// weight buffers. Allocation-free.
    pub fn matches(&self, model: &TransformerModel) -> bool {
        if self.layers.len() != model.layers.len() {
            return false;
        }
        let mut tags = self.tags.iter();
        for m in Self::model_matrices(model) {
            match tags.next() {
                Some(t) if *t == matrix_tag(m) => {}
                _ => return false,
            }
        }
        tags.next().is_none()
    }
}

/// A reusable, non-allocating stand-in for [`MatrixAccess`]: which slices
/// of one weight matrix were touched, with the index storage recycled
/// across tokens.
#[derive(Debug, Clone)]
pub struct AccessBuf {
    axis: SliceAxis,
    all: bool,
    indices: Vec<usize>,
}

impl AccessBuf {
    /// A dense (all slices, input axis) buffer.
    pub fn new() -> Self {
        AccessBuf {
            axis: SliceAxis::Input,
            all: true,
            indices: Vec::new(),
        }
    }

    /// Marks every slice as accessed along `axis`.
    pub fn set_all(&mut self, axis: SliceAxis) {
        self.axis = axis;
        self.all = true;
        self.indices.clear();
    }

    /// Records a subset of slices along `axis` (copied into the reused
    /// buffer).
    pub fn set_subset(&mut self, axis: SliceAxis, indices: &[usize]) {
        self.axis = axis;
        self.all = false;
        self.indices.clear();
        self.indices.extend_from_slice(indices);
    }

    /// Copies an owned access record into this buffer.
    pub fn set_from(&mut self, access: &MatrixAccess) {
        match &access.slices {
            ColumnAccess::All => self.set_all(access.axis),
            ColumnAccess::Subset(v) => self.set_subset(access.axis, v),
        }
    }

    /// The slicing axis.
    pub fn axis(&self) -> SliceAxis {
        self.axis
    }

    /// Whether every slice was accessed.
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// The recorded subset (`None` when the access was dense).
    pub fn subset(&self) -> Option<&[usize]> {
        if self.all {
            None
        } else {
            Some(&self.indices)
        }
    }

    /// Number of slices accessed, given the axis's total slice count.
    pub fn count(&self, total: usize) -> usize {
        if self.all {
            total
        } else {
            self.indices.len()
        }
    }

    /// Fraction of the matrix's weights loaded (identical arithmetic to
    /// [`MatrixAccess::weight_density`]).
    pub fn weight_density(&self, in_dim: usize, out_dim: usize) -> f32 {
        let total = match self.axis {
            SliceAxis::Input => in_dim,
            SliceAxis::Output => out_dim,
        };
        if total == 0 {
            return 1.0;
        }
        self.count(total) as f32 / total as f32
    }

    /// Materialises an owned [`MatrixAccess`] (allocates).
    pub fn to_access(&self) -> MatrixAccess {
        MatrixAccess {
            axis: self.axis,
            slices: if self.all {
                ColumnAccess::All
            } else {
                ColumnAccess::Subset(self.indices.clone())
            },
        }
    }
}

impl Default for AccessBuf {
    fn default() -> Self {
        AccessBuf::new()
    }
}

/// Reusable per-layer access record: one [`AccessBuf`] per MLP matrix.
#[derive(Debug, Clone, Default)]
pub struct MlpAccessScratch {
    /// Access to `W_u`.
    pub up: AccessBuf,
    /// Access to `W_g`.
    pub gate: AccessBuf,
    /// Access to `W_d`.
    pub down: AccessBuf,
}

impl MlpAccessScratch {
    /// Marks the whole block as densely accessed.
    pub fn set_dense(&mut self) {
        self.up.set_all(SliceAxis::Input);
        self.gate.set_all(SliceAxis::Input);
        self.down.set_all(SliceAxis::Input);
    }

    /// Copies an owned record into the reused buffers.
    pub fn set_from(&mut self, record: &MlpAccessRecord) {
        self.up.set_from(&record.up);
        self.gate.set_from(&record.gate);
        self.down.set_from(&record.down);
    }

    /// Materialises an owned [`MlpAccessRecord`] (allocates).
    pub fn to_record(&self) -> MlpAccessRecord {
        MlpAccessRecord {
            up: self.up.to_access(),
            gate: self.gate.to_access(),
            down: self.down.to_access(),
        }
    }

    /// Overall MLP weight density (identical arithmetic to
    /// [`MlpAccessRecord::mlp_density`]).
    pub fn mlp_density(&self, d_model: usize, d_ff: usize) -> f32 {
        let up = self.up.weight_density(d_model, d_ff);
        let gate = self.gate.weight_density(d_model, d_ff);
        let down = self.down.weight_density(d_ff, d_model);
        (up + gate + down) / 3.0
    }
}

/// Workspace handed to one [`crate::MlpForward::forward_scratch`] call.
///
/// Buffer roles are conventional, not enforced: `up`/`gate`/`glu` are
/// `d_ff`-sized activation buffers, `y` (`d_model`-sized) receives the block
/// output, `active_a`/`active_b` hold index selections, `scores`/`aux` are
/// f32 scratch (top-k magnitudes, re-weighted scores, predictor logits) and
/// `mask` is boolean scratch (cache-state masks).
#[derive(Debug, Clone, Default)]
pub struct MlpWorkspace {
    /// Up-projection activations (`d_ff`).
    pub up: Vec<f32>,
    /// Gate activations or pre-activations (`d_ff`).
    pub gate: Vec<f32>,
    /// GLU activations (`d_ff`).
    pub glu: Vec<f32>,
    /// The MLP block output (`d_model`) — the strategy's result.
    pub y: Vec<f32>,
    /// First index-selection buffer (e.g. DIP's active inputs).
    pub active_a: Vec<usize>,
    /// Second index-selection buffer (e.g. DIP's active GLU columns).
    pub active_b: Vec<usize>,
    /// f32 scratch (top-k magnitude scores).
    pub scores: Vec<f32>,
    /// Additional f32 scratch (re-weighted scores, predictor logits).
    pub aux: Vec<f32>,
    /// Boolean scratch (cache-state masks).
    pub mask: Vec<bool>,
}

impl MlpWorkspace {
    /// Creates a workspace pre-sized for a block shape.
    pub fn new(d_model: usize, d_ff: usize) -> Self {
        let mut ws = MlpWorkspace::default();
        ws.ensure(d_model, d_ff);
        ws.active_a.reserve(d_ff.max(d_model));
        ws.active_b.reserve(d_ff.max(d_model));
        ws.scores.reserve(d_ff.max(d_model));
        ws
    }

    /// Resizes the activation buffers for a block shape (no-op when already
    /// sized, so it is safe to call per token).
    pub fn ensure(&mut self, d_model: usize, d_ff: usize) {
        self.up.resize(d_ff, 0.0);
        self.gate.resize(d_ff, 0.0);
        self.glu.resize(d_ff, 0.0);
        self.y.resize(d_model, 0.0);
    }
}

/// Workspace of one batched [`crate::MlpForward::forward_batch_scratch`]
/// call: `rows` stacked activation vectors flow through the block together.
///
/// Activation buffers are row-major stacks (`rows × d_ff` / `rows ×
/// d_model`); the per-row active-column selections of sparse strategies are
/// CSR-packed (`active_in[active_in_offsets[r]..active_in_offsets[r + 1]]`
/// is row `r`'s list) so the batched gathered kernels can share one weight
/// pass across the whole batch. `row_ws` is a single-row workspace for the
/// default (row-by-row) implementation and for strategies without a fused
/// kernel.
#[derive(Debug, Clone, Default)]
pub struct MlpBatchWorkspace {
    /// Up-projection activations (`rows × d_ff`).
    pub up: Vec<f32>,
    /// Gate activations or pre-activations (`rows × d_ff`).
    pub gate: Vec<f32>,
    /// GLU activations (`rows × d_ff`).
    pub glu: Vec<f32>,
    /// The stacked block outputs (`rows × d_model`) — the strategy's result.
    pub y: Vec<f32>,
    /// CSR indices of the per-row input-column selections.
    pub active_in: Vec<usize>,
    /// CSR offsets of `active_in` (`rows + 1` entries).
    pub active_in_offsets: Vec<usize>,
    /// CSR indices of the per-row GLU-column selections.
    pub active_glu: Vec<usize>,
    /// CSR offsets of `active_glu` (`rows + 1` entries).
    pub active_glu_offsets: Vec<usize>,
    /// Per-row index scratch (one row's selection before CSR packing).
    pub row_active: Vec<usize>,
    /// Per-row f32 scratch (top-k magnitude scores).
    pub scores: Vec<f32>,
    /// Per-row f32 scratch (re-weighted scores, predictor logits).
    pub aux: Vec<f32>,
    /// Per-row boolean scratch (cache-state masks).
    pub mask: Vec<bool>,
    /// Single-row workspace for strategies without a fused batch kernel.
    pub row_ws: MlpWorkspace,
}

impl MlpBatchWorkspace {
    /// Resizes the stacked activation buffers for `rows` vectors of a block
    /// shape (no-op when already sized) and resets the CSR selections.
    pub fn ensure(&mut self, rows: usize, d_model: usize, d_ff: usize) {
        self.up.resize(rows * d_ff, 0.0);
        self.gate.resize(rows * d_ff, 0.0);
        self.glu.resize(rows * d_ff, 0.0);
        self.y.resize(rows * d_model, 0.0);
        self.active_in.clear();
        self.active_in_offsets.clear();
        self.active_glu.clear();
        self.active_glu_offsets.clear();
        self.row_ws.ensure(d_model, d_ff);
    }
}

/// Every buffer a fused multi-row forward pass needs: `rows` stacked tokens
/// — the sessions of one serving batch lane, or one session's prompt chunk
/// — flow through each layer together so every weight matrix is passed over
/// once per *batch* instead of once per token.
///
/// Owned by the decode loop / serving engine like [`DecodeScratch`]; the
/// same ownership rules apply (pure workspace, no cross-step state, buffers
/// resized lazily and reused). Access records are stored `[layer][row]` so
/// each layer's batched MLP call sees a contiguous per-row slice.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Stacked residual streams (`rows × d_model`).
    pub x: Vec<f32>,
    /// Stacked pre-norm outputs (`rows × d_model`).
    pub normed: Vec<f32>,
    /// Stacked attention block outputs (`rows × d_model`).
    pub attn_out: Vec<f32>,
    /// Stacked query projections (`rows × n_heads·head_dim`).
    pub q: Vec<f32>,
    /// Stacked key projections (`rows × n_kv_heads·head_dim`).
    pub k: Vec<f32>,
    /// Stacked value projections (`rows × n_kv_heads·head_dim`).
    pub v: Vec<f32>,
    /// Stacked per-head attention outputs (`rows × n_heads·head_dim`).
    pub attended: Vec<f32>,
    /// Per-row score/weight scratch (rows run through attention one at a
    /// time — attention state is per-session — so one buffer is reused).
    pub attn: AttnScratch,
    /// Batched MLP workspace.
    pub mlp: MlpBatchWorkspace,
    /// Access records of the current batch, indexed `[layer][row]`.
    pub accesses: Vec<Vec<MlpAccessScratch>>,
    /// Stacked final-norm outputs (`rows × d_model`).
    pub final_normed: Vec<f32>,
    /// Stacked next-token logits (`rows × vocab_size`). Chunked prefill
    /// fills only the last row (earlier rows' logits are dead values the
    /// sequential path computed and overwrote).
    pub logits: Vec<f32>,
    /// Lazily-built weight mirrors (see [`ModelMirrors`]), revalidated per
    /// batch exactly like [`DecodeScratch::mirrors`].
    pub mirrors: Option<ModelMirrors>,
    /// Whether the batched path may build and use weight mirrors.
    pub use_mirrors: bool,
    /// Lifetime count of rows computed by fused passes through this scratch
    /// (telemetry only — read by the serving engine's metrics export, never
    /// by any computation).
    pub rows_computed: u64,
    /// Lifetime count of fused forward passes through this scratch
    /// (telemetry only; `rows_computed / fused_passes` is the realised mean
    /// batch width).
    pub fused_passes: u64,
    /// Lifetime nanoseconds spent building weight mirrors (transpose +
    /// pack) into this scratch (telemetry only).
    pub pack_nanos: u64,
    /// Lifetime count of mirror (re)builds into this scratch (telemetry
    /// only — a rebuild after warm-up means weights were swapped mid-run).
    pub pack_builds: u64,
}

impl BatchScratch {
    /// Creates an (empty) batch scratch; buffers are sized by the first
    /// batch through [`BatchScratch::ensure`].
    pub fn new(config: &ModelConfig) -> Self {
        let mut s = BatchScratch {
            use_mirrors: true,
            ..BatchScratch::default()
        };
        s.accesses = (0..config.n_layers).map(|_| Vec::new()).collect();
        // score/weight buffers grow with the attended context; reserving the
        // maximum up front keeps steady-state batches allocation-free
        s.attn.scores.reserve(config.n_heads * config.max_seq_len);
        s.attn.weights.reserve(config.n_heads * config.max_seq_len);
        s
    }

    /// Creates a batch scratch for a model.
    pub fn for_model(model: &TransformerModel) -> Self {
        BatchScratch::new(&model.config)
    }

    /// Sizes every stacked buffer for a batch of `rows` tokens (no-op when
    /// already large enough; buffers keep their capacity across batches).
    pub fn ensure(&mut self, rows: usize, config: &ModelConfig) {
        let head_dim = config.d_model / config.n_heads;
        self.x.resize(rows * config.d_model, 0.0);
        self.normed.resize(rows * config.d_model, 0.0);
        self.attn_out.resize(rows * config.d_model, 0.0);
        self.q.resize(rows * config.n_heads * head_dim, 0.0);
        self.k.resize(rows * config.n_kv_heads * head_dim, 0.0);
        self.v.resize(rows * config.n_kv_heads * head_dim, 0.0);
        self.attended.resize(rows * config.n_heads * head_dim, 0.0);
        self.mlp.ensure(rows, config.d_model, config.d_ff);
        if self.accesses.len() != config.n_layers {
            self.accesses.resize_with(config.n_layers, Vec::new);
        }
        for layer in &mut self.accesses {
            if layer.len() < rows {
                layer.resize_with(rows, Default::default);
            }
        }
        self.final_normed.resize(rows * config.d_model, 0.0);
        self.logits.resize(rows * config.vocab_size, 0.0);
    }
}

/// Attention workspace: projections, per-head scores and weights.
#[derive(Debug, Clone, Default)]
pub struct AttnScratch {
    /// Query projection (`n_heads * head_dim`).
    pub q: Vec<f32>,
    /// Key projection (`n_kv_heads * head_dim`).
    pub k: Vec<f32>,
    /// Value projection (`n_kv_heads * head_dim`).
    pub v: Vec<f32>,
    /// Concatenated per-head attention outputs (`n_heads * head_dim`).
    pub attended: Vec<f32>,
    /// Raw attention scores, `[head][position]` (`n_heads * seq_len`).
    pub scores: Vec<f32>,
    /// Softmaxed attention weights, `[head][position]`.
    pub weights: Vec<f32>,
}

/// Every buffer one decode step needs. Owned by the decode *loop* (or the
/// serving engine), not the session; see the module docs for the ownership
/// rules.
#[derive(Debug, Clone)]
pub struct DecodeScratch {
    /// Residual stream (`d_model`).
    pub x: Vec<f32>,
    /// Pre-norm output feeding attention / MLP (`d_model`).
    pub normed: Vec<f32>,
    /// Attention block output (`d_model`).
    pub attn_out: Vec<f32>,
    /// Attention workspace.
    pub attn: AttnScratch,
    /// MLP strategy workspace.
    pub mlp: MlpWorkspace,
    /// Per-layer access records of the current token.
    pub accesses: Vec<MlpAccessScratch>,
    /// Final-norm output (`d_model`).
    pub final_normed: Vec<f32>,
    /// Next-token logits (`vocab_size`).
    pub logits: Vec<f32>,
    /// Log-probability scratch (`vocab_size`), for evaluation loops.
    pub log_probs: Vec<f32>,
    /// Lazily-built weight mirrors (see [`ModelMirrors`]); populated by the
    /// first decoded token and revalidated per token.
    pub mirrors: Option<ModelMirrors>,
    /// Whether the decode loop may build and use weight mirrors. Defaults
    /// to `true`; one-shot callers (the allocating `forward_token` wrapper)
    /// turn it off, since an O(model-weights) transpose per token would
    /// dwarf the token itself.
    pub use_mirrors: bool,
    /// Lifetime nanoseconds spent building weight mirrors (transpose +
    /// pack) into this scratch (telemetry only).
    pub pack_nanos: u64,
    /// Lifetime count of mirror (re)builds into this scratch (telemetry
    /// only — a rebuild after warm-up means weights were swapped mid-run).
    pub pack_builds: u64,
}

impl DecodeScratch {
    /// Creates a scratch pre-sized for a model configuration.
    pub fn new(config: &ModelConfig) -> Self {
        let head_dim = config.d_model / config.n_heads;
        let mut attn = AttnScratch::default();
        attn.q.resize(config.n_heads * head_dim, 0.0);
        attn.k.resize(config.n_kv_heads * head_dim, 0.0);
        attn.v.resize(config.n_kv_heads * head_dim, 0.0);
        attn.attended.resize(config.n_heads * head_dim, 0.0);
        attn.scores.reserve(config.n_heads * config.max_seq_len);
        attn.weights.reserve(config.n_heads * config.max_seq_len);
        DecodeScratch {
            x: Vec::with_capacity(config.d_model),
            normed: vec![0.0; config.d_model],
            attn_out: vec![0.0; config.d_model],
            attn,
            mlp: MlpWorkspace::new(config.d_model, config.d_ff),
            accesses: (0..config.n_layers)
                .map(|_| MlpAccessScratch::default())
                .collect(),
            final_normed: vec![0.0; config.d_model],
            logits: vec![0.0; config.vocab_size],
            log_probs: vec![0.0; config.vocab_size],
            mirrors: None,
            use_mirrors: true,
            pack_nanos: 0,
            pack_builds: 0,
        }
    }

    /// Creates a scratch pre-sized for a model.
    pub fn for_model(model: &TransformerModel) -> Self {
        DecodeScratch::new(&model.config)
    }

    /// Materialises the per-layer access records (allocates; hot paths read
    /// [`DecodeScratch::accesses`] directly instead).
    pub fn access_records(&self) -> Vec<MlpAccessRecord> {
        self.accesses
            .iter()
            .map(MlpAccessScratch::to_record)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_buf_round_trips_records() {
        let mut buf = AccessBuf::new();
        assert!(buf.is_all());
        buf.set_subset(SliceAxis::Output, &[1, 3, 5]);
        assert_eq!(buf.subset(), Some(&[1usize, 3, 5][..]));
        assert_eq!(buf.count(10), 3);
        let access = buf.to_access();
        assert_eq!(access, MatrixAccess::output(vec![1, 3, 5]));
        let mut back = AccessBuf::new();
        back.set_from(&access);
        assert_eq!(back.subset(), Some(&[1usize, 3, 5][..]));
        back.set_all(SliceAxis::Input);
        assert!(back.subset().is_none());
        assert_eq!(back.count(7), 7);
    }

    #[test]
    fn densities_match_owned_records() {
        let mut scratch = MlpAccessScratch::default();
        scratch.up.set_subset(SliceAxis::Input, &[0, 1, 2, 3]);
        scratch.gate.set_subset(SliceAxis::Input, &[0, 1, 2, 3]);
        scratch
            .down
            .set_subset(SliceAxis::Input, &[0, 1, 2, 3, 4, 5]);
        let record = scratch.to_record();
        let (d_model, d_ff) = (8, 12);
        assert_eq!(
            scratch.mlp_density(d_model, d_ff).to_bits(),
            record.mlp_density(d_model, d_ff).to_bits()
        );
        scratch.set_dense();
        assert_eq!(scratch.to_record(), MlpAccessRecord::dense());
        assert_eq!(scratch.mlp_density(d_model, d_ff), 1.0);
    }

    #[test]
    fn workspace_sizing_is_idempotent() {
        let mut ws = MlpWorkspace::new(8, 24);
        assert_eq!(ws.up.len(), 24);
        assert_eq!(ws.y.len(), 8);
        let up_ptr = ws.up.as_ptr();
        ws.ensure(8, 24);
        assert_eq!(ws.up.as_ptr(), up_ptr, "re-ensuring must not reallocate");
    }
}
