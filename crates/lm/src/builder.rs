//! Synthetic model construction.
//!
//! Real pretrained checkpoints are not available in this environment (see
//! DESIGN.md §1), so models are *generated*: weights are random but
//! statistically calibrated so that
//!
//! 1. GLU activation magnitudes are heavy-tailed — a small fraction of
//!    neurons fire orders of magnitude more strongly than the rest, matching
//!    the distribution the paper reports for Phi-3-Medium (Fig. 10, left);
//! 2. the output distribution is peaked (low-entropy) so that pruning error
//!    visibly degrades perplexity and downstream-task agreement;
//! 3. ReLU-fied variants exhibit high *natural* activation sparsity
//!    (80–90 % exact zeros), matching TurboSparse-style models (Fig. 3).

use crate::attention::Attention;
use crate::config::ModelConfig;
use crate::error::Result;
use crate::mlp::GluMlp;
use crate::model::{TransformerLayer, TransformerModel};
use crate::norm::RmsNorm;
use tensor::{init, Activation};

/// Builds a synthetic model for the given configuration and seed.
///
/// The same `(config, seed)` pair always produces bit-identical weights, so
/// every experiment in the workspace is reproducible.
///
/// # Errors
///
/// Returns an error if the configuration is invalid.
///
/// # Example
///
/// ```
/// use lm::{build_synthetic, ModelConfig};
/// let model = build_synthetic(&ModelConfig::tiny(), 7).unwrap();
/// assert_eq!(model.n_layers(), ModelConfig::tiny().n_layers);
/// ```
pub fn build_synthetic(config: &ModelConfig, seed: u64) -> Result<TransformerModel> {
    config.validate()?;
    let mut rng = init::rng(seed);
    let head_dim = config.head_dim();

    let embedding = init::xavier_matrix(&mut rng, config.vocab_size, config.d_model);

    let mut layers = Vec::with_capacity(config.n_layers);
    for _ in 0..config.n_layers {
        let attn = Attention::new(
            init::xavier_matrix(&mut rng, config.n_heads * head_dim, config.d_model),
            init::xavier_matrix(&mut rng, config.n_kv_heads * head_dim, config.d_model),
            init::xavier_matrix(&mut rng, config.n_kv_heads * head_dim, config.d_model),
            init::xavier_matrix(&mut rng, config.d_model, config.n_heads * head_dim),
            config.n_heads,
            config.n_kv_heads,
            config.rope_theta,
        );

        // Heavy-tailed gains on the up rows concentrate GLU magnitude in a
        // few neurons (Fig. 10 left). Keeping the gate rows milder makes the
        // gate activation alone a poor proxy for |GLU| — the reason Gate
        // pruning trails Up pruning and DIP in the paper's tables.
        let w_up = init::heavy_tailed_matrix(
            &mut rng,
            config.d_ff,
            config.d_model,
            config.heavy_tail_sigma,
        );
        let w_gate = init::heavy_tailed_matrix(
            &mut rng,
            config.d_ff,
            config.d_model,
            0.4 * config.heavy_tail_sigma,
        );
        let w_down = init::xavier_matrix(&mut rng, config.d_model, config.d_ff);
        let mut mlp = GluMlp::new(w_up, w_gate, w_down, config.activation);

        if config.activation == Activation::Relu {
            // Shift gate pre-activations negative by roughly one standard
            // deviation per neuron so that ~80-90% of gate outputs are exact
            // zeros, mimicking ReLU-fied LLMs.
            let bias: Vec<f32> = (0..config.d_ff)
                .map(|r| {
                    let row = mlp.w_gate.row(r).expect("row exists");
                    let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
                    -norm
                })
                .collect();
            mlp.gate_bias = Some(bias);
        }

        // Heavy-tailed per-channel gains on the MLP input norm emulate the
        // outlier channels of real residual streams: a few input coordinates
        // carry most of the energy, which is what makes per-token top-k
        // input pruning (DIP) cheap in accuracy.
        let mut mlp_norm = RmsNorm::new(config.d_model);
        for g in mlp_norm.gain_mut() {
            *g = (0.8 * config.heavy_tail_sigma * init::sample_standard_normal(&mut rng)).exp();
        }

        layers.push(TransformerLayer {
            attn_norm: RmsNorm::new(config.d_model),
            attn,
            mlp_norm,
            mlp,
        });
    }

    let final_norm = RmsNorm::new(config.d_model);
    let mut lm_head = init::xavier_matrix(&mut rng, config.vocab_size, config.d_model);
    lm_head.scale_in_place(config.head_gain);

    TransformerModel::from_parts(config.clone(), embedding, layers, final_norm, lm_head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::DenseMlp;
    use tensor::stats;

    #[test]
    fn building_is_deterministic() {
        let c = ModelConfig::tiny();
        let a = build_synthetic(&c, 3).unwrap();
        let b = build_synthetic(&c, 3).unwrap();
        assert_eq!(
            a.layers[0].mlp.w_gate.as_slice(),
            b.layers[0].mlp.w_gate.as_slice()
        );
        let c2 = build_synthetic(&c, 4).unwrap();
        assert_ne!(
            a.layers[0].mlp.w_gate.as_slice(),
            c2.layers[0].mlp.w_gate.as_slice()
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = ModelConfig::tiny();
        c.n_layers = 0;
        assert!(build_synthetic(&c, 0).is_err());
    }

    #[test]
    fn swiglu_model_has_low_natural_sparsity_relufied_has_high() {
        let config = ModelConfig::tiny();
        let swiglu = build_synthetic(&config, 11).unwrap();
        let relu = build_synthetic(&config.relufied(), 11).unwrap();

        let natural_sparsity = |model: &TransformerModel| -> f32 {
            let mut state = model.new_decode_state();
            let mut zeros = 0usize;
            let mut total = 0usize;
            let mut hook = DenseMlp;
            for t in 0..16u32 {
                // exercise the MLP path through the full model
                model
                    .forward_token(t % config.vocab_size as u32, &mut state, &mut hook)
                    .unwrap();
            }
            // measure on the first layer with a normalized probe input
            let probe = vec![0.3; config.d_model];
            for layer in &model.layers {
                let glu = layer.mlp.glu_activations(&probe).unwrap();
                zeros += glu.iter().filter(|v| **v == 0.0).count();
                total += glu.len();
            }
            zeros as f32 / total as f32
        };

        assert!(natural_sparsity(&swiglu) < 0.1);
        assert!(natural_sparsity(&relu) > 0.5);
    }

    #[test]
    fn glu_activations_are_heavy_tailed() {
        let model = build_synthetic(&ModelConfig::tiny(), 5).unwrap();
        let probe = vec![0.2; model.config.d_model];
        let glu: Vec<f32> = model.layers[0]
            .mlp
            .glu_activations(&probe)
            .unwrap()
            .iter()
            .map(|v| v.abs())
            .collect();
        let p95 = stats::quantile(&glu, 0.95).unwrap();
        let p50 = stats::quantile(&glu, 0.5).unwrap();
        // the top activations should dominate the median by a large factor
        assert!(p95 > 4.0 * p50.max(1e-6), "p95={p95}, p50={p50}");
    }

    #[test]
    fn output_distribution_is_peaked() {
        let model = build_synthetic(&ModelConfig::tiny(), 5).unwrap();
        let mut state = model.new_decode_state();
        let out = model.forward_token_dense(1, &mut state).unwrap();
        let lp = out.log_probs().unwrap();
        let entropy: f32 = lp.iter().map(|l| -l.exp() * l).sum();
        let uniform_entropy = (model.config.vocab_size as f32).ln();
        assert!(
            entropy < 0.8 * uniform_entropy,
            "entropy {entropy} vs uniform {uniform_entropy}"
        );
    }
}
