//! Grouped-query attention (GQA) for single-token decoding.

use crate::error::Result;
use crate::kv_cache::KvCache;
use crate::kv_paged::{KvBacking, PagedKv};
use crate::rope;
use crate::scratch::AttnScratch;
use serde::{Deserialize, Serialize};
use tensor::{Matrix, Vector};

/// A grouped-query attention block operating on one token at a time.
///
/// Projections:
/// * `w_q`: `(n_heads * head_dim) x d_model`
/// * `w_k`, `w_v`: `(n_kv_heads * head_dim) x d_model`
/// * `w_o`: `d_model x (n_heads * head_dim)`
///
/// Query heads are mapped onto key/value heads in contiguous groups of
/// `n_heads / n_kv_heads`, as in Llama-3 / Mistral / Phi-3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attention {
    /// Query projection.
    pub w_q: Matrix,
    /// Key projection.
    pub w_k: Matrix,
    /// Value projection.
    pub w_v: Matrix,
    /// Output projection.
    pub w_o: Matrix,
    n_heads: usize,
    n_kv_heads: usize,
    head_dim: usize,
    rope_theta: f32,
}

impl Attention {
    /// Creates an attention block from its projection matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes are inconsistent with the head layout.
    pub fn new(
        w_q: Matrix,
        w_k: Matrix,
        w_v: Matrix,
        w_o: Matrix,
        n_heads: usize,
        n_kv_heads: usize,
        rope_theta: f32,
    ) -> Self {
        let d_model = w_q.cols();
        let head_dim = w_q.rows() / n_heads;
        assert_eq!(w_q.rows(), n_heads * head_dim, "w_q rows mismatch");
        assert_eq!(w_k.rows(), n_kv_heads * head_dim, "w_k rows mismatch");
        assert_eq!(w_v.rows(), n_kv_heads * head_dim, "w_v rows mismatch");
        assert_eq!(w_o.cols(), n_heads * head_dim, "w_o cols mismatch");
        assert_eq!(w_o.rows(), d_model, "w_o rows mismatch");
        assert!(
            n_heads.is_multiple_of(n_kv_heads),
            "n_kv_heads must divide n_heads"
        );
        Attention {
            w_q,
            w_k,
            w_v,
            w_o,
            n_heads,
            n_kv_heads,
            head_dim,
            rope_theta,
        }
    }

    /// Number of parameters in this block.
    pub fn num_params(&self) -> usize {
        self.w_q.len() + self.w_k.len() + self.w_v.len() + self.w_o.len()
    }

    /// Processes a single token at position `pos`, appending its key/value to
    /// `cache` and attending over everything stored so far.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying projections and cache.
    pub fn forward_token(&self, x: &[f32], pos: usize, cache: &mut KvBacking) -> Result<Vec<f32>> {
        let mut scratch = AttnScratch::default();
        let mut out = vec![0.0f32; self.w_o.rows()];
        self.forward_token_into(x, pos, cache, &mut scratch, &mut out, None)?;
        Ok(out)
    }

    /// Allocation-free [`Attention::forward_token`]: projections, per-head
    /// scores/weights and the attended vector live in `scratch`, the output
    /// (`d_model` values) is written into `out`. `mirrors`, when given, are
    /// this block's pre-transposed projections (see
    /// [`crate::scratch::ModelMirrors`]). Bitwise identical to the
    /// allocating variant either way.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying projections and cache.
    pub fn forward_token_into(
        &self,
        x: &[f32],
        pos: usize,
        cache: &mut KvBacking,
        scratch: &mut AttnScratch,
        out: &mut [f32],
        mirrors: Option<&crate::scratch::AttnMirrors>,
    ) -> Result<()> {
        scratch.q.resize(self.n_heads * self.head_dim, 0.0);
        scratch.k.resize(self.n_kv_heads * self.head_dim, 0.0);
        scratch.v.resize(self.n_kv_heads * self.head_dim, 0.0);
        scratch.attended.resize(self.n_heads * self.head_dim, 0.0);

        match mirrors {
            Some(m) => {
                self.w_q.matvec_packed(&m.q.packed, x, &mut scratch.q)?;
                self.w_k.matvec_packed(&m.k.packed, x, &mut scratch.k)?;
                self.w_v.matvec_packed(&m.v.packed, x, &mut scratch.v)?;
            }
            None => {
                self.w_q.matvec_into(x, &mut scratch.q)?;
                self.w_k.matvec_into(x, &mut scratch.k)?;
                self.w_v.matvec_into(x, &mut scratch.v)?;
            }
        }

        let AttnScratch {
            q,
            k,
            v,
            attended,
            scores,
            weights,
        } = scratch;
        self.attend_row(pos, cache, q, k, v, scores, weights, attended)?;

        match mirrors {
            Some(m) => Ok(self
                .w_o
                .matvec_packed(&m.o.packed, &scratch.attended, out)?),
            None => Ok(self.w_o.matvec_into(&scratch.attended, out)?),
        }
    }

    /// Width of the query projection (`n_heads * head_dim`).
    pub fn q_dim(&self) -> usize {
        self.n_heads * self.head_dim
    }

    /// Width of the key/value projections (`n_kv_heads * head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.n_kv_heads * self.head_dim
    }

    /// Fused QKV projections of `rows` stacked pre-norm inputs (`rows ×
    /// d_model`, row-major) into stacked projection buffers. One weight pass
    /// serves every row; each row's projections are bitwise identical to the
    /// single-token kernels (see [`tensor::Matrix::matvec_batch_into`]).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the batched kernels.
    pub fn project_qkv_batch(
        &self,
        xs: &[f32],
        rows: usize,
        q: &mut [f32],
        k: &mut [f32],
        v: &mut [f32],
        mirrors: Option<&crate::scratch::AttnMirrors>,
    ) -> Result<()> {
        match mirrors {
            Some(m) => {
                self.w_q.matvec_batch_packed(&m.q.packed, xs, rows, q)?;
                self.w_k.matvec_batch_packed(&m.k.packed, xs, rows, k)?;
                self.w_v.matvec_batch_packed(&m.v.packed, xs, rows, v)?;
            }
            None => {
                self.w_q.matvec_batch_into(xs, rows, q)?;
                self.w_k.matvec_batch_into(xs, rows, k)?;
                self.w_v.matvec_batch_into(xs, rows, v)?;
            }
        }
        Ok(())
    }

    /// Fused output projection of `rows` stacked attended vectors.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the batched kernels.
    pub fn project_out_batch(
        &self,
        attended: &[f32],
        rows: usize,
        out: &mut [f32],
        mirrors: Option<&crate::scratch::AttnMirrors>,
    ) -> Result<()> {
        match mirrors {
            Some(m) => Ok(self
                .w_o
                .matvec_batch_packed(&m.o.packed, attended, rows, out)?),
            None => Ok(self.w_o.matvec_batch_into(attended, rows, out)?),
        }
    }

    /// The per-token attention core: applies RoPE to the projected `q`/`k`,
    /// appends `k`/`v` to the cache, and attends over everything stored so
    /// far into `attended`. Both engine execution modes (and the chunked
    /// prefill driver) run every token through this one kernel, in token
    /// order, so their attention outputs are identical by construction.
    ///
    /// # Kernel shape
    ///
    /// The reductions run over the cache's *transposed* component rows
    /// ([`KvCache::keys_t_row`]): each score accumulates its
    /// `q_d · k_d` products with `d` ascending (a component-outer axpy over
    /// contiguous positions), and each attended component is one contiguous
    /// dot over ascending positions. That is exactly the per-output
    /// operation sequence of the historical position-outer loops — same
    /// multiplies, same addition order — so results are **bitwise
    /// identical** while the inner loops run at SIMD width over positions
    /// instead of `head_dim`-length strips.
    ///
    /// # Paged backing
    ///
    /// For a [`PagedKv`] backing the same reductions walk positions page
    /// segment by page segment (a page's transposed rows cannot span
    /// pages), but every score and every attended component still receives
    /// the *identical sequence* of multiply-adds between the identical
    /// accumulator loads and stores — the segmentation changes which slice
    /// is indexed, never the per-output operation order — so the paged
    /// kernel is bit-for-bit equal to the flat oracle.
    ///
    /// # Errors
    ///
    /// Propagates cache and softmax shape errors.
    #[allow(clippy::too_many_arguments)]
    pub fn attend_row(
        &self,
        pos: usize,
        cache: &mut KvBacking,
        q: &mut [f32],
        k: &mut [f32],
        v: &[f32],
        scores: &mut Vec<f32>,
        weights: &mut Vec<f32>,
        attended: &mut [f32],
    ) -> Result<()> {
        rope::apply_rope_multihead(q, self.head_dim, pos, self.rope_theta);
        rope::apply_rope_multihead(k, self.head_dim, pos, self.rope_theta);

        match cache {
            KvBacking::Flat(c) => {
                c.push_slices(k, v)?;
                self.attend_flat(c, q, scores, weights, attended)
            }
            KvBacking::Paged(p) => {
                p.push_slices(k, v)?;
                self.attend_paged(p, q, scores, weights, attended)
            }
        }
    }

    /// Attention over a flat [`KvCache`] (the bitwise oracle kernel).
    fn attend_flat(
        &self,
        cache: &KvCache,
        q: &[f32],
        scores: &mut Vec<f32>,
        weights: &mut Vec<f32>,
        attended: &mut [f32],
    ) -> Result<()> {
        let group = self.n_heads / self.n_kv_heads;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let seq_len = cache.len();
        scores.resize(self.n_heads * seq_len, 0.0);
        weights.resize(self.n_heads * seq_len, 0.0);

        for h in 0..self.n_heads {
            let kv_head = h / group;
            let score_row = &mut scores[h * seq_len..(h + 1) * seq_len];
            score_row.fill(0.0);
            // four components in flight: each score adds its `q_d · k_d`
            // products in ascending-`d` order (in-quad sequence ascending),
            // four fused multiply-adds per score load/store
            let mut i = 0usize;
            while i + 4 <= self.head_dim {
                let d = kv_head * self.head_dim + i;
                let qb = &q[h * self.head_dim + i..h * self.head_dim + i + 4];
                let (q0, q1, q2, q3) = (qb[0], qb[1], qb[2], qb[3]);
                let k0 = cache.keys_t_row(d);
                let k1 = cache.keys_t_row(d + 1);
                let k2 = cache.keys_t_row(d + 2);
                let k3 = cache.keys_t_row(d + 3);
                for (t, s) in score_row.iter_mut().enumerate() {
                    let mut acc = *s;
                    acc += q0 * k0[t];
                    acc += q1 * k1[t];
                    acc += q2 * k2[t];
                    acc += q3 * k3[t];
                    *s = acc;
                }
                i += 4;
            }
            while i < self.head_dim {
                let qv = q[h * self.head_dim + i];
                let k_row = cache.keys_t_row(kv_head * self.head_dim + i);
                for (s, &kv) in score_row.iter_mut().zip(k_row.iter()) {
                    *s += qv * kv;
                }
                i += 1;
            }
            for s in score_row.iter_mut() {
                *s *= scale;
            }
        }
        for h in 0..self.n_heads {
            Vector::softmax_into(
                &scores[h * seq_len..(h + 1) * seq_len],
                &mut weights[h * seq_len..(h + 1) * seq_len],
            )?;
        }
        for h in 0..self.n_heads {
            let kv_head = h / group;
            let w_row = &weights[h * seq_len..(h + 1) * seq_len];
            let head_out = &mut attended[h * self.head_dim..(h + 1) * self.head_dim];
            head_out.fill(0.0);
            // four positions in flight: each output component keeps its own
            // accumulator and adds position contributions in ascending
            // order — four fused multiply-adds per output load/store,
            // bitwise identical to the one-position-at-a-time walk
            let lo = kv_head * self.head_dim;
            let hi = (kv_head + 1) * self.head_dim;
            let mut t = 0usize;
            while t + 8 <= seq_len {
                let v0 = &cache.value(t).expect("position exists")[lo..hi];
                let v1 = &cache.value(t + 1).expect("position exists")[lo..hi];
                let v2 = &cache.value(t + 2).expect("position exists")[lo..hi];
                let v3 = &cache.value(t + 3).expect("position exists")[lo..hi];
                let v4 = &cache.value(t + 4).expect("position exists")[lo..hi];
                let v5 = &cache.value(t + 5).expect("position exists")[lo..hi];
                let v6 = &cache.value(t + 6).expect("position exists")[lo..hi];
                let v7 = &cache.value(t + 7).expect("position exists")[lo..hi];
                let w = &w_row[t..t + 8];
                for (i, o) in head_out.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += w[0] * v0[i];
                    acc += w[1] * v1[i];
                    acc += w[2] * v2[i];
                    acc += w[3] * v3[i];
                    acc += w[4] * v4[i];
                    acc += w[5] * v5[i];
                    acc += w[6] * v6[i];
                    acc += w[7] * v7[i];
                    *o = acc;
                }
                t += 8;
            }
            while t + 4 <= seq_len {
                let v0 = &cache.value(t).expect("position exists")[lo..hi];
                let v1 = &cache.value(t + 1).expect("position exists")[lo..hi];
                let v2 = &cache.value(t + 2).expect("position exists")[lo..hi];
                let v3 = &cache.value(t + 3).expect("position exists")[lo..hi];
                let (w0, w1, w2, w3) = (w_row[t], w_row[t + 1], w_row[t + 2], w_row[t + 3]);
                for (i, o) in head_out.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += w0 * v0[i];
                    acc += w1 * v1[i];
                    acc += w2 * v2[i];
                    acc += w3 * v3[i];
                    *o = acc;
                }
                t += 4;
            }
            while t < seq_len {
                let v = &cache.value(t).expect("position exists")[lo..hi];
                let w = w_row[t];
                for (o, &vv) in head_out.iter_mut().zip(v.iter()) {
                    *o += w * vv;
                }
                t += 1;
            }
        }
        Ok(())
    }

    /// Attention over a [`PagedKv`] page table: the same reductions as
    /// [`Attention::attend_flat`], with the score pass walking each page's
    /// transposed rows segment by segment and the value pass resolving each
    /// position through the page table. Per-output operation order is
    /// identical, so the results are bitwise equal to the flat kernel.
    fn attend_paged(
        &self,
        cache: &PagedKv,
        q: &[f32],
        scores: &mut Vec<f32>,
        weights: &mut Vec<f32>,
        attended: &mut [f32],
    ) -> Result<()> {
        let pool = cache.pool_handle().borrow();
        let pages = cache.pages();
        let ps = cache.page_size();
        let group = self.n_heads / self.n_kv_heads;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let seq_len = cache.len();
        scores.resize(self.n_heads * seq_len, 0.0);
        weights.resize(self.n_heads * seq_len, 0.0);

        for h in 0..self.n_heads {
            let kv_head = h / group;
            let score_row = &mut scores[h * seq_len..(h + 1) * seq_len];
            score_row.fill(0.0);
            // same quad-component axpy as the flat kernel, page segment by
            // page segment: each score still adds q0·k0 … q3·k3 in
            // ascending-`d` order between one accumulator load and store
            let mut i = 0usize;
            while i + 4 <= self.head_dim {
                let d = kv_head * self.head_dim + i;
                let qb = &q[h * self.head_dim + i..h * self.head_dim + i + 4];
                let (q0, q1, q2, q3) = (qb[0], qb[1], qb[2], qb[3]);
                let mut t0 = 0usize;
                for &page in pages {
                    if t0 >= seq_len {
                        break;
                    }
                    let seg = (seq_len - t0).min(ps);
                    let k0 = &pool.keys_t_row(page, d)[..seg];
                    let k1 = &pool.keys_t_row(page, d + 1)[..seg];
                    let k2 = &pool.keys_t_row(page, d + 2)[..seg];
                    let k3 = &pool.keys_t_row(page, d + 3)[..seg];
                    for (t, s) in score_row[t0..t0 + seg].iter_mut().enumerate() {
                        let mut acc = *s;
                        acc += q0 * k0[t];
                        acc += q1 * k1[t];
                        acc += q2 * k2[t];
                        acc += q3 * k3[t];
                        *s = acc;
                    }
                    t0 += seg;
                }
                i += 4;
            }
            while i < self.head_dim {
                let qv = q[h * self.head_dim + i];
                let d = kv_head * self.head_dim + i;
                let mut t0 = 0usize;
                for &page in pages {
                    if t0 >= seq_len {
                        break;
                    }
                    let seg = (seq_len - t0).min(ps);
                    let k_row = &pool.keys_t_row(page, d)[..seg];
                    for (s, &kv) in score_row[t0..t0 + seg].iter_mut().zip(k_row.iter()) {
                        *s += qv * kv;
                    }
                    t0 += seg;
                }
                i += 1;
            }
            for s in score_row.iter_mut() {
                *s *= scale;
            }
        }
        for h in 0..self.n_heads {
            Vector::softmax_into(
                &scores[h * seq_len..(h + 1) * seq_len],
                &mut weights[h * seq_len..(h + 1) * seq_len],
            )?;
        }
        // the value pass resolves positions through the page table but
        // keeps the flat kernel's exact 8/4/1 position blocking over
        // *global* positions, so each output component's accumulator sees
        // the identical grouping of adds between loads and stores
        let val = |t: usize| pool.value(pages[t / ps], t % ps);
        for h in 0..self.n_heads {
            let kv_head = h / group;
            let w_row = &weights[h * seq_len..(h + 1) * seq_len];
            let head_out = &mut attended[h * self.head_dim..(h + 1) * self.head_dim];
            head_out.fill(0.0);
            let lo = kv_head * self.head_dim;
            let hi = (kv_head + 1) * self.head_dim;
            let mut t = 0usize;
            while t + 8 <= seq_len {
                let v0 = &val(t)[lo..hi];
                let v1 = &val(t + 1)[lo..hi];
                let v2 = &val(t + 2)[lo..hi];
                let v3 = &val(t + 3)[lo..hi];
                let v4 = &val(t + 4)[lo..hi];
                let v5 = &val(t + 5)[lo..hi];
                let v6 = &val(t + 6)[lo..hi];
                let v7 = &val(t + 7)[lo..hi];
                let w = &w_row[t..t + 8];
                for (i, o) in head_out.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += w[0] * v0[i];
                    acc += w[1] * v1[i];
                    acc += w[2] * v2[i];
                    acc += w[3] * v3[i];
                    acc += w[4] * v4[i];
                    acc += w[5] * v5[i];
                    acc += w[6] * v6[i];
                    acc += w[7] * v7[i];
                    *o = acc;
                }
                t += 8;
            }
            while t + 4 <= seq_len {
                let v0 = &val(t)[lo..hi];
                let v1 = &val(t + 1)[lo..hi];
                let v2 = &val(t + 2)[lo..hi];
                let v3 = &val(t + 3)[lo..hi];
                let (w0, w1, w2, w3) = (w_row[t], w_row[t + 1], w_row[t + 2], w_row[t + 3]);
                for (i, o) in head_out.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += w0 * v0[i];
                    acc += w1 * v1[i];
                    acc += w2 * v2[i];
                    acc += w3 * v3[i];
                    *o = acc;
                }
                t += 4;
            }
            while t < seq_len {
                let v = &val(t)[lo..hi];
                let w = w_row[t];
                for (o, &vv) in head_out.iter_mut().zip(v.iter()) {
                    *o += w * vv;
                }
                t += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::init;

    fn small_attention(n_heads: usize, n_kv_heads: usize) -> Attention {
        let d_model = 16;
        let head_dim = d_model / n_heads;
        let mut rng = init::rng(11);
        Attention::new(
            init::xavier_matrix(&mut rng, n_heads * head_dim, d_model),
            init::xavier_matrix(&mut rng, n_kv_heads * head_dim, d_model),
            init::xavier_matrix(&mut rng, n_kv_heads * head_dim, d_model),
            init::xavier_matrix(&mut rng, d_model, n_heads * head_dim),
            n_heads,
            n_kv_heads,
            10_000.0,
        )
    }

    #[test]
    fn forward_token_produces_d_model_output() {
        let attn = small_attention(4, 2);
        let mut cache = KvBacking::Flat(KvCache::new(8));
        let x = vec![0.1; 16];
        let y = attn.forward_token(&x, 0, &mut cache).unwrap();
        assert_eq!(y.len(), 16);
        assert_eq!(cache.len(), 1);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_position_attention_is_value_projection() {
        // With only one cached position the softmax weight is 1, so the output
        // equals W_o applied to the (grouped) value projection.
        let attn = small_attention(4, 4);
        let mut cache = KvBacking::Flat(KvCache::new(4));
        let x: Vec<f32> = (0..16).map(|i| (i as f32) / 16.0).collect();
        let y = attn.forward_token(&x, 0, &mut cache).unwrap();
        let v = attn.w_v.matvec(&x).unwrap();
        let expected = attn.w_o.matvec(&v).unwrap();
        for (a, b) in y.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn output_depends_on_history() {
        let attn = small_attention(4, 2);
        let x0 = vec![0.2; 16];
        let x1 = vec![-0.1; 16];

        let mut cache_a = KvBacking::Flat(KvCache::new(8));
        attn.forward_token(&x0, 0, &mut cache_a).unwrap();
        let with_history = attn.forward_token(&x1, 1, &mut cache_a).unwrap();

        let mut cache_b = KvBacking::Flat(KvCache::new(8));
        let without_history = attn.forward_token(&x1, 0, &mut cache_b).unwrap();

        let diff: f32 = with_history
            .iter()
            .zip(without_history.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "attention output should depend on KV history");
    }

    /// Drives `tokens` inputs through `attn` on the given backing and
    /// returns every output, for bitwise comparison between backings.
    fn run_sequence(attn: &Attention, cache: &mut KvBacking, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|pos| {
                let x: Vec<f32> = (0..16)
                    .map(|i| ((pos * 17 + i * 3) % 13) as f32 / 13.0 - 0.4)
                    .collect();
                attn.forward_token(&x, pos, cache).unwrap()
            })
            .collect()
    }

    fn assert_bitwise_eq(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
        assert_eq!(a.len(), b.len());
        for (t, (ya, yb)) in a.iter().zip(b.iter()).enumerate() {
            for (i, (va, vb)) in ya.iter().zip(yb.iter()).enumerate() {
                assert_eq!(va.to_bits(), vb.to_bits(), "{what}: token {t} output {i}");
            }
        }
    }

    #[test]
    fn paged_attention_is_bitwise_identical_to_flat() {
        // page_size 3 forces partial segments inside the quad score pass;
        // 21 tokens exercise the 8-, 4- and 1-wide value unrolls across
        // page boundaries
        let attn = small_attention(4, 2);
        let pool = crate::kv_paged::KvPagePool::new_handle(16, 3);
        let mut flat = KvBacking::Flat(KvCache::new(32));
        let mut paged = KvBacking::Paged(PagedKv::new(&pool, 32));
        let ys_flat = run_sequence(&attn, &mut flat, 21);
        let ys_paged = run_sequence(&attn, &mut paged, 21);
        assert_bitwise_eq(&ys_flat, &ys_paged, "paged vs flat");
    }

    #[test]
    fn cow_forked_session_matches_flat_continuation() {
        let attn = small_attention(4, 2);
        let pool = crate::kv_paged::KvPagePool::new_handle(32, 4);
        let mut flat = KvBacking::Flat(KvCache::new(32));
        let mut paged = KvBacking::Paged(PagedKv::new(&pool, 32));
        let pre_flat = run_sequence(&attn, &mut flat, 6);
        let pre_paged = run_sequence(&attn, &mut paged, 6);
        assert_bitwise_eq(&pre_flat, &pre_paged, "shared prefix");

        // fork the paged session mid-page; both the original and the clone
        // must keep matching the flat oracle exactly
        let mut forked = paged.clone();
        for pos in 6..14 {
            let x: Vec<f32> = (0..16)
                .map(|i| ((pos * 17 + i * 3) % 13) as f32 / 13.0 - 0.4)
                .collect();
            let ya = attn.forward_token(&x, pos, &mut flat).unwrap();
            let yb = attn.forward_token(&x, pos, &mut paged).unwrap();
            let yc = attn.forward_token(&x, pos, &mut forked).unwrap();
            assert_bitwise_eq(
                std::slice::from_ref(&ya),
                &[yb],
                "original paged session after the fork",
            );
            assert_bitwise_eq(&[ya], &[yc], "forked paged session");
        }
    }

    #[test]
    fn spilled_and_reloaded_session_matches_flat() {
        let attn = small_attention(4, 2);
        let pool = crate::kv_paged::KvPagePool::new_handle(16, 4);
        let mut flat = KvBacking::Flat(KvCache::new(32));
        let mut paged = KvBacking::Paged(PagedKv::new(&pool, 32));
        let a = run_sequence(&attn, &mut flat, 7);
        let b = run_sequence(&attn, &mut paged, 7);
        assert_bitwise_eq(&a, &b, "before the spill");

        let p = paged.paged_mut().unwrap();
        p.spill();
        p.reload().unwrap();
        for pos in 7..12 {
            let x: Vec<f32> = (0..16)
                .map(|i| ((pos * 17 + i * 3) % 13) as f32 / 13.0 - 0.4)
                .collect();
            let ya = attn.forward_token(&x, pos, &mut flat).unwrap();
            let yb = attn.forward_token(&x, pos, &mut paged).unwrap();
            assert_bitwise_eq(&[ya], &[yb], "after spill/reload");
        }
    }

    #[test]
    fn gqa_matches_mha_when_groups_are_one() {
        // sanity: construction works for both and parameter counts differ
        let mha = small_attention(4, 4);
        let gqa = small_attention(4, 2);
        assert!(gqa.num_params() < mha.num_params());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_grouping_panics() {
        let d_model = 16;
        let mut rng = init::rng(1);
        let _ = Attention::new(
            init::xavier_matrix(&mut rng, 16, d_model),
            init::xavier_matrix(&mut rng, 12, d_model),
            init::xavier_matrix(&mut rng, 12, d_model),
            init::xavier_matrix(&mut rng, d_model, 16),
            4,
            3,
            10_000.0,
        );
    }
}
