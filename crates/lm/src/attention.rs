//! Grouped-query attention (GQA) for single-token decoding.

use crate::error::Result;
use crate::kv_cache::KvCache;
use crate::rope;
use crate::scratch::AttnScratch;
use serde::{Deserialize, Serialize};
use tensor::{Matrix, Vector};

/// A grouped-query attention block operating on one token at a time.
///
/// Projections:
/// * `w_q`: `(n_heads * head_dim) x d_model`
/// * `w_k`, `w_v`: `(n_kv_heads * head_dim) x d_model`
/// * `w_o`: `d_model x (n_heads * head_dim)`
///
/// Query heads are mapped onto key/value heads in contiguous groups of
/// `n_heads / n_kv_heads`, as in Llama-3 / Mistral / Phi-3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attention {
    /// Query projection.
    pub w_q: Matrix,
    /// Key projection.
    pub w_k: Matrix,
    /// Value projection.
    pub w_v: Matrix,
    /// Output projection.
    pub w_o: Matrix,
    n_heads: usize,
    n_kv_heads: usize,
    head_dim: usize,
    rope_theta: f32,
}

impl Attention {
    /// Creates an attention block from its projection matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes are inconsistent with the head layout.
    pub fn new(
        w_q: Matrix,
        w_k: Matrix,
        w_v: Matrix,
        w_o: Matrix,
        n_heads: usize,
        n_kv_heads: usize,
        rope_theta: f32,
    ) -> Self {
        let d_model = w_q.cols();
        let head_dim = w_q.rows() / n_heads;
        assert_eq!(w_q.rows(), n_heads * head_dim, "w_q rows mismatch");
        assert_eq!(w_k.rows(), n_kv_heads * head_dim, "w_k rows mismatch");
        assert_eq!(w_v.rows(), n_kv_heads * head_dim, "w_v rows mismatch");
        assert_eq!(w_o.cols(), n_heads * head_dim, "w_o cols mismatch");
        assert_eq!(w_o.rows(), d_model, "w_o rows mismatch");
        assert!(
            n_heads.is_multiple_of(n_kv_heads),
            "n_kv_heads must divide n_heads"
        );
        Attention {
            w_q,
            w_k,
            w_v,
            w_o,
            n_heads,
            n_kv_heads,
            head_dim,
            rope_theta,
        }
    }

    /// Number of parameters in this block.
    pub fn num_params(&self) -> usize {
        self.w_q.len() + self.w_k.len() + self.w_v.len() + self.w_o.len()
    }

    /// Processes a single token at position `pos`, appending its key/value to
    /// `cache` and attending over everything stored so far.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying projections and cache.
    pub fn forward_token(&self, x: &[f32], pos: usize, cache: &mut KvCache) -> Result<Vec<f32>> {
        let mut scratch = AttnScratch::default();
        let mut out = vec![0.0f32; self.w_o.rows()];
        self.forward_token_into(x, pos, cache, &mut scratch, &mut out, None)?;
        Ok(out)
    }

    /// Allocation-free [`Attention::forward_token`]: projections, per-head
    /// scores/weights and the attended vector live in `scratch`, the output
    /// (`d_model` values) is written into `out`. `mirrors`, when given, are
    /// this block's pre-transposed projections (see
    /// [`crate::scratch::ModelMirrors`]). Bitwise identical to the
    /// allocating variant either way.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying projections and cache.
    pub fn forward_token_into(
        &self,
        x: &[f32],
        pos: usize,
        cache: &mut KvCache,
        scratch: &mut AttnScratch,
        out: &mut [f32],
        mirrors: Option<&crate::scratch::AttnMirrors>,
    ) -> Result<()> {
        scratch.q.resize(self.n_heads * self.head_dim, 0.0);
        scratch.k.resize(self.n_kv_heads * self.head_dim, 0.0);
        scratch.v.resize(self.n_kv_heads * self.head_dim, 0.0);
        scratch.attended.resize(self.n_heads * self.head_dim, 0.0);

        match mirrors {
            Some(m) => {
                self.w_q.matvec_mirrored(&m.q, x, &mut scratch.q)?;
                self.w_k.matvec_mirrored(&m.k, x, &mut scratch.k)?;
                self.w_v.matvec_mirrored(&m.v, x, &mut scratch.v)?;
            }
            None => {
                self.w_q.matvec_into(x, &mut scratch.q)?;
                self.w_k.matvec_into(x, &mut scratch.k)?;
                self.w_v.matvec_into(x, &mut scratch.v)?;
            }
        }

        rope::apply_rope_multihead(&mut scratch.q, self.head_dim, pos, self.rope_theta);
        rope::apply_rope_multihead(&mut scratch.k, self.head_dim, pos, self.rope_theta);

        cache.push_slices(&scratch.k, &scratch.v)?;

        let group = self.n_heads / self.n_kv_heads;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let seq_len = cache.len();
        scratch.attended.fill(0.0);
        // [head][position] score/weight matrices so the cached key/value
        // rows are streamed over exactly once (position-outer), instead of
        // once per head; per-output accumulation order is unchanged
        // (ascending position), so results stay bitwise identical
        scratch.scores.resize(self.n_heads * seq_len, 0.0);
        scratch.weights.resize(self.n_heads * seq_len, 0.0);

        for t in 0..seq_len {
            let key = cache.key(t).expect("position exists");
            for h in 0..self.n_heads {
                let kv_head = h / group;
                let q_head = &scratch.q[h * self.head_dim..(h + 1) * self.head_dim];
                let k_head = &key[kv_head * self.head_dim..(kv_head + 1) * self.head_dim];
                // inlined dot (identical accumulation order to Vector::dot,
                // without the per-call shape check — lengths are fixed by
                // the head layout); this loop runs heads × positions times
                // per layer per token
                let mut acc = 0.0f32;
                for (&qv, &kv) in q_head.iter().zip(k_head.iter()) {
                    acc += qv * kv;
                }
                scratch.scores[h * seq_len + t] = acc * scale;
            }
        }
        for h in 0..self.n_heads {
            Vector::softmax_into(
                &scratch.scores[h * seq_len..(h + 1) * seq_len],
                &mut scratch.weights[h * seq_len..(h + 1) * seq_len],
            )?;
        }
        for t in 0..seq_len {
            let value = cache.value(t).expect("position exists");
            for h in 0..self.n_heads {
                let kv_head = h / group;
                let w = scratch.weights[h * seq_len + t];
                let v_head = &value[kv_head * self.head_dim..(kv_head + 1) * self.head_dim];
                let head_out = &mut scratch.attended[h * self.head_dim..(h + 1) * self.head_dim];
                for (o, vv) in head_out.iter_mut().zip(v_head.iter()) {
                    *o += w * vv;
                }
            }
        }

        match mirrors {
            Some(m) => Ok(self.w_o.matvec_mirrored(&m.o, &scratch.attended, out)?),
            None => Ok(self.w_o.matvec_into(&scratch.attended, out)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::init;

    fn small_attention(n_heads: usize, n_kv_heads: usize) -> Attention {
        let d_model = 16;
        let head_dim = d_model / n_heads;
        let mut rng = init::rng(11);
        Attention::new(
            init::xavier_matrix(&mut rng, n_heads * head_dim, d_model),
            init::xavier_matrix(&mut rng, n_kv_heads * head_dim, d_model),
            init::xavier_matrix(&mut rng, n_kv_heads * head_dim, d_model),
            init::xavier_matrix(&mut rng, d_model, n_heads * head_dim),
            n_heads,
            n_kv_heads,
            10_000.0,
        )
    }

    #[test]
    fn forward_token_produces_d_model_output() {
        let attn = small_attention(4, 2);
        let mut cache = KvCache::new(8);
        let x = vec![0.1; 16];
        let y = attn.forward_token(&x, 0, &mut cache).unwrap();
        assert_eq!(y.len(), 16);
        assert_eq!(cache.len(), 1);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_position_attention_is_value_projection() {
        // With only one cached position the softmax weight is 1, so the output
        // equals W_o applied to the (grouped) value projection.
        let attn = small_attention(4, 4);
        let mut cache = KvCache::new(4);
        let x: Vec<f32> = (0..16).map(|i| (i as f32) / 16.0).collect();
        let y = attn.forward_token(&x, 0, &mut cache).unwrap();
        let v = attn.w_v.matvec(&x).unwrap();
        let expected = attn.w_o.matvec(&v).unwrap();
        for (a, b) in y.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn output_depends_on_history() {
        let attn = small_attention(4, 2);
        let x0 = vec![0.2; 16];
        let x1 = vec![-0.1; 16];

        let mut cache_a = KvCache::new(8);
        attn.forward_token(&x0, 0, &mut cache_a).unwrap();
        let with_history = attn.forward_token(&x1, 1, &mut cache_a).unwrap();

        let mut cache_b = KvCache::new(8);
        let without_history = attn.forward_token(&x1, 0, &mut cache_b).unwrap();

        let diff: f32 = with_history
            .iter()
            .zip(without_history.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "attention output should depend on KV history");
    }

    #[test]
    fn gqa_matches_mha_when_groups_are_one() {
        // sanity: construction works for both and parameter counts differ
        let mha = small_attention(4, 4);
        let gqa = small_attention(4, 2);
        assert!(gqa.num_params() < mha.num_params());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_grouping_panics() {
        let d_model = 16;
        let mut rng = init::rng(1);
        let _ = Attention::new(
            init::xavier_matrix(&mut rng, 16, d_model),
            init::xavier_matrix(&mut rng, 12, d_model),
            init::xavier_matrix(&mut rng, 12, d_model),
            init::xavier_matrix(&mut rng, d_model, 16),
            4,
            3,
            10_000.0,
        );
    }
}
