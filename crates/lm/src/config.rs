//! Model configuration and parameter/memory accounting.

use crate::error::{LmError, Result};
use serde::{Deserialize, Serialize};
use tensor::Activation;

/// Configuration of a synthetic SwiGLU (or ReLU-fied) transformer.
///
/// The four registry presets ([`ModelConfig::phi3_medium_sim`] etc.) mirror
/// the *relative* proportions of the paper's evaluation models (layer count
/// ratios, `d_ff / d_model` expansion, GQA grouping) at laptop scale, so that
/// MLP weights dominate total parameters exactly as they do in the originals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human readable name used by experiment reports.
    pub name: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Residual stream width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Number of attention (query) heads.
    pub n_heads: usize,
    /// Number of key/value heads (GQA); must divide `n_heads`.
    pub n_kv_heads: usize,
    /// Hidden width of the GLU MLP.
    pub d_ff: usize,
    /// Non-linearity of the MLP gate (SiLU for SwiGLU models, ReLU for
    /// ReLU-fied models).
    pub activation: Activation,
    /// Maximum sequence length supported by the KV cache.
    pub max_seq_len: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// Log-normal sigma of the heavy-tailed row gains used during synthetic
    /// weight generation (larger values → heavier-tailed GLU activations).
    pub heavy_tail_sigma: f32,
    /// Gain applied to the LM head so that output distributions are peaked
    /// (a near-uniform predictive distribution would hide pruning error).
    pub head_gain: f32,
}

impl ModelConfig {
    /// A tiny configuration for unit tests (runs in milliseconds).
    pub fn tiny() -> Self {
        ModelConfig {
            name: "tiny-test".to_string(),
            vocab_size: 64,
            d_model: 32,
            n_layers: 2,
            n_heads: 4,
            n_kv_heads: 2,
            d_ff: 96,
            activation: Activation::Silu,
            max_seq_len: 64,
            rope_theta: 10_000.0,
            heavy_tail_sigma: 1.0,
            head_gain: 4.0,
        }
    }

    /// Laptop-scale analogue of Phi-3-Medium (14B, 40 layers, d_ff/d_model = 3.5).
    pub fn phi3_medium_sim() -> Self {
        ModelConfig {
            name: "phi3-medium-sim".to_string(),
            vocab_size: 256,
            d_model: 160,
            n_layers: 10,
            n_heads: 8,
            n_kv_heads: 2,
            d_ff: 560,
            activation: Activation::Silu,
            max_seq_len: 512,
            rope_theta: 10_000.0,
            heavy_tail_sigma: 1.2,
            head_gain: 4.0,
        }
    }

    /// Laptop-scale analogue of Phi-3-Mini (3.8B, 32 layers).
    pub fn phi3_mini_sim() -> Self {
        ModelConfig {
            name: "phi3-mini-sim".to_string(),
            vocab_size: 256,
            d_model: 96,
            n_layers: 8,
            n_heads: 8,
            n_kv_heads: 8,
            d_ff: 320,
            activation: Activation::Silu,
            max_seq_len: 512,
            rope_theta: 10_000.0,
            heavy_tail_sigma: 1.2,
            head_gain: 4.0,
        }
    }

    /// Laptop-scale analogue of Llama-3-8B (32 layers, d_ff/d_model = 3.5, 4-way GQA).
    pub fn llama8b_sim() -> Self {
        ModelConfig {
            name: "llama8b-sim".to_string(),
            vocab_size: 256,
            d_model: 128,
            n_layers: 8,
            n_heads: 8,
            n_kv_heads: 2,
            d_ff: 448,
            activation: Activation::Silu,
            max_seq_len: 512,
            rope_theta: 10_000.0,
            heavy_tail_sigma: 1.3,
            head_gain: 4.0,
        }
    }

    /// Laptop-scale analogue of Mistral-7B (32 layers, d_ff/d_model = 3.5, 4-way GQA).
    pub fn mistral7b_sim() -> Self {
        ModelConfig {
            name: "mistral7b-sim".to_string(),
            vocab_size: 256,
            d_model: 112,
            n_layers: 8,
            n_heads: 8,
            n_kv_heads: 2,
            d_ff: 392,
            activation: Activation::Silu,
            max_seq_len: 512,
            rope_theta: 10_000.0,
            heavy_tail_sigma: 1.3,
            head_gain: 4.0,
        }
    }

    /// Returns a copy of this configuration with the MLP gate replaced by
    /// ReLU — the "ReLU-fied" counterpart used in Fig. 3 / Fig. 6.
    pub fn relufied(&self) -> Self {
        let mut c = self.clone();
        c.name = format!("{}-relufied", self.name);
        c.activation = Activation::Relu;
        c
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::InvalidConfig`] when any dimension is zero, when
    /// `n_kv_heads` does not divide `n_heads`, or when `d_model` is not a
    /// multiple of `n_heads`.
    pub fn validate(&self) -> Result<()> {
        fn positive(field: &'static str, v: usize) -> Result<()> {
            if v == 0 {
                return Err(LmError::InvalidConfig {
                    field,
                    reason: "must be > 0".to_string(),
                });
            }
            Ok(())
        }
        positive("vocab_size", self.vocab_size)?;
        positive("d_model", self.d_model)?;
        positive("n_layers", self.n_layers)?;
        positive("n_heads", self.n_heads)?;
        positive("n_kv_heads", self.n_kv_heads)?;
        positive("d_ff", self.d_ff)?;
        positive("max_seq_len", self.max_seq_len)?;
        if !self.n_heads.is_multiple_of(self.n_kv_heads) {
            return Err(LmError::InvalidConfig {
                field: "n_kv_heads",
                reason: format!(
                    "must divide n_heads ({} % {} != 0)",
                    self.n_heads, self.n_kv_heads
                ),
            });
        }
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(LmError::InvalidConfig {
                field: "d_model",
                reason: format!(
                    "must be a multiple of n_heads ({} % {} != 0)",
                    self.d_model, self.n_heads
                ),
            });
        }
        if !self.head_dim().is_multiple_of(2) {
            return Err(LmError::InvalidConfig {
                field: "d_model",
                reason: format!(
                    "head dimension must be even for RoPE, got {}",
                    self.head_dim()
                ),
            });
        }
        Ok(())
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Number of parameters in one MLP block (`W_u`, `W_g`, `W_d`).
    pub fn mlp_params_per_layer(&self) -> usize {
        3 * self.d_model * self.d_ff
    }

    /// Number of parameters in one attention block (`W_q`, `W_k`, `W_v`, `W_o`).
    pub fn attention_params_per_layer(&self) -> usize {
        let head_dim = self.head_dim();
        let q = self.d_model * self.d_model;
        let kv = 2 * self.d_model * (self.n_kv_heads * head_dim);
        let o = self.d_model * self.d_model;
        q + kv + o
    }

    /// Embedding + LM-head parameters (untied).
    pub fn embedding_params(&self) -> usize {
        2 * self.vocab_size * self.d_model
    }

    /// Norm parameters (two RMSNorms per block + final norm).
    pub fn norm_params(&self) -> usize {
        (2 * self.n_layers + 1) * self.d_model
    }

    /// Total parameter count.
    pub fn total_params(&self) -> usize {
        self.n_layers * (self.mlp_params_per_layer() + self.attention_params_per_layer())
            + self.embedding_params()
            + self.norm_params()
    }

    /// Total MLP parameter count across layers.
    pub fn total_mlp_params(&self) -> usize {
        self.n_layers * self.mlp_params_per_layer()
    }

    /// Fraction of parameters that live in MLP blocks. For the presets this
    /// is well above one half, matching the paper's observation that MLP
    /// weights dominate modern GQA LLMs.
    pub fn mlp_param_fraction(&self) -> f64 {
        self.total_mlp_params() as f64 / self.total_params() as f64
    }

    /// Model size in bytes at the given weight bit-width (embeddings and
    /// norms counted at the same width for simplicity).
    pub fn model_bytes(&self, bits_per_weight: f64) -> f64 {
        self.total_params() as f64 * bits_per_weight / 8.0
    }

    /// KV-cache bytes for a full context window at 16-bit precision.
    pub fn kv_cache_bytes(&self) -> f64 {
        let per_token = 2 * self.n_layers * self.n_kv_heads * self.head_dim();
        (per_token * self.max_seq_len) as f64 * 2.0
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::phi3_mini_sim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in [
            ModelConfig::tiny(),
            ModelConfig::phi3_medium_sim(),
            ModelConfig::phi3_mini_sim(),
            ModelConfig::llama8b_sim(),
            ModelConfig::mistral7b_sim(),
        ] {
            c.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", c.name));
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ModelConfig::tiny();
        c.d_model = 0;
        assert!(c.validate().is_err());

        let mut c = ModelConfig::tiny();
        c.n_kv_heads = 3;
        assert!(c.validate().is_err());

        let mut c = ModelConfig::tiny();
        c.d_model = 33;
        assert!(c.validate().is_err());
    }

    #[test]
    fn mlp_dominates_parameters_in_presets() {
        for c in [
            ModelConfig::phi3_medium_sim(),
            ModelConfig::phi3_mini_sim(),
            ModelConfig::llama8b_sim(),
            ModelConfig::mistral7b_sim(),
        ] {
            assert!(
                c.mlp_param_fraction() > 0.5,
                "{}: MLP fraction {}",
                c.name,
                c.mlp_param_fraction()
            );
        }
    }

    #[test]
    fn param_accounting_is_consistent() {
        let c = ModelConfig::tiny();
        let total = c.total_params();
        assert_eq!(
            total,
            c.n_layers * (c.mlp_params_per_layer() + c.attention_params_per_layer())
                + c.embedding_params()
                + c.norm_params()
        );
        assert!(c.model_bytes(4.0) < c.model_bytes(16.0));
        assert!((c.model_bytes(8.0) - total as f64).abs() < 1e-6);
        assert!(c.kv_cache_bytes() > 0.0);
    }

    #[test]
    fn relufied_changes_only_activation_and_name() {
        let c = ModelConfig::mistral7b_sim();
        let r = c.relufied();
        assert_eq!(r.activation, Activation::Relu);
        assert_eq!(r.d_model, c.d_model);
        assert!(r.name.contains("relufied"));
    }

    #[test]
    fn medium_preset_is_larger_than_mini() {
        let med = ModelConfig::phi3_medium_sim();
        let mini = ModelConfig::phi3_mini_sim();
        assert!(med.total_params() > 2 * mini.total_params());
    }
}
