//! Synthetic SwiGLU transformer language-model substrate.
//!
//! This crate implements everything the paper's evaluation needs from an LLM:
//!
//! * the architecture — RMSNorm, RoPE, grouped-query attention with a KV
//!   cache, and the gated (SwiGLU) MLP that dynamic sparsity methods target,
//! * synthetic, statistically calibrated model construction
//!   ([`build_synthetic`]) as the stand-in for Phi-3 / Llama-3 / Mistral
//!   checkpoints (see `DESIGN.md` §1),
//! * the [`mlp::MlpForward`] hook through which the `dip-core` crate plugs in
//!   DIP, DIP-CA and every baseline pruning strategy,
//! * corpus generation, perplexity and downstream-task evaluation
//!   ([`eval`]), and activation tracing for calibration ([`trace`]).
//!
//! # Example
//!
//! ```
//! use lm::{build_synthetic, ModelConfig, eval, mlp::DenseMlp};
//!
//! let model = build_synthetic(&ModelConfig::tiny(), 42)?;
//! let corpus = eval::standard_eval_corpus(&model, 2, 16, 0)?;
//! let result = eval::perplexity(&model, &mut DenseMlp, &corpus)?;
//! assert!(result.perplexity >= 1.0);
//! # Ok::<(), lm::LmError>(())
//! ```

#![warn(missing_docs)]

pub mod attention;
pub mod builder;
pub mod config;
pub mod data;
pub mod error;
pub mod eval;
pub mod kv_cache;
pub mod kv_paged;
pub mod mlp;
pub mod model;
pub mod norm;
pub mod rope;
pub mod scratch;
pub mod trace;

pub use builder::build_synthetic;
pub use config::ModelConfig;
pub use error::{LmError, Result};
pub use eval::{EvalResult, Task, TaskSuite};
pub use kv_cache::{DecodeStatePool, KvCache};
pub use kv_paged::{
    pages_spanning, KvBacking, KvPagePool, PageId, PagePoolHandle, PagePoolStats, PagedKv,
};
pub use mlp::{
    ColumnAccess, DenseMlp, GluMlp, MatrixAccess, MlpAccessRecord, MlpForward, MlpForwardOutput,
    MlpMatrix, SliceAxis,
};
pub use model::{BatchStrategies, DecodeState, TokenOutput, TransformerModel};
pub use scratch::{
    AccessBuf, AttnMirrors, AttnScratch, BatchScratch, DecodeScratch, LayerMirrors,
    MlpAccessScratch, MlpBatchWorkspace, MlpMirrors, MlpWorkspace, ModelMirrors,
};
pub use trace::{ActivationTrace, TracingMlp};
