//! Root-mean-square layer normalisation (RMSNorm).

use serde::{Deserialize, Serialize};

/// RMSNorm with a learned per-channel gain, as used by Llama/Mistral/Phi-3.
///
/// `y_i = g_i * x_i / sqrt(mean(x^2) + eps)`
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmsNorm {
    gain: Vec<f32>,
    eps: f32,
}

impl RmsNorm {
    /// Creates an RMSNorm with unit gains.
    pub fn new(dim: usize) -> Self {
        RmsNorm {
            gain: vec![1.0; dim],
            eps: 1e-5,
        }
    }

    /// Creates an RMSNorm with explicit gains.
    pub fn with_gain(gain: Vec<f32>) -> Self {
        RmsNorm { gain, eps: 1e-5 }
    }

    /// Dimensionality of the normalised vectors.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    /// Mutable access to the gain vector (used by the synthetic model builder).
    pub fn gain_mut(&mut self) -> &mut [f32] {
        &mut self.gain
    }

    /// Immutable access to the gain vector.
    pub fn gain(&self) -> &[f32] {
        &self.gain
    }

    /// Applies the normalisation, returning a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; x.len()];
        self.forward_into(x, &mut out);
        out
    }

    /// Allocation-free [`RmsNorm::forward`] into a caller-owned buffer
    /// (bitwise identical).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `out.len() != x.len()`.
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.gain.len(), "RmsNorm dimension mismatch");
        assert_eq!(x.len(), out.len(), "RmsNorm dimension mismatch");
        if x.is_empty() {
            return;
        }
        let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
        let inv = 1.0 / (ms + self.eps).sqrt();
        for ((o, v), g) in out.iter_mut().zip(x.iter()).zip(self.gain.iter()) {
            *o = v * inv * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_has_unit_rms_with_unit_gain() {
        let norm = RmsNorm::new(4);
        let y = norm.forward(&[2.0, -2.0, 2.0, -2.0]);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gain_scales_channels() {
        let norm = RmsNorm::with_gain(vec![2.0, 1.0]);
        let y = norm.forward(&[1.0, 1.0]);
        assert!((y[0] / y[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn zero_input_stays_finite() {
        let norm = RmsNorm::new(3);
        let y = norm.forward(&[0.0, 0.0, 0.0]);
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(y.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn empty_input_returns_empty() {
        let norm = RmsNorm::new(0);
        assert!(norm.forward(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        RmsNorm::new(3).forward(&[1.0, 2.0]);
    }
}
