//! Error type for the language-model substrate.

use std::fmt;
use tensor::TensorError;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, LmError>;

/// Errors produced by model construction, inference or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum LmError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A model configuration value was invalid.
    InvalidConfig {
        /// The configuration field at fault.
        field: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A token id was outside the vocabulary.
    TokenOutOfRange {
        /// The offending token id.
        token: u32,
        /// The vocabulary size.
        vocab: usize,
    },
    /// A sequence was too short or too long for the requested operation.
    BadSequence {
        /// Explanation of what was wrong with the sequence.
        reason: String,
    },
}

impl fmt::Display for LmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmError::Tensor(e) => write!(f, "tensor error: {e}"),
            LmError::InvalidConfig { field, reason } => {
                write!(f, "invalid model config `{field}`: {reason}")
            }
            LmError::TokenOutOfRange { token, vocab } => {
                write!(
                    f,
                    "token {token} out of range for vocabulary of size {vocab}"
                )
            }
            LmError::BadSequence { reason } => write!(f, "bad sequence: {reason}"),
        }
    }
}

impl std::error::Error for LmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LmError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for LmError {
    fn from(e: TensorError) -> Self {
        LmError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = LmError::TokenOutOfRange {
            token: 300,
            vocab: 256,
        };
        assert!(e.to_string().contains("300"));
        let e = LmError::InvalidConfig {
            field: "d_model",
            reason: "must be > 0".into(),
        };
        assert!(e.to_string().contains("d_model"));
        let e = LmError::BadSequence {
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn tensor_error_converts_and_sources() {
        let te = TensorError::Empty { op: "softmax" };
        let e: LmError = te.clone().into();
        assert_eq!(e, LmError::Tensor(te));
        assert!(std::error::Error::source(&e).is_some());
    }
}
