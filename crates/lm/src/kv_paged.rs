//! Paged KV memory: a fixed-size-page block allocator with refcounted
//! copy-on-write pages and per-session page tables.
//!
//! The flat [`KvCache`] pre-reserves `max_seq_len × dim` floats per layer
//! per session, so fleet size is capped by worst-case memory even when most
//! sessions are short. This module replaces that backing store with a
//! **page pool**: KV storage is carved into fixed-size pages of
//! [`KvPagePool::page_size`] positions, sessions own *page tables*
//! ([`PagedKv`]) mapping position ranges to pages, and pages are
//! **refcounted** so multiple sessions can map the same physical page — the
//! mechanism behind shared-prefix caching.
//!
//! Sharing is copy-on-write: appending into a page whose refcount is
//! greater than one first *forks* it (copies the live slots into a fresh
//! page and drops the shared reference), so a sharer can never observe
//! another session's writes.
//!
//! # Layout and determinism
//!
//! Each page stores its positions in the same two layouts the flat cache
//! uses: position-major `[slot][component]` rows for keys and values, plus
//! a per-page **transposed key store** `[component][slot]` so the attention
//! score kernel can keep reducing over contiguous position runs (the PR 5
//! layout, preserved per page). A paged attention kernel walks positions
//! page segment by page segment but performs the *identical per-output
//! sequence of multiply-adds* as the flat kernel, so its outputs are
//! bitwise equal to the flat oracle (see `Attention::attend_row`).
//!
//! Allocation order is deterministic: the free list is LIFO and seeded in
//! descending page order, so a deterministic sequence of alloc/free calls
//! yields a deterministic sequence of page ids — engine reports stay
//! bitwise reproducible across runs and OS thread counts.

use crate::error::{LmError, Result};
use crate::kv_cache::KvCache;
use std::cell::RefCell;
use std::rc::Rc;

/// Identifier of one fixed-size page inside a [`KvPagePool`].
pub type PageId = u32;

/// Shared handle to a [`KvPagePool`].
///
/// Engines are constructed and driven on a single OS thread (the
/// multi-cell experiment drivers build one engine *per* thread), so a
/// single-threaded `Rc<RefCell<…>>` suffices; cloning the handle does not
/// allocate, which keeps steady-state decode zero-alloc.
pub type PagePoolHandle = Rc<RefCell<KvPagePool>>;

/// Point-in-time usage statistics of a [`KvPagePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagePoolStats {
    /// Total pages the pool was created with.
    pub total_pages: usize,
    /// Positions per page.
    pub page_size: usize,
    /// Pages currently allocated (refcount ≥ 1).
    pub in_use: usize,
    /// Highest `in_use` ever observed.
    pub high_water: usize,
    /// Copy-on-write forks performed over the pool's lifetime.
    pub forks: u64,
}

/// Number of pages spanning `positions` positions at `page_size` positions
/// per page (`ceil(positions / page_size)`).
pub fn pages_spanning(positions: usize, page_size: usize) -> usize {
    positions.div_ceil(page_size)
}

/// A pool of fixed-size KV pages shared by every layer of every session of
/// one engine.
///
/// Pages hold `page_size` positions of `dim` floats for keys and values
/// (plus the per-page transposed key store). The per-position width `dim`
/// is fixed lazily by the first write — the engine's model has one KV width
/// across layers — and the full backing storage is reserved at that moment,
/// so steady-state operation (alloc, release, fork, append) never touches
/// the heap allocator.
#[derive(Debug)]
pub struct KvPagePool {
    page_size: usize,
    total_pages: usize,
    dim: usize,
    /// Position-major page storage: key of (page `p`, slot `s`) lives at
    /// `(p * page_size + s) * dim`.
    keys: Vec<f32>,
    /// Position-major value storage, same layout as `keys`.
    values: Vec<f32>,
    /// Per-page transposed keys: component `d` of (page `p`, slot `s`)
    /// lives at `p * page_size * dim + d * page_size + s`.
    keys_t: Vec<f32>,
    refcounts: Vec<u32>,
    /// LIFO free list, seeded in descending order so pages are first
    /// handed out in ascending id order.
    free: Vec<PageId>,
    in_use: usize,
    high_water: usize,
    forks: u64,
}

impl KvPagePool {
    /// Creates a pool of `total_pages` pages of `page_size` positions each.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` or `total_pages` is zero, or if `total_pages`
    /// exceeds `u32::MAX`.
    pub fn new(total_pages: usize, page_size: usize) -> Self {
        assert!(page_size > 0, "page_size must be positive");
        assert!(total_pages > 0, "pool must hold at least one page");
        assert!(u32::try_from(total_pages).is_ok(), "too many pages");
        KvPagePool {
            page_size,
            total_pages,
            dim: 0,
            keys: Vec::new(),
            values: Vec::new(),
            keys_t: Vec::new(),
            refcounts: vec![0; total_pages],
            free: (0..total_pages as u32).rev().collect(),
            in_use: 0,
            high_water: 0,
            forks: 0,
        }
    }

    /// Creates a pool and wraps it in a [`PagePoolHandle`].
    pub fn new_handle(total_pages: usize, page_size: usize) -> PagePoolHandle {
        Rc::new(RefCell::new(KvPagePool::new(total_pages, page_size)))
    }

    /// Positions per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total pages the pool was created with.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages currently free.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Pages currently allocated (refcount ≥ 1).
    pub fn pages_in_use(&self) -> usize {
        self.in_use
    }

    /// Highest [`KvPagePool::pages_in_use`] ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Rebases the high-water mark to the current usage (serving engines
    /// call this at run start so reports carry per-run peaks).
    pub fn reset_high_water(&mut self) {
        self.high_water = self.in_use;
    }

    /// Copy-on-write forks performed over the pool's lifetime.
    pub fn fork_count(&self) -> u64 {
        self.forks
    }

    /// Per-position KV width (0 until the first write fixes it).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Snapshot of the pool's usage counters.
    pub fn stats(&self) -> PagePoolStats {
        PagePoolStats {
            total_pages: self.total_pages,
            page_size: self.page_size,
            in_use: self.in_use,
            high_water: self.high_water,
            forks: self.forks,
        }
    }

    /// Current refcount of `page` (0 = free).
    pub fn refcount(&self, page: PageId) -> u32 {
        self.refcounts[page as usize]
    }

    /// Fixes the per-position width and reserves the full page storage on
    /// first use.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] when `dim` conflicts with the width
    /// already fixed by an earlier write.
    pub fn ensure_dim(&mut self, dim: usize) -> Result<()> {
        if self.dim == 0 {
            self.dim = dim;
            let n = self.total_pages * self.page_size * dim;
            self.keys = vec![0.0; n];
            self.values = vec![0.0; n];
            self.keys_t = vec![0.0; n];
        } else if dim != self.dim {
            return Err(LmError::BadSequence {
                reason: format!("KV width {dim} != pool width {}", self.dim),
            });
        }
        Ok(())
    }

    /// Allocates a page with refcount 1, or `None` when the pool is
    /// exhausted. Never touches the heap.
    pub fn alloc(&mut self) -> Option<PageId> {
        let p = self.free.pop()?;
        self.refcounts[p as usize] = 1;
        self.in_use += 1;
        if self.in_use > self.high_water {
            self.high_water = self.in_use;
        }
        Some(p)
    }

    /// Adds one reference to an allocated page (a new sharer mapped it).
    ///
    /// # Panics
    ///
    /// Panics if `page` is free — retaining a free page is a use-after-free.
    pub fn retain(&mut self, page: PageId) {
        let rc = &mut self.refcounts[page as usize];
        assert!(*rc > 0, "retain of free page {page}");
        *rc += 1;
    }

    /// Drops one reference; the page returns to the free list when the last
    /// sharer releases it.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already free — releasing a free page is a
    /// double-free.
    pub fn release(&mut self, page: PageId) {
        let rc = &mut self.refcounts[page as usize];
        assert!(*rc > 0, "double free of page {page}");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(page);
            self.in_use -= 1;
        }
    }

    /// Copy-on-write fork: allocates a fresh page, copies the first
    /// `live_slots` positions of `page` into it (keys, values and the
    /// transposed key columns — a bitwise copy), and releases the caller's
    /// reference on `page`. Returns `None` (leaving `page` untouched) when
    /// the pool is exhausted. Never touches the heap.
    pub fn fork(&mut self, page: PageId, live_slots: usize) -> Option<PageId> {
        debug_assert!(live_slots <= self.page_size);
        let fresh = self.alloc()?;
        let (src, dst) = (page as usize, fresh as usize);
        let row = self.page_size * self.dim;
        let live = live_slots * self.dim;
        self.keys
            .copy_within(src * row..src * row + live, dst * row);
        self.values
            .copy_within(src * row..src * row + live, dst * row);
        for d in 0..self.dim {
            let s = src * row + d * self.page_size;
            let t = dst * row + d * self.page_size;
            self.keys_t.copy_within(s..s + live_slots, t);
        }
        self.release(page);
        self.forks += 1;
        Some(fresh)
    }

    /// Writes the key/value vectors of one position into (`page`, `slot`),
    /// scattering the key into the page's transposed store.
    ///
    /// # Panics
    ///
    /// Panics (debug) on slot or width mismatch.
    pub fn write_slot(&mut self, page: PageId, slot: usize, key: &[f32], value: &[f32]) {
        debug_assert!(slot < self.page_size, "slot {slot} out of page");
        debug_assert_eq!(key.len(), self.dim);
        debug_assert_eq!(value.len(), self.dim);
        let base = (page as usize * self.page_size + slot) * self.dim;
        self.keys[base..base + self.dim].copy_from_slice(key);
        self.values[base..base + self.dim].copy_from_slice(value);
        let t_base = page as usize * self.page_size * self.dim;
        for (d, &kv) in key.iter().enumerate() {
            self.keys_t[t_base + d * self.page_size + slot] = kv;
        }
    }

    /// Key vector stored at (`page`, `slot`).
    #[inline]
    pub fn key(&self, page: PageId, slot: usize) -> &[f32] {
        let base = (page as usize * self.page_size + slot) * self.dim;
        &self.keys[base..base + self.dim]
    }

    /// Value vector stored at (`page`, `slot`).
    #[inline]
    pub fn value(&self, page: PageId, slot: usize) -> &[f32] {
        let base = (page as usize * self.page_size + slot) * self.dim;
        &self.values[base..base + self.dim]
    }

    /// Component `d` of every slot of `page` as one contiguous
    /// `page_size`-long slice — the per-page transposed view the attention
    /// score kernel reduces over (slots beyond a session's length hold
    /// stale data and must not be read).
    #[inline]
    pub fn keys_t_row(&self, page: PageId, d: usize) -> &[f32] {
        let base = page as usize * self.page_size * self.dim + d * self.page_size;
        &self.keys_t[base..base + self.page_size]
    }
}

/// One session-layer's view into a [`KvPagePool`]: a page table mapping
/// position ranges to pool pages, plus the session's live length.
///
/// Appends go through copy-on-write ([`PagedKv::push_slices`]); shared
/// prefixes are mapped with [`PagedKv::adopt_prefix`]; preemption turns
/// into [`PagedKv::spill`]/[`PagedKv::reload`], which copies page contents
/// to a session-owned buffer and frees the pages so a parked session holds
/// zero pool memory.
#[derive(Debug)]
pub struct PagedKv {
    pool: PagePoolHandle,
    page_size: usize,
    capacity: usize,
    pages: Vec<PageId>,
    len: usize,
    spilled: bool,
    spill_keys: Vec<f32>,
    spill_values: Vec<f32>,
}

impl PagedKv {
    /// Creates an empty paged cache for up to `max_seq_len` positions,
    /// pre-reserving its page-table capacity so steady-state appends never
    /// allocate.
    pub fn new(pool: &PagePoolHandle, max_seq_len: usize) -> Self {
        let page_size = pool.borrow().page_size();
        PagedKv {
            pool: Rc::clone(pool),
            page_size,
            capacity: max_seq_len,
            pages: Vec::with_capacity(pages_spanning(max_seq_len, page_size)),
            len: 0,
            spilled: false,
            spill_keys: Vec::new(),
            spill_values: Vec::new(),
        }
    }

    /// Number of positions currently stored (valid even while spilled).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions the cache accepts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Positions per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The page table: page `i` backs positions
    /// `[i * page_size, (i + 1) * page_size)`.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// The pool this cache allocates from.
    pub fn pool_handle(&self) -> &PagePoolHandle {
        &self.pool
    }

    /// Whether the contents currently live in the spill buffer instead of
    /// pool pages.
    pub fn is_spilled(&self) -> bool {
        self.spilled
    }

    /// Appends the key/value vectors of a new position, forking the tail
    /// page first when it is shared (copy-on-write). Allocation-free in
    /// steady state: the page table was pre-reserved and pool alloc/fork
    /// only pop the free list.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] when the cache is full or spilled,
    /// the key/value widths mismatch, or the pool is out of pages.
    pub fn push_slices(&mut self, key: &[f32], value: &[f32]) -> Result<()> {
        if self.spilled {
            return Err(LmError::BadSequence {
                reason: "paged KV is spilled; reload before appending".to_string(),
            });
        }
        if self.len >= self.capacity {
            return Err(LmError::BadSequence {
                reason: format!("KV cache full at capacity {}", self.capacity),
            });
        }
        if key.len() != value.len() {
            return Err(LmError::BadSequence {
                reason: format!("key length {} != value length {}", key.len(), value.len()),
            });
        }
        let mut pool = self.pool.borrow_mut();
        pool.ensure_dim(key.len())?;
        let slot = self.len % self.page_size;
        if slot == 0 {
            let p = pool.alloc().ok_or_else(|| LmError::BadSequence {
                reason: format!("KV page pool exhausted ({} pages)", pool.total_pages()),
            })?;
            self.pages.push(p);
        } else {
            let last = *self.pages.last().expect("tail page exists");
            if pool.refcount(last) > 1 {
                let forked = pool.fork(last, slot).ok_or_else(|| LmError::BadSequence {
                    reason: format!(
                        "KV page pool exhausted ({} pages) during copy-on-write fork",
                        pool.total_pages()
                    ),
                })?;
                *self.pages.last_mut().expect("tail page exists") = forked;
            }
        }
        let p = *self.pages.last().expect("tail page exists");
        pool.write_slot(p, slot, key, value);
        drop(pool);
        self.len += 1;
        Ok(())
    }

    /// Key vector of position `i`, copied out (diagnostics/tests; the
    /// attention kernel reads pages through the pool directly).
    pub fn key_at(&self, i: usize) -> Option<Vec<f32>> {
        if i >= self.len || self.spilled {
            return None;
        }
        let pool = self.pool.borrow();
        Some(
            pool.key(self.pages[i / self.page_size], i % self.page_size)
                .to_vec(),
        )
    }

    /// Value vector of position `i`, copied out (diagnostics/tests).
    pub fn value_at(&self, i: usize) -> Option<Vec<f32>> {
        if i >= self.len || self.spilled {
            return None;
        }
        let pool = self.pool.borrow();
        Some(
            pool.value(self.pages[i / self.page_size], i % self.page_size)
                .to_vec(),
        )
    }

    /// Maps an already-prefilled shared prefix into this (empty) cache:
    /// retains every page in `pages` and adopts them as the first
    /// `prefix_len` positions. The tail page may extend past `prefix_len`;
    /// those slots are never read (length stops at `prefix_len`) and the
    /// first divergent append forks the page.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] when the cache is not empty, the
    /// page list does not span `prefix_len`, or `prefix_len` exceeds the
    /// capacity.
    pub fn adopt_prefix(&mut self, pages: &[PageId], prefix_len: usize) -> Result<()> {
        if self.len != 0 || !self.pages.is_empty() || self.spilled {
            return Err(LmError::BadSequence {
                reason: "shared prefix can only be adopted by an empty cache".to_string(),
            });
        }
        if pages.len() != pages_spanning(prefix_len, self.page_size) || prefix_len > self.capacity {
            return Err(LmError::BadSequence {
                reason: format!(
                    "{} pages do not span a prefix of {} positions",
                    pages.len(),
                    prefix_len
                ),
            });
        }
        let mut pool = self.pool.borrow_mut();
        for &p in pages {
            pool.retain(p);
        }
        drop(pool);
        self.pages.extend_from_slice(pages);
        self.len = prefix_len;
        Ok(())
    }

    /// Copies the live contents into the session-owned spill buffer and
    /// releases every page reference: a parked (preempted) session holds
    /// zero pool pages, so pool residency is bounded by *active* sessions.
    /// Shared-prefix references are released too; a later
    /// [`PagedKv::reload`] rebuilds private pages.
    ///
    /// The spill buffer allocates on first use — preemption is off the
    /// steady-state decode path.
    ///
    /// Spilling an *empty* cache (a session preempted before its first
    /// prefill token) is a no-op: there is nothing to copy, no page to
    /// free, and the cache stays immediately appendable.
    pub fn spill(&mut self) {
        if self.spilled || self.len == 0 {
            return;
        }
        let mut pool = self.pool.borrow_mut();
        let dim = pool.dim();
        self.spill_keys.clear();
        self.spill_values.clear();
        self.spill_keys.reserve(self.len * dim);
        self.spill_values.reserve(self.len * dim);
        for i in 0..self.len {
            let (p, s) = (self.pages[i / self.page_size], i % self.page_size);
            self.spill_keys.extend_from_slice(pool.key(p, s));
            self.spill_values.extend_from_slice(pool.value(p, s));
        }
        for &p in &self.pages {
            pool.release(p);
        }
        drop(pool);
        self.pages.clear();
        self.spilled = true;
    }

    /// Number of pool pages a [`PagedKv::reload`] would need right now.
    pub fn pages_to_reload(&self) -> usize {
        if self.spilled {
            pages_spanning(self.len, self.page_size)
        } else {
            0
        }
    }

    /// Reallocates pages and copies the spilled contents back, rebuilding
    /// the transposed key store bit-for-bit (every entry is a copy of a key
    /// component, not a computation).
    ///
    /// # Errors
    ///
    /// Returns [`LmError::BadSequence`] when the pool cannot supply enough
    /// pages; the cache stays spilled and can be retried later.
    pub fn reload(&mut self) -> Result<()> {
        if !self.spilled {
            return Ok(());
        }
        let mut pool = self.pool.borrow_mut();
        if pool.free_pages() < pages_spanning(self.len, self.page_size) {
            return Err(LmError::BadSequence {
                reason: format!(
                    "KV page pool exhausted ({} pages) while reloading a parked session",
                    pool.total_pages()
                ),
            });
        }
        let dim = pool.dim();
        for i in 0..self.len {
            let slot = i % self.page_size;
            if slot == 0 {
                let p = pool.alloc().expect("free pages were checked");
                self.pages.push(p);
            }
            let p = *self.pages.last().expect("tail page exists");
            pool.write_slot(
                p,
                slot,
                &self.spill_keys[i * dim..(i + 1) * dim],
                &self.spill_values[i * dim..(i + 1) * dim],
            );
        }
        drop(pool);
        self.spilled = false;
        self.spill_keys.clear();
        self.spill_values.clear();
        Ok(())
    }

    /// Releases every page and empties the cache, keeping the page table's
    /// reserved storage so a recycled cache never reallocates.
    pub fn clear(&mut self) {
        if !self.spilled {
            let mut pool = self.pool.borrow_mut();
            for &p in &self.pages {
                pool.release(p);
            }
        }
        self.pages.clear();
        self.len = 0;
        self.spilled = false;
        self.spill_keys.clear();
        self.spill_values.clear();
    }

    /// Drops every position at index `len` or later, releasing pages that
    /// no longer back any live position.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len || self.spilled {
            if self.spilled && len < self.len {
                let dim = self.spill_keys.len() / self.len.max(1);
                self.spill_keys.truncate(len * dim);
                self.spill_values.truncate(len * dim);
                self.len = len;
            }
            return;
        }
        let keep = pages_spanning(len, self.page_size);
        let mut pool = self.pool.borrow_mut();
        for &p in &self.pages[keep..] {
            pool.release(p);
        }
        drop(pool);
        self.pages.truncate(keep);
        self.len = len;
    }
}

impl Clone for PagedKv {
    /// Cloning maps the same pages and bumps their refcounts — the clone
    /// shares every position copy-on-write, exactly like a prefix sharer.
    fn clone(&self) -> Self {
        if !self.spilled {
            let mut pool = self.pool.borrow_mut();
            for &p in &self.pages {
                pool.retain(p);
            }
        }
        let mut pages = Vec::with_capacity(pages_spanning(self.capacity, self.page_size));
        pages.extend_from_slice(&self.pages);
        PagedKv {
            pool: Rc::clone(&self.pool),
            page_size: self.page_size,
            capacity: self.capacity,
            pages,
            len: self.len,
            spilled: self.spilled,
            spill_keys: self.spill_keys.clone(),
            spill_values: self.spill_values.clone(),
        }
    }
}

impl Drop for PagedKv {
    fn drop(&mut self) {
        if !self.spilled && !self.pages.is_empty() {
            let mut pool = self.pool.borrow_mut();
            for &p in &self.pages {
                pool.release(p);
            }
        }
    }
}

/// The KV backing store of one layer of one [`crate::DecodeState`]: either
/// the flat pre-reserved [`KvCache`] (the bitwise oracle, and the default)
/// or a [`PagedKv`] page table over a shared pool.
///
/// Call sites that only need lengths/capacities/appends go through the
/// delegating methods; the attention kernel matches on the variant and runs
/// the layout-specific (bitwise-identical) inner loops.
#[derive(Debug, Clone)]
pub enum KvBacking {
    /// Flat contiguous per-session storage ([`KvCache`]).
    Flat(KvCache),
    /// Paged storage over a shared [`KvPagePool`].
    Paged(PagedKv),
}

impl KvBacking {
    /// Number of positions currently stored.
    pub fn len(&self) -> usize {
        match self {
            KvBacking::Flat(c) => c.len(),
            KvBacking::Paged(p) => p.len(),
        }
    }

    /// Whether the backing holds no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of positions the backing accepts.
    pub fn capacity(&self) -> usize {
        match self {
            KvBacking::Flat(c) => c.capacity(),
            KvBacking::Paged(p) => p.capacity(),
        }
    }

    /// Appends the key/value vectors of a new position.
    ///
    /// # Errors
    ///
    /// See [`KvCache::push_slices`] and [`PagedKv::push_slices`].
    pub fn push(&mut self, key: Vec<f32>, value: Vec<f32>) -> Result<()> {
        self.push_slices(&key, &value)
    }

    /// Appends the key/value vectors of a new position from borrowed
    /// slices (the allocation-free decode path).
    ///
    /// # Errors
    ///
    /// See [`KvCache::push_slices`] and [`PagedKv::push_slices`].
    pub fn push_slices(&mut self, key: &[f32], value: &[f32]) -> Result<()> {
        match self {
            KvBacking::Flat(c) => c.push_slices(key, value),
            KvBacking::Paged(p) => p.push_slices(key, value),
        }
    }

    /// Key vector stored at position `i`.
    ///
    /// # Panics
    ///
    /// Panics for a paged backing, whose storage lives behind the pool —
    /// use [`PagedKv::key_at`] (or read pages through the pool) instead.
    pub fn key(&self, i: usize) -> Option<&[f32]> {
        match self {
            KvBacking::Flat(c) => c.key(i),
            KvBacking::Paged(_) => panic!("borrow paged keys via PagedKv::key_at"),
        }
    }

    /// Value vector stored at position `i`.
    ///
    /// # Panics
    ///
    /// Panics for a paged backing — use [`PagedKv::value_at`] instead.
    pub fn value(&self, i: usize) -> Option<&[f32]> {
        match self {
            KvBacking::Flat(c) => c.value(i),
            KvBacking::Paged(_) => panic!("borrow paged values via PagedKv::value_at"),
        }
    }

    /// Removes all stored positions (releasing pages for a paged backing),
    /// keeping reserved storage so recycled states never reallocate.
    pub fn clear(&mut self) {
        match self {
            KvBacking::Flat(c) => c.clear(),
            KvBacking::Paged(p) => p.clear(),
        }
    }

    /// Drops every position at index `len` or later.
    pub fn truncate(&mut self, len: usize) {
        match self {
            KvBacking::Flat(c) => c.truncate(len),
            KvBacking::Paged(p) => p.truncate(len),
        }
    }

    /// The flat cache, when this backing is flat.
    pub fn flat(&self) -> Option<&KvCache> {
        match self {
            KvBacking::Flat(c) => Some(c),
            KvBacking::Paged(_) => None,
        }
    }

    /// The paged cache, when this backing is paged.
    pub fn paged(&self) -> Option<&PagedKv> {
        match self {
            KvBacking::Flat(_) => None,
            KvBacking::Paged(p) => Some(p),
        }
    }

    /// Mutable access to the paged cache, when this backing is paged.
    pub fn paged_mut(&mut self) -> Option<&mut PagedKv> {
        match self {
            KvBacking::Flat(_) => None,
            KvBacking::Paged(p) => Some(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(pages: usize, page_size: usize) -> PagePoolHandle {
        KvPagePool::new_handle(pages, page_size)
    }

    #[test]
    fn push_and_read_back_across_pages() {
        let pool = pool(4, 2);
        let mut kv = PagedKv::new(&pool, 8);
        for i in 0..5 {
            kv.push_slices(&[i as f32, -(i as f32)], &[10.0 + i as f32, 0.5])
                .unwrap();
        }
        assert_eq!(kv.len(), 5);
        assert_eq!(kv.pages().len(), 3);
        assert_eq!(kv.key_at(0).unwrap(), vec![0.0, 0.0]);
        assert_eq!(kv.key_at(4).unwrap(), vec![4.0, -4.0]);
        assert_eq!(kv.value_at(3).unwrap(), vec![13.0, 0.5]);
        assert!(kv.key_at(5).is_none());
        assert_eq!(pool.borrow().pages_in_use(), 3);
        assert_eq!(pool.borrow().high_water(), 3);
    }

    #[test]
    fn spilling_an_empty_cache_is_a_noop() {
        // A session preempted before its first prefill token parks an
        // empty cache; it must come back immediately appendable (the
        // engine's reload is a no-op at zero pages).
        let pool = pool(4, 2);
        let mut kv = PagedKv::new(&pool, 8);
        kv.spill();
        assert!(!kv.is_spilled());
        assert_eq!(kv.pages_to_reload(), 0);
        kv.reload().unwrap();
        kv.push_slices(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn transposed_rows_match_position_major_keys() {
        let pool = pool(4, 4);
        let mut kv = PagedKv::new(&pool, 16);
        for i in 0..7 {
            kv.push_slices(&[i as f32 * 1.5, i as f32 - 3.0], &[0.0, 0.0])
                .unwrap();
        }
        let p = pool.borrow();
        for i in 0..7 {
            let (page, slot) = (kv.pages()[i / 4], i % 4);
            let key = p.key(page, slot).to_vec();
            for (d, &k) in key.iter().enumerate() {
                assert_eq!(p.keys_t_row(page, d)[slot].to_bits(), k.to_bits());
            }
        }
    }

    #[test]
    fn pool_exhaustion_is_an_error_not_a_crash() {
        let pool = pool(1, 2);
        let mut kv = PagedKv::new(&pool, 8);
        kv.push_slices(&[1.0], &[1.0]).unwrap();
        kv.push_slices(&[2.0], &[2.0]).unwrap();
        let err = kv.push_slices(&[3.0], &[3.0]).unwrap_err();
        assert!(format!("{err}").contains("exhausted"));
        assert_eq!(kv.len(), 2, "failed append must not corrupt the length");
    }

    #[test]
    fn clone_shares_pages_and_cow_forks_on_divergence() {
        let pool = pool(8, 2);
        let mut a = PagedKv::new(&pool, 8);
        a.push_slices(&[1.0], &[10.0]).unwrap();
        let mut b = a.clone();
        assert_eq!(pool.borrow().pages_in_use(), 1, "clone maps the same page");
        assert_eq!(pool.borrow().refcount(a.pages()[0]), 2);

        // b appends into the shared partial page: fork, a is untouched
        b.push_slices(&[2.0], &[20.0]).unwrap();
        assert_ne!(a.pages()[0], b.pages()[0]);
        assert_eq!(pool.borrow().fork_count(), 1);
        assert_eq!(b.key_at(0).unwrap(), vec![1.0], "fork copies the parent");
        assert_eq!(b.value_at(0).unwrap(), vec![10.0]);
        assert_eq!(b.key_at(1).unwrap(), vec![2.0]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.key_at(0).unwrap(), vec![1.0]);

        // a still owns its page alone now — no fork on its next append
        a.push_slices(&[3.0], &[30.0]).unwrap();
        assert_eq!(pool.borrow().fork_count(), 1);
    }

    #[test]
    fn adopt_prefix_maps_pages_and_forks_on_first_append() {
        let pool = pool(8, 4);
        let mut owner = PagedKv::new(&pool, 16);
        for i in 0..6 {
            owner.push_slices(&[i as f32], &[i as f32]).unwrap();
        }
        // share the first 5 positions: one full page + one partial
        let prefix_pages = owner.pages()[..2].to_vec();
        let mut sharer = PagedKv::new(&pool, 16);
        sharer.adopt_prefix(&prefix_pages, 5).unwrap();
        assert_eq!(sharer.len(), 5);
        assert_eq!(sharer.key_at(4).unwrap(), vec![4.0]);
        assert!(sharer.key_at(5).is_none(), "owner's slot 5 is not visible");

        sharer.push_slices(&[99.0], &[99.0]).unwrap();
        assert_eq!(sharer.key_at(5).unwrap(), vec![99.0]);
        assert_eq!(owner.key_at(5).unwrap(), vec![5.0], "owner unaffected");
        assert_eq!(pool.borrow().fork_count(), 1);
    }

    #[test]
    fn spill_frees_pages_and_reload_restores_bitwise() {
        let pool = pool(4, 2);
        let mut kv = PagedKv::new(&pool, 8);
        for i in 0..5 {
            kv.push_slices(&[i as f32 * 0.3, 1.0 / (i + 1) as f32], &[i as f32, 7.0])
                .unwrap();
        }
        let before: Vec<_> = (0..5).map(|i| (kv.key_at(i), kv.value_at(i))).collect();
        kv.spill();
        assert!(kv.is_spilled());
        assert_eq!(pool.borrow().pages_in_use(), 0, "parked = zero pool pages");
        assert_eq!(kv.pages_to_reload(), 3);
        assert!(kv.push_slices(&[0.0, 0.0], &[0.0, 0.0]).is_err());

        kv.reload().unwrap();
        assert!(!kv.is_spilled());
        let after: Vec<_> = (0..5).map(|i| (kv.key_at(i), kv.value_at(i))).collect();
        assert_eq!(before, after);
        let p = pool.borrow();
        for i in 0..5 {
            let (page, slot) = (kv.pages()[i / 2], i % 2);
            let key = p.key(page, slot).to_vec();
            for (d, &k) in key.iter().enumerate() {
                assert_eq!(p.keys_t_row(page, d)[slot].to_bits(), k.to_bits());
            }
        }
    }

    #[test]
    fn reload_is_gated_on_free_pages() {
        let pool = pool(3, 2);
        let mut kv = PagedKv::new(&pool, 8);
        for i in 0..5 {
            kv.push_slices(&[i as f32], &[0.0]).unwrap();
        }
        kv.spill();
        // a co-tenant grabs pages while kv is parked
        let mut tenant = PagedKv::new(&pool, 8);
        tenant.push_slices(&[1.0], &[1.0]).unwrap();
        assert!(kv.reload().is_err(), "2 free pages cannot hold 3");
        assert!(kv.is_spilled(), "failed reload leaves the spill intact");
        drop(tenant);
        kv.reload().unwrap();
        assert_eq!(kv.key_at(4).unwrap(), vec![4.0]);
    }

    #[test]
    fn clear_truncate_and_drop_release_pages() {
        let pool = pool(8, 2);
        let mut kv = PagedKv::new(&pool, 16);
        for i in 0..6 {
            kv.push_slices(&[i as f32], &[0.0]).unwrap();
        }
        assert_eq!(pool.borrow().pages_in_use(), 3);
        kv.truncate(3);
        assert_eq!(kv.len(), 3);
        assert_eq!(pool.borrow().pages_in_use(), 2);
        kv.clear();
        assert_eq!(pool.borrow().pages_in_use(), 0);

        let mut kv2 = PagedKv::new(&pool, 16);
        kv2.push_slices(&[1.0], &[1.0]).unwrap();
        drop(kv2);
        assert_eq!(pool.borrow().pages_in_use(), 0, "drop releases pages");
        assert_eq!(pool.borrow().high_water(), 3);
    }

    #[test]
    fn backing_delegates_both_variants() {
        let pool = pool(4, 2);
        let mut flat = KvBacking::Flat(KvCache::new(4));
        let mut paged = KvBacking::Paged(PagedKv::new(&pool, 4));
        for kv in [&mut flat, &mut paged] {
            kv.push_slices(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
            assert_eq!(kv.len(), 1);
            assert_eq!(kv.capacity(), 4);
            kv.clear();
            assert!(kv.is_empty());
        }
        assert_eq!(flat.flat().unwrap().capacity(), 4);
        assert!(paged.paged().is_some());
    }

    #[test]
    fn pages_spanning_rounds_up() {
        assert_eq!(pages_spanning(0, 4), 0);
        assert_eq!(pages_spanning(1, 4), 1);
        assert_eq!(pages_spanning(4, 4), 1);
        assert_eq!(pages_spanning(5, 4), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let pool = KvPagePool::new(2, 2);
        let mut pool = pool;
        pool.ensure_dim(1).unwrap();
        let p = pool.alloc().unwrap();
        pool.release(p);
        pool.release(p);
    }
}
