//! Mirror fingerprint revalidation: when a scratch is reused across a
//! mid-run weight swap, the packed-panel mirrors must be rebuilt (not serve
//! stale weights), and the decode outputs must stay bitwise identical to a
//! mirror-free run over the same model sequence.

use lm::mlp::DenseMlp;
use lm::scratch::DecodeScratch;
use lm::{build_synthetic, ModelConfig, TransformerModel};

fn assert_bits_eq(fast: &[f32], naive: &[f32], what: &str) {
    assert_eq!(fast.len(), naive.len(), "{what}: length mismatch");
    for (i, (a, b)) in fast.iter().zip(naive.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: output {i} diverged ({a} vs {b})"
        );
    }
}

/// Decodes `tokens` through `models[i]` (one model per token) with the given
/// scratch, returning the logits of every step.
fn decode_seq(
    models: &[&TransformerModel],
    tokens: &[u32],
    scratch: &mut DecodeScratch,
) -> Vec<Vec<f32>> {
    let mut state = models[0].new_decode_state();
    let mut out = Vec::new();
    for (m, &t) in models.iter().zip(tokens.iter()) {
        m.forward_token_into(t, &mut state, &mut DenseMlp, scratch)
            .unwrap();
        out.push(scratch.logits.clone());
    }
    out
}

#[test]
fn packed_mirrors_rebuild_when_weights_swap_mid_run() {
    let config = ModelConfig::tiny();
    let model_a = build_synthetic(&config, 21).unwrap();
    // same shapes, different weights — swapping B in mid-run must invalidate
    // every panel built from A
    let mut model_b = build_synthetic(&config, 22).unwrap();
    for layer in &mut model_b.layers {
        for v in layer.mlp.w_up.as_mut_slice() {
            *v *= 1.5;
        }
    }

    let tokens = [5u32, 3, 8, 2, 7, 1];
    let models: Vec<&TransformerModel> = (0..tokens.len())
        .map(|i| if i < 3 { &model_a } else { &model_b })
        .collect();

    // mirror-free control: always correct, never caches weights
    let mut plain = DecodeScratch::for_model(&model_a);
    plain.use_mirrors = false;
    let want = decode_seq(&models, &tokens, &mut plain);
    assert_eq!(plain.pack_builds, 0, "mirror-free run must never pack");

    // mirrored run with the swap mid-sequence
    let mut mirrored = DecodeScratch::for_model(&model_a);
    let got = decode_seq(&models, &tokens, &mut mirrored);
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_bits_eq(g, w, &format!("token {i}"));
    }

    // exactly two pack builds: one for A on token 0, one for B on token 3 —
    // the fingerprint must catch the swap, and must NOT rebuild every token
    assert_eq!(
        mirrored.pack_builds, 2,
        "expected one rebuild per distinct model"
    );
    assert!(mirrored.pack_nanos > 0, "pack time must be accounted");
}

#[test]
fn pack_counters_stay_flat_without_weight_changes() {
    let model = build_synthetic(&ModelConfig::tiny(), 23).unwrap();
    let mut scratch = DecodeScratch::for_model(&model);
    let mut state = model.new_decode_state();
    for t in [1u32, 2, 3, 4, 5, 6, 7, 8] {
        model
            .forward_token_into(t, &mut state, &mut DenseMlp, &mut scratch)
            .unwrap();
    }
    assert_eq!(scratch.pack_builds, 1, "steady-state must reuse the panels");
}
