//! Property tests over the paged KV allocator: on random op interleavings
//! across concurrent sessions, refcounts must hit zero exactly when the
//! last sharer releases (no double-free, no leak), no session's contents
//! may ever be corrupted by another session's alloc/free/fork traffic, and
//! a copy-on-write fork must be bitwise equal to its parent at fork time.

use lm::{pages_spanning, KvPagePool, PagedKv};
use proptest::prelude::*;

const POOL_PAGES: usize = 48;
const PAGE_SIZE: usize = 4;
const DIM: usize = 3;
const MAX_SEQ: usize = 24;
const N_SESSIONS: usize = 4;

/// One random operation against one session, decoded from raw proptest
/// material.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push,
    Clear,
    Truncate(usize),
    Spill,
    Reload,
    /// Replace this session with a COW clone of another session.
    CloneFrom(usize),
}

fn decode(kind: u8, aux: usize) -> Op {
    match kind % 6 {
        0 | 1 => Op::Push, // pushes twice as likely: grow state to exercise
        2 => Op::Clear,
        3 => Op::Truncate(aux % (MAX_SEQ + 1)),
        4 => Op::Spill,
        _ => {
            if aux.is_multiple_of(2) {
                Op::Reload
            } else {
                Op::CloneFrom(aux % N_SESSIONS)
            }
        }
    }
}

/// Unique, position-dependent key/value payloads so any cross-session
/// corruption is observable.
fn payload(stamp: u64) -> (Vec<f32>, Vec<f32>) {
    let k: Vec<f32> = (0..DIM).map(|d| stamp as f32 + d as f32 * 0.125).collect();
    let v: Vec<f32> = (0..DIM)
        .map(|d| -(stamp as f32) - d as f32 * 0.25)
        .collect();
    (k, v)
}

struct Harness {
    pool: lm::PagePoolHandle,
    sessions: Vec<PagedKv>,
    /// Shadow model: the exact contents each session must hold.
    shadows: Vec<Vec<(Vec<f32>, Vec<f32>)>>,
    stamp: u64,
}

impl Harness {
    fn new() -> Self {
        let pool = KvPagePool::new_handle(POOL_PAGES, PAGE_SIZE);
        Harness {
            sessions: (0..N_SESSIONS)
                .map(|_| PagedKv::new(&pool, MAX_SEQ))
                .collect(),
            shadows: vec![Vec::new(); N_SESSIONS],
            pool,
            stamp: 0,
        }
    }

    fn apply(&mut self, s: usize, op: Op) {
        match op {
            Op::Push => {
                self.stamp += 1;
                let (k, v) = payload(self.stamp);
                let before = self.sessions[s].len();
                match self.sessions[s].push_slices(&k, &v) {
                    Ok(()) => self.shadows[s].push((k, v)),
                    Err(_) => {
                        // full, spilled, or pool exhausted: state unchanged
                        assert_eq!(self.sessions[s].len(), before);
                    }
                }
            }
            Op::Clear => {
                self.sessions[s].clear();
                self.shadows[s].clear();
            }
            Op::Truncate(n) => {
                if !self.sessions[s].is_spilled() {
                    self.sessions[s].truncate(n);
                    self.shadows[s].truncate(n);
                }
            }
            Op::Spill => self.sessions[s].spill(),
            Op::Reload => {
                let was_spilled = self.sessions[s].is_spilled();
                match self.sessions[s].reload() {
                    Ok(()) => assert!(!self.sessions[s].is_spilled()),
                    Err(_) => assert!(was_spilled, "reload only fails while spilled"),
                }
            }
            Op::CloneFrom(from) => {
                if !self.sessions[from].is_spilled() {
                    let clone = self.sessions[from].clone();
                    let shadow = self.shadows[from].clone();
                    self.sessions[s] = clone;
                    self.shadows[s] = shadow;
                }
            }
        }
    }

    /// Every session's visible contents must match its shadow bitwise, and
    /// the pool's free list and refcounts must be consistent.
    fn check(&self) {
        for (s, (kv, shadow)) in self.sessions.iter().zip(self.shadows.iter()).enumerate() {
            prop_assert_invariants(kv, shadow, s);
        }
        let pool = self.pool.borrow();
        assert_eq!(
            pool.pages_in_use() + pool.free_pages(),
            pool.total_pages(),
            "every page is exactly free or in use"
        );
        let mapped: usize = self.sessions.iter().map(|kv| kv.pages().len()).sum();
        assert!(
            pool.pages_in_use() <= mapped,
            "in-use pages ({}) cannot exceed mapped page-table entries ({mapped})",
            pool.pages_in_use()
        );
        assert!(pool.high_water() >= pool.pages_in_use());
    }
}

fn prop_assert_invariants(kv: &PagedKv, shadow: &[(Vec<f32>, Vec<f32>)], s: usize) {
    assert_eq!(kv.len(), shadow.len(), "session {s} length");
    if kv.is_spilled() {
        return; // contents are checked again after reload
    }
    assert_eq!(kv.pages().len(), pages_spanning(kv.len(), PAGE_SIZE));
    for (i, (k, v)) in shadow.iter().enumerate() {
        let got_k = kv.key_at(i).expect("position exists");
        let got_v = kv.value_at(i).expect("position exists");
        for (a, b) in got_k.iter().zip(k.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "session {s} key {i} corrupted");
        }
        for (a, b) in got_v.iter().zip(v.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "session {s} value {i} corrupted");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of push/clear/truncate/spill/reload/clone over
    /// concurrent sessions never corrupt any session's contents, never
    /// double-free, and keep the free list + refcounts consistent.
    #[test]
    fn concurrent_sessions_never_corrupt_each_other(
        ops in prop::collection::vec((0u8..6, 0usize..N_SESSIONS, 0usize..64), 0..80)
    ) {
        let mut h = Harness::new();
        for (kind, session, aux) in ops {
            h.apply(session, decode(kind, aux));
            h.check();
        }
        // teardown: dropping every session returns the pool to empty
        h.sessions.clear();
        prop_assert_eq!(h.pool.borrow().pages_in_use(), 0);
        prop_assert_eq!(h.pool.borrow().free_pages(), POOL_PAGES);
    }

    /// A page's refcount hits zero exactly when the last sharer releases:
    /// after `n` clones of one session are dropped one by one, the shared
    /// pages stay allocated until the final owner goes away.
    #[test]
    fn refcount_zero_exactly_at_last_release(
        positions in 1usize..MAX_SEQ,
        n_clones in 1usize..5,
    ) {
        let pool = KvPagePool::new_handle(POOL_PAGES, PAGE_SIZE);
        let mut owner = PagedKv::new(&pool, MAX_SEQ);
        for i in 0..positions {
            let (k, v) = payload(i as u64);
            owner.push_slices(&k, &v).unwrap();
        }
        let pages_used = pages_spanning(positions, PAGE_SIZE);
        let mut clones: Vec<PagedKv> = (0..n_clones).map(|_| owner.clone()).collect();
        prop_assert_eq!(pool.borrow().pages_in_use(), pages_used);
        for &p in owner.pages() {
            prop_assert_eq!(pool.borrow().refcount(p), n_clones as u32 + 1);
        }
        while let Some(c) = clones.pop() {
            drop(c);
            prop_assert_eq!(
                pool.borrow().pages_in_use(), pages_used,
                "pages must stay allocated while any sharer remains"
            );
        }
        drop(owner);
        prop_assert_eq!(pool.borrow().pages_in_use(), 0, "last release frees");
        prop_assert_eq!(pool.borrow().free_pages(), POOL_PAGES);
    }

    /// A COW fork is bitwise equal to its parent at fork time: whatever
    /// prefix the parent held when the clone diverges, the clone reads back
    /// the parent's exact bits for every shared position.
    #[test]
    fn forked_page_is_bitwise_equal_to_parent_at_fork_time(
        parent_len in 1usize..MAX_SEQ,
        extra in 1usize..4,
    ) {
        let pool = KvPagePool::new_handle(POOL_PAGES, PAGE_SIZE);
        let mut parent = PagedKv::new(&pool, MAX_SEQ);
        for i in 0..parent_len {
            let (k, v) = payload(1000 + i as u64);
            parent.push_slices(&k, &v).unwrap();
        }
        let snapshot: Vec<_> = (0..parent_len)
            .map(|i| (parent.key_at(i).unwrap(), parent.value_at(i).unwrap()))
            .collect();

        let mut child = parent.clone();
        let forks_before = pool.borrow().fork_count();
        for e in 0..extra.min(MAX_SEQ - parent_len) {
            let (k, v) = payload(9000 + e as u64);
            child.push_slices(&k, &v).unwrap();
        }
        if parent_len % PAGE_SIZE != 0 {
            prop_assert!(
                pool.borrow().fork_count() > forks_before,
                "appending into a shared partial page must fork"
            );
        }
        for (i, (k, v)) in snapshot.iter().enumerate() {
            let ck = child.key_at(i).unwrap();
            let cv = child.value_at(i).unwrap();
            for (a, b) in ck.iter().zip(k.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "forked key {} diverged", i);
            }
            for (a, b) in cv.iter().zip(v.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "forked value {} diverged", i);
            }
        }
        // and the parent still reads back its own bits after the fork
        for (i, (k, _)) in snapshot.iter().enumerate() {
            let pk = parent.key_at(i).unwrap();
            for (a, b) in pk.iter().zip(k.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "parent key {} corrupted", i);
            }
        }
    }
}
