//! Threaded fleet runs must be *bitwise* reproducible: fanning the serving
//! cells across OS threads (and routing kernels through the worker pool)
//! may change wall-clock time only, never a number in a `ServeReport`.

use experiments::{serving, Scale};
use serve::{SchedulerPolicy, StrategySpec};

fn test_cells() -> Vec<serving::ServingCell> {
    let dip_ca = StrategySpec::DipCacheAware {
        density: 0.5,
        gamma: 0.2,
    };
    vec![
        serving::ServingCell::uniform(StrategySpec::Dense, SchedulerPolicy::Fifo),
        serving::ServingCell::uniform(StrategySpec::Dip { density: 0.5 }, SchedulerPolicy::Fifo),
        serving::ServingCell::uniform(dip_ca, SchedulerPolicy::Fifo),
        serving::ServingCell::mix(
            vec![
                StrategySpec::Dense,
                StrategySpec::Dip { density: 0.5 },
                dip_ca,
            ],
            SchedulerPolicy::ShortestRemainingFirst,
        ),
    ]
}

#[test]
fn parallel_fleet_runs_reproduce_sequential_reports_exactly() {
    let sequential = serving::run_cells(Scale::Smoke, test_cells()).unwrap();
    let parallel = serving::run_cells_parallel(Scale::Smoke, test_cells()).unwrap();

    assert_eq!(sequential.results.len(), parallel.results.len());
    for ((cell_s, report_s), (cell_p, report_p)) in
        sequential.results.iter().zip(parallel.results.iter())
    {
        assert_eq!(cell_s, cell_p, "cell order must be preserved");
        // ServeReport is plain data with derived PartialEq — full equality
        // means every latency, byte count and hit rate is bit-identical
        assert_eq!(
            report_s, report_p,
            "threaded run diverged for cell `{}`",
            cell_s.label
        );
    }
    assert_eq!(
        sequential.table.to_markdown(),
        parallel.table.to_markdown(),
        "rendered tables must match"
    );
}

#[test]
fn parallel_runs_are_reproducible_across_invocations() {
    let a = serving::run_cells_parallel(Scale::Smoke, test_cells()).unwrap();
    let b = serving::run_cells_parallel(Scale::Smoke, test_cells()).unwrap();
    for ((_, ra), (_, rb)) in a.results.iter().zip(b.results.iter()) {
        assert_eq!(ra, rb);
    }
}
