//! The set of methods compared throughout the paper's evaluation.

use serde::{Deserialize, Serialize};

/// Identifier for every method that appears in the paper's tables/figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// The unmodified dense model.
    Dense,
    /// GLU pruning with a perfect (oracle) neuron predictor.
    GluOracle,
    /// GLU pruning (only `W_d` sparsified; density ≥ 2/3).
    GluPruning,
    /// Gate pruning.
    GatePruning,
    /// Up pruning.
    UpPruning,
    /// CATS (per-layer threshold on gate activations).
    Cats,
    /// CATS with fused LoRA adapters.
    CatsLora,
    /// DejaVu-style predictive GLU pruning.
    DejaVu,
    /// SparseGPT-style unstructured static pruning.
    SparseGptUnstructured,
    /// SparseGPT-style 2:4 semi-structured static pruning.
    SparseGpt2of4,
    /// SparseGPT-style 4:8 semi-structured static pruning.
    SparseGpt4of8,
    /// Dynamic Input Pruning.
    Dip,
    /// Dynamic Input Pruning with fused LoRA adapters.
    DipLora,
    /// Cache-aware Dynamic Input Pruning (γ = 0.2, the paper's setting).
    DipCacheAware,
}

impl MethodKind {
    /// The label used in report rows.
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::Dense => "Dense",
            MethodKind::GluOracle => "GLU Pruning (oracle)",
            MethodKind::GluPruning => "GLU Pruning",
            MethodKind::GatePruning => "Gate Pruning",
            MethodKind::UpPruning => "Up Pruning",
            MethodKind::Cats => "CATS",
            MethodKind::CatsLora => "CATS+LoRA",
            MethodKind::DejaVu => "DejaVu",
            MethodKind::SparseGptUnstructured => "SparseGPT (unstructured)",
            MethodKind::SparseGpt2of4 => "SparseGPT (2:4)",
            MethodKind::SparseGpt4of8 => "SparseGPT (4:8)",
            MethodKind::Dip => "DIP",
            MethodKind::DipLora => "DIP+LoRA",
            MethodKind::DipCacheAware => "DIP-CA",
        }
    }

    /// The rows of Table 1 (and Tables 3/4), in the paper's order.
    pub fn table1_rows() -> Vec<MethodKind> {
        vec![
            MethodKind::Dense,
            MethodKind::GluOracle,
            MethodKind::SparseGptUnstructured,
            MethodKind::SparseGpt2of4,
            MethodKind::SparseGpt4of8,
            MethodKind::GatePruning,
            MethodKind::UpPruning,
            MethodKind::DejaVu,
            MethodKind::Cats,
            MethodKind::CatsLora,
            MethodKind::Dip,
            MethodKind::DipLora,
        ]
    }

    /// The methods plotted in the Pareto figures (Fig. 8 / Fig. 14).
    pub fn pareto_set() -> Vec<MethodKind> {
        vec![
            MethodKind::SparseGptUnstructured,
            MethodKind::SparseGpt2of4,
            MethodKind::SparseGpt4of8,
            MethodKind::DejaVu,
            MethodKind::Cats,
            MethodKind::Dip,
        ]
    }

    /// The methods compared for throughput (Table 2 and Tables 6/7).
    pub fn throughput_set() -> Vec<MethodKind> {
        vec![
            MethodKind::GluPruning,
            MethodKind::UpPruning,
            MethodKind::Cats,
            MethodKind::Dip,
            MethodKind::DipCacheAware,
        ]
    }

    /// Whether the method's per-token weight selection depends on the input
    /// (dynamic sparsity) rather than being fixed offline.
    pub fn is_dynamic(self) -> bool {
        !matches!(
            self,
            MethodKind::Dense
                | MethodKind::SparseGptUnstructured
                | MethodKind::SparseGpt2of4
                | MethodKind::SparseGpt4of8
        )
    }

    /// Whether evaluating this method replaces the model weights (LoRA fusing,
    /// quantization error, static pruning).
    pub fn modifies_weights(self) -> bool {
        matches!(
            self,
            MethodKind::CatsLora
                | MethodKind::DipLora
                | MethodKind::SparseGptUnstructured
                | MethodKind::SparseGpt2of4
                | MethodKind::SparseGpt4of8
        )
    }
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let rows = MethodKind::table1_rows();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0], MethodKind::Dense);
        assert_eq!(rows[rows.len() - 1], MethodKind::DipLora);
        // GLU pruning (non-oracle) cannot reach 50% density, so it is not a row
        assert!(!rows.contains(&MethodKind::GluPruning));
    }

    #[test]
    fn labels_are_unique() {
        let rows = MethodKind::table1_rows();
        let labels: std::collections::HashSet<&str> = rows.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), rows.len());
        assert_eq!(MethodKind::DipCacheAware.to_string(), "DIP-CA");
    }

    #[test]
    fn classification_flags() {
        assert!(MethodKind::Dip.is_dynamic());
        assert!(!MethodKind::SparseGpt2of4.is_dynamic());
        assert!(MethodKind::DipLora.modifies_weights());
        assert!(!MethodKind::Dip.modifies_weights());
        assert!(MethodKind::throughput_set().contains(&MethodKind::DipCacheAware));
        assert!(MethodKind::pareto_set().contains(&MethodKind::Dip));
    }
}
