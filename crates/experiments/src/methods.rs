//! The set of methods compared throughout the paper's evaluation.
//!
//! `MethodKind` is only the *row identifier* (paper labels, table ordering,
//! classification flags); everything about how a method is constructed lives
//! in its [`StrategySpec`] — [`MethodKind::spec`] is a thin table mapping
//! each row to its spec, and the workbench builds methods exclusively
//! through the shared [`dip_core::spec::StrategyRegistry`].

use dip_core::spec::{NmPattern, PredictorSpec, StrategySpec};
use serde::{Deserialize, Serialize};

/// Identifier for every method that appears in the paper's tables/figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// The unmodified dense model.
    Dense,
    /// GLU pruning with a perfect (oracle) neuron predictor.
    GluOracle,
    /// GLU pruning (only `W_d` sparsified; density ≥ 2/3).
    GluPruning,
    /// Gate pruning.
    GatePruning,
    /// Up pruning.
    UpPruning,
    /// CATS (per-layer threshold on gate activations).
    Cats,
    /// CATS with fused LoRA adapters.
    CatsLora,
    /// DejaVu-style predictive GLU pruning.
    DejaVu,
    /// SparseGPT-style unstructured static pruning.
    SparseGptUnstructured,
    /// SparseGPT-style 2:4 semi-structured static pruning.
    SparseGpt2of4,
    /// SparseGPT-style 4:8 semi-structured static pruning.
    SparseGpt4of8,
    /// Dynamic Input Pruning.
    Dip,
    /// Dynamic Input Pruning with fused LoRA adapters.
    DipLora,
    /// Cache-aware Dynamic Input Pruning (γ = 0.2, the paper's setting).
    DipCacheAware,
}

/// The LoRA rank used by the paper's `+LoRA` rows.
pub const LORA_RANK: u32 = 8;

impl MethodKind {
    /// The declarative spec this method runs as, at a target overall MLP
    /// weight density — the single source of truth for construction. The
    /// DejaVu predictor configuration is left at its defaults here; the
    /// workbench fills in scale-dependent training parameters.
    pub fn spec(self, target_density: f32) -> StrategySpec {
        match self {
            MethodKind::Dense => StrategySpec::Dense,
            MethodKind::GluOracle => StrategySpec::GluOracle {
                density: target_density,
            },
            MethodKind::GluPruning => StrategySpec::GluPruning {
                density: target_density,
            },
            MethodKind::GatePruning => StrategySpec::GatePruning {
                density: target_density,
            },
            MethodKind::UpPruning => StrategySpec::UpPruning {
                density: target_density,
            },
            MethodKind::Cats => StrategySpec::Cats {
                density: target_density,
            },
            MethodKind::CatsLora => StrategySpec::CatsLora {
                density: target_density,
                rank: LORA_RANK,
            },
            MethodKind::DejaVu => StrategySpec::Predictive {
                density: target_density,
                predictor: PredictorSpec::default(),
            },
            MethodKind::SparseGptUnstructured => StrategySpec::SparseGpt {
                density: target_density,
                pattern: NmPattern::Unstructured,
            },
            MethodKind::SparseGpt2of4 => StrategySpec::SparseGpt {
                density: target_density,
                pattern: NmPattern::NofM { n: 2, m: 4 },
            },
            MethodKind::SparseGpt4of8 => StrategySpec::SparseGpt {
                density: target_density,
                pattern: NmPattern::NofM { n: 4, m: 8 },
            },
            MethodKind::Dip => StrategySpec::Dip {
                density: target_density,
            },
            MethodKind::DipLora => StrategySpec::DipLora {
                density: target_density,
                rank: LORA_RANK,
            },
            // γ = 0.2, the paper's setting
            MethodKind::DipCacheAware => StrategySpec::DipCacheAware {
                density: target_density,
                gamma: 0.2,
            },
        }
    }

    /// The label used in report rows.
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::Dense => "Dense",
            MethodKind::GluOracle => "GLU Pruning (oracle)",
            MethodKind::GluPruning => "GLU Pruning",
            MethodKind::GatePruning => "Gate Pruning",
            MethodKind::UpPruning => "Up Pruning",
            MethodKind::Cats => "CATS",
            MethodKind::CatsLora => "CATS+LoRA",
            MethodKind::DejaVu => "DejaVu",
            MethodKind::SparseGptUnstructured => "SparseGPT (unstructured)",
            MethodKind::SparseGpt2of4 => "SparseGPT (2:4)",
            MethodKind::SparseGpt4of8 => "SparseGPT (4:8)",
            MethodKind::Dip => "DIP",
            MethodKind::DipLora => "DIP+LoRA",
            MethodKind::DipCacheAware => "DIP-CA",
        }
    }

    /// The rows of Table 1 (and Tables 3/4), in the paper's order.
    pub fn table1_rows() -> Vec<MethodKind> {
        vec![
            MethodKind::Dense,
            MethodKind::GluOracle,
            MethodKind::SparseGptUnstructured,
            MethodKind::SparseGpt2of4,
            MethodKind::SparseGpt4of8,
            MethodKind::GatePruning,
            MethodKind::UpPruning,
            MethodKind::DejaVu,
            MethodKind::Cats,
            MethodKind::CatsLora,
            MethodKind::Dip,
            MethodKind::DipLora,
        ]
    }

    /// The methods plotted in the Pareto figures (Fig. 8 / Fig. 14).
    pub fn pareto_set() -> Vec<MethodKind> {
        vec![
            MethodKind::SparseGptUnstructured,
            MethodKind::SparseGpt2of4,
            MethodKind::SparseGpt4of8,
            MethodKind::DejaVu,
            MethodKind::Cats,
            MethodKind::Dip,
        ]
    }

    /// The methods compared for throughput (Table 2 and Tables 6/7).
    pub fn throughput_set() -> Vec<MethodKind> {
        vec![
            MethodKind::GluPruning,
            MethodKind::UpPruning,
            MethodKind::Cats,
            MethodKind::Dip,
            MethodKind::DipCacheAware,
        ]
    }

    /// Whether the method's per-token weight selection depends on the input
    /// (dynamic sparsity) rather than being fixed offline. Delegates to the
    /// spec's metadata.
    pub fn is_dynamic(self) -> bool {
        self.spec(1.0).is_dynamic()
    }

    /// Whether evaluating this method replaces the model weights (LoRA
    /// fusing, static pruning). Delegates to the spec's metadata.
    pub fn modifies_weights(self) -> bool {
        self.spec(1.0).weight_transform().is_some()
    }
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let rows = MethodKind::table1_rows();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0], MethodKind::Dense);
        assert_eq!(rows[rows.len() - 1], MethodKind::DipLora);
        // GLU pruning (non-oracle) cannot reach 50% density, so it is not a row
        assert!(!rows.contains(&MethodKind::GluPruning));
    }

    #[test]
    fn labels_are_unique() {
        let rows = MethodKind::table1_rows();
        let labels: std::collections::HashSet<&str> = rows.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), rows.len());
        assert_eq!(MethodKind::DipCacheAware.to_string(), "DIP-CA");
    }

    #[test]
    fn classification_flags() {
        assert!(MethodKind::Dip.is_dynamic());
        assert!(!MethodKind::SparseGpt2of4.is_dynamic());
        assert!(MethodKind::DipLora.modifies_weights());
        assert!(!MethodKind::Dip.modifies_weights());
        assert!(MethodKind::throughput_set().contains(&MethodKind::DipCacheAware));
        assert!(MethodKind::pareto_set().contains(&MethodKind::Dip));
    }

    #[test]
    fn every_method_kind_maps_to_a_constructible_spec() {
        // ISSUE 2 acceptance: every MethodKind variant is expressible as a
        // StrategySpec (at a density its scheme can reach), the mapping is
        // injective, and each spec survives a JSON round trip.
        let cases = [
            (MethodKind::Dense, 1.0f32),
            (MethodKind::GluOracle, 0.5),
            (MethodKind::GluPruning, 0.75),
            (MethodKind::GatePruning, 0.5),
            (MethodKind::UpPruning, 0.5),
            (MethodKind::Cats, 0.5),
            (MethodKind::CatsLora, 0.5),
            (MethodKind::DejaVu, 0.5),
            (MethodKind::SparseGptUnstructured, 0.5),
            (MethodKind::SparseGpt2of4, 0.5),
            (MethodKind::SparseGpt4of8, 0.5),
            (MethodKind::Dip, 0.5),
            (MethodKind::DipLora, 0.5),
            (MethodKind::DipCacheAware, 0.5),
        ];
        let mut labels = std::collections::HashSet::new();
        for (method, density) in cases {
            let spec = method.spec(density);
            assert!(spec.validate().is_ok(), "{method}: {}", spec.label());
            assert_eq!(
                StrategySpec::from_json(&spec.to_json()).unwrap(),
                spec,
                "{method} spec must round-trip"
            );
            assert!(labels.insert(spec.label()), "{method} label must be unique");
        }
        assert_eq!(labels.len(), cases.len());
    }
}
