//! Experiment scale control.
//!
//! Every experiment can run at three scales so that unit tests stay fast
//! while the shipped binaries produce stable numbers:
//!
//! * [`Scale::Smoke`] — tiny models, a handful of tokens; used by tests,
//! * [`Scale::Quick`] — the default for the `experiments` binaries,
//! * [`Scale::Full`] — larger corpora for smoother curves.

use serde::{Deserialize, Serialize};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Scale {
    /// Minimal settings for unit tests.
    Smoke,
    /// Default settings for the experiment binaries.
    #[default]
    Quick,
    /// Larger corpora for final numbers.
    Full,
}

impl Scale {
    /// Parses a scale from a command-line style string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Number of evaluation sequences.
    pub fn eval_sequences(self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Quick => 4,
            Scale::Full => 8,
        }
    }

    /// Evaluation sequence length (tokens).
    pub fn eval_seq_len(self) -> usize {
        match self {
            Scale::Smoke => 32,
            Scale::Quick => 64,
            Scale::Full => 128,
        }
    }

    /// Number of calibration sequences (thresholds, predictors, LoRA).
    pub fn calib_sequences(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Quick => 4,
            Scale::Full => 8,
        }
    }

    /// Calibration sequence length.
    pub fn calib_seq_len(self) -> usize {
        match self {
            Scale::Smoke => 24,
            Scale::Quick => 48,
            Scale::Full => 96,
        }
    }

    /// Prompts per downstream task.
    pub fn task_prompts(self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Quick => 10,
            Scale::Full => 25,
        }
    }

    /// Tokens simulated per throughput measurement.
    pub fn sim_tokens(self) -> usize {
        match self {
            Scale::Smoke => 48,
            Scale::Quick => 128,
            Scale::Full => 256,
        }
    }

    /// MLP density sweep used by Pareto / throughput experiments.
    pub fn density_sweep(self) -> Vec<f32> {
        match self {
            Scale::Smoke => vec![0.4, 0.6, 0.8],
            Scale::Quick | Scale::Full => vec![0.35, 0.45, 0.55, 0.65, 0.8, 0.95],
        }
    }

    /// Predictor training epochs.
    pub fn predictor_epochs(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Quick => 6,
            Scale::Full => 12,
        }
    }

    /// LoRA fine-tuning epochs.
    pub fn lora_epochs(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Quick => 40,
            Scale::Full => 80,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_and_defaults() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::default(), Scale::Quick);
    }

    #[test]
    fn scales_are_ordered_by_size() {
        assert!(Scale::Smoke.eval_sequences() <= Scale::Quick.eval_sequences());
        assert!(Scale::Quick.eval_seq_len() <= Scale::Full.eval_seq_len());
        assert!(Scale::Smoke.sim_tokens() < Scale::Full.sim_tokens());
        assert!(Scale::Smoke.density_sweep().len() <= Scale::Full.density_sweep().len());
        assert!(Scale::Smoke.task_prompts() < Scale::Full.task_prompts());
        assert!(Scale::Smoke.predictor_epochs() < Scale::Full.predictor_epochs());
        assert!(Scale::Smoke.lora_epochs() < Scale::Full.lora_epochs());
        assert!(Scale::Smoke.calib_sequences() <= Scale::Full.calib_sequences());
        assert!(Scale::Smoke.calib_seq_len() <= Scale::Full.calib_seq_len());
    }
}
