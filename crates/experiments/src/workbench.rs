//! The per-model experiment workbench.
//!
//! A [`Workbench`] owns one synthetic model together with its calibration
//! artefacts (activation trace, predictors, LoRA-fused variants, task suite)
//! and exposes the two measurements every experiment is built from:
//!
//! * **quality** — perplexity and downstream-task accuracy of a method at a
//!   target MLP density ([`Workbench::quality`]),
//! * **throughput** — simulated tokens/s of a method on a given device and
//!   cache policy ([`Workbench::throughput`]).

use crate::convert::{layout_for_method, StaticOverhead, TraceBuilder};
use crate::error::{ExpError, Result};
use crate::methods::MethodKind;
use crate::scale::Scale;
use dip_core::spec::{
    BuildEnv, NmPattern, PredictorSpec, StrategyRegistry, StrategySpec, WeightTransform,
};
use dip_core::strategies::{CatsPruning, Dip};
use dip_core::{lora, predictor, DensityAllocation, SparsityScheme};
use hwsim::{
    AccessTrace, BlockCacheCapacity, DeviceConfig, EvictionPolicy, ModelLayout, SimReport,
};
use lm::mlp::DenseMlp;
use lm::{
    build_synthetic, eval, trace, ActivationTrace, MlpForward, ModelConfig, TransformerModel,
};
use quant::{PruningStructure, StaticPruner};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Quality measurement of one method at one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityPoint {
    /// Method label.
    pub method: String,
    /// WikiText-style token perplexity.
    pub perplexity: f64,
    /// Perplexity increase over the dense model.
    pub ppl_delta: f64,
    /// Mean downstream-task accuracy (percent).
    pub accuracy_pct: f64,
    /// Measured mean MLP weight density during the evaluation.
    pub measured_density: f64,
}

/// A method instantiated against a specific model: the (possibly modified)
/// weights, the MLP strategy, and its static DRAM overhead.
pub struct PreparedMethod {
    /// Report label.
    pub label: String,
    /// The model to run (original, LoRA-fused, quantized or statically pruned).
    pub model: TransformerModel,
    /// The MLP forward strategy.
    pub strategy: Box<dyn MlpForward>,
    /// Extra bytes pinned in DRAM (e.g. predictors).
    pub overhead: StaticOverhead,
}

/// Per-model experiment state.
pub struct Workbench {
    /// Scale the workbench was built at.
    pub scale: Scale,
    /// The model configuration.
    pub config: ModelConfig,
    /// The dense synthetic model.
    pub model: TransformerModel,
    /// Held-out evaluation sequences.
    pub eval_seqs: Vec<Vec<u32>>,
    /// Calibration activation trace (thresholds, predictors, LoRA, fits).
    pub calib_trace: ActivationTrace,
    /// Downstream task suite.
    pub task_suite: lm::TaskSuite,
    /// Dense-model perplexity on the evaluation sequences.
    pub dense_ppl: f64,
    /// Dense-model task accuracy (always 1.0 by construction, kept for reports).
    pub dense_accuracy: f64,
    registry: StrategyRegistry,
    lora_dip: HashMap<u32, TransformerModel>,
    lora_cats: HashMap<u32, TransformerModel>,
}

fn density_key(d: f32) -> u32 {
    (d * 1000.0).round() as u32
}

impl Workbench {
    /// Builds a workbench: synthesises the model, generates evaluation and
    /// calibration corpora, collects the calibration trace and the task
    /// suite, and records the dense baselines.
    ///
    /// # Errors
    ///
    /// Propagates model construction and evaluation errors.
    pub fn new(config: &ModelConfig, scale: Scale, seed: u64) -> Result<Self> {
        let model = build_synthetic(config, seed)?;
        let eval_seqs = eval::standard_eval_corpus(
            &model,
            scale.eval_sequences(),
            scale.eval_seq_len(),
            seed ^ 0x00ff_00ff,
        )?;
        let calib_seqs = eval::standard_eval_corpus(
            &model,
            scale.calib_sequences(),
            scale.calib_seq_len(),
            seed ^ 0x1234_5678,
        )?;
        let calib_trace = trace::collect_activation_trace(&model, &calib_seqs)?;
        let task_suite = eval::build_task_suite(&model, scale.task_prompts(), seed ^ 0xabcd)?;
        let dense_ppl = eval::perplexity(&model, &mut DenseMlp, &eval_seqs)?.perplexity;
        let dense_accuracy = eval::suite_accuracy(&model, &mut DenseMlp, &task_suite)?;
        let mut registry = StrategyRegistry::new();
        registry.set_predictor_defaults(predictor::PredictorTrainingConfig {
            hidden: (config.d_model / 2).max(16),
            epochs: scale.predictor_epochs(),
            ..predictor::PredictorTrainingConfig::default()
        });
        Ok(Workbench {
            scale,
            config: config.clone(),
            model,
            eval_seqs,
            calib_trace,
            task_suite,
            dense_ppl,
            dense_accuracy,
            registry,
            lora_dip: HashMap::new(),
            lora_cats: HashMap::new(),
        })
    }

    /// The density allocation model used to split DIP's budget.
    pub fn allocation(&self) -> DensityAllocation {
        self.registry.allocation()
    }

    /// Replaces the density allocation model (e.g. with a fitted one from the
    /// Appendix B.1 experiment).
    pub fn set_allocation(&mut self, allocation: DensityAllocation) {
        self.registry.set_allocation(allocation);
    }

    /// The declarative spec a method runs as on this workbench: the thin
    /// [`MethodKind::spec`] table with the scale-dependent predictor
    /// configuration filled in.
    pub fn spec_for(&self, method: MethodKind, target_density: f32) -> StrategySpec {
        match method.spec(target_density) {
            StrategySpec::Predictive { density, .. } => StrategySpec::Predictive {
                density,
                predictor: PredictorSpec {
                    hidden: Some((self.config.d_model / 2).max(16) as u32),
                    epochs: Some(self.scale.predictor_epochs() as u32),
                },
            },
            spec => spec,
        }
    }

    fn lora_config(&self, rank: u32) -> lora::LoraConfig {
        lora::LoraConfig {
            rank: rank as usize,
            epochs: self.scale.lora_epochs(),
            learning_rate: 0.05,
            seed: 7,
        }
    }

    fn dip_lora_model(&mut self, target: f32, rank: u32) -> Result<TransformerModel> {
        let key = density_key(target);
        if !self.lora_dip.contains_key(&key) {
            let dip = Dip::for_target_density(target, &self.registry.allocation())?;
            let tuned = lora::fine_tune_dip(
                &self.model,
                &self.calib_trace,
                &dip,
                &self.lora_config(rank),
            )?;
            self.lora_dip.insert(key, tuned);
        }
        Ok(self.lora_dip[&key].clone())
    }

    fn cats_lora_model(&mut self, target: f32, rank: u32) -> Result<TransformerModel> {
        let key = density_key(target);
        if !self.lora_cats.contains_key(&key) {
            let density = SparsityScheme::TwoOfThree.activation_density_for_target(target)?;
            let cats = CatsPruning::calibrate(&self.model, &self.calib_trace, density)?;
            let tuned = lora::fine_tune_cats(
                &self.model,
                &self.calib_trace,
                &cats,
                &self.lora_config(rank),
            )?;
            self.lora_cats.insert(key, tuned);
        }
        Ok(self.lora_cats[&key].clone())
    }

    /// Applies the spec's offline weight transform
    /// ([`StrategySpec::weight_transform`]) to the workbench model, returning
    /// the model the strategy should run on.
    fn transformed_model(&mut self, spec: &StrategySpec) -> Result<TransformerModel> {
        match spec.weight_transform() {
            None => Ok(self.model.clone()),
            Some(WeightTransform::SparseGpt { pattern }) => {
                let structure = match pattern {
                    NmPattern::Unstructured => PruningStructure::Unstructured,
                    NmPattern::NofM { n, m } => PruningStructure::SemiStructured {
                        n: n as usize,
                        m: m as usize,
                    },
                };
                let pruner = StaticPruner::magnitude(structure);
                Ok(quant::model_ops::prune_mlp_static(
                    &self.model,
                    &pruner,
                    spec.density(),
                )?)
            }
            Some(WeightTransform::LoraDip { rank }) => self.dip_lora_model(spec.density(), rank),
            Some(WeightTransform::LoraCats { rank }) => self.cats_lora_model(spec.density(), rank),
        }
    }

    /// Instantiates an arbitrary strategy spec: applies its weight transform
    /// (if any) and builds its runtime strategy through the shared
    /// [`StrategyRegistry`]. `capacities` is required by specs with shared
    /// cache state (DIP-CA) and ignored otherwise.
    ///
    /// # Errors
    ///
    /// Returns validation errors for unreachable configurations (rendered as
    /// "—" cells, see [`ExpError::is_unsupported`]) and propagates
    /// calibration/training errors.
    pub fn prepare_spec(
        &mut self,
        spec: &StrategySpec,
        capacities: Option<&[BlockCacheCapacity]>,
    ) -> Result<PreparedMethod> {
        spec.validate()?;
        let model = self.transformed_model(spec)?;
        // Shared cache cells are a *serving* concern (sessions sharing one
        // physical cache); single-stream preparation always builds a fresh
        // instance so different devices never reuse stale capacities.
        let mut fresh;
        let registry = if spec.shared_cache_key().is_some() {
            fresh = StrategyRegistry::new();
            fresh.set_allocation(self.registry.allocation());
            &mut fresh
        } else {
            &mut self.registry
        };
        let built = registry.build(
            spec,
            &BuildEnv {
                model: &self.model,
                calibration: Some(&self.calib_trace),
                capacities,
            },
        )?;
        Ok(PreparedMethod {
            label: spec.label(),
            model,
            strategy: built.strategy,
            overhead: StaticOverhead {
                bytes: built.overhead_bytes,
            },
        })
    }

    /// Instantiates a method at a target MLP weight density.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::Unsupported`] when the method cannot reach the
    /// target density (e.g. GLU pruning below 2/3) and propagates calibration
    /// or training errors otherwise. [`MethodKind::DipCacheAware`] needs a
    /// device and must go through [`Workbench::prepare_dip_ca`].
    pub fn prepare(&mut self, method: MethodKind, target_density: f32) -> Result<PreparedMethod> {
        if method == MethodKind::DipCacheAware {
            return Err(ExpError::Unsupported {
                reason: "DIP-CA needs a device; use Workbench::prepare_dip_ca".to_string(),
            });
        }
        let spec = self.spec_for(method, target_density);
        let mut prepared = self.prepare_spec(&spec, None)?;
        // report rows use the paper's method labels, not the spec labels
        prepared.label = method.label().to_string();
        Ok(prepared)
    }

    /// Instantiates cache-aware DIP for a specific device: the per-layer
    /// cache capacities come from the same DRAM allocation the simulator will
    /// use.
    ///
    /// # Errors
    ///
    /// Propagates allocation and construction errors.
    pub fn prepare_dip_ca(
        &mut self,
        target_density: f32,
        gamma: f32,
        device: &DeviceConfig,
        bits_per_weight: f64,
    ) -> Result<PreparedMethod> {
        // The layout for DIP-CA has the same slicing axes as plain DIP.
        let example = lm::MlpAccessRecord {
            up: lm::MatrixAccess::input(vec![]),
            gate: lm::MatrixAccess::input(vec![]),
            down: lm::MatrixAccess::input(vec![]),
        };
        let layout = layout_for_method(
            &self.config,
            &example,
            bits_per_weight,
            StaticOverhead::default(),
        );
        let allocation = hwsim::allocate(&layout, device)?;
        let spec = StrategySpec::DipCacheAware {
            density: target_density,
            gamma,
        };
        let mut prepared = self.prepare_spec(&spec, Some(&allocation.capacities))?;
        prepared.label = MethodKind::DipCacheAware.label().to_string();
        Ok(prepared)
    }

    /// Measures perplexity and downstream accuracy of a prepared method.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn quality_of(&self, prepared: &mut PreparedMethod) -> Result<QualityPoint> {
        let ppl = eval::perplexity(&prepared.model, prepared.strategy.as_mut(), &self.eval_seqs)?;
        let accuracy = eval::suite_accuracy(
            &prepared.model,
            prepared.strategy.as_mut(),
            &self.task_suite,
        )?;
        Ok(QualityPoint {
            method: prepared.label.clone(),
            perplexity: ppl.perplexity,
            ppl_delta: ppl.perplexity - self.dense_ppl,
            accuracy_pct: 100.0 * accuracy,
            measured_density: ppl.mean_mlp_density,
        })
    }

    /// Convenience: prepare + measure quality.
    ///
    /// # Errors
    ///
    /// See [`Workbench::prepare`] and [`Workbench::quality_of`].
    pub fn quality(&mut self, method: MethodKind, target_density: f32) -> Result<QualityPoint> {
        let mut prepared = self.prepare(method, target_density)?;
        self.quality_of(&mut prepared)
    }

    /// Generates `n_tokens` of text with the prepared method and records the
    /// per-token weight accesses, returning the hardware layout and trace
    /// ready for simulation.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn access_trace(
        &self,
        prepared: &mut PreparedMethod,
        n_tokens: usize,
        bits_per_weight: f64,
    ) -> Result<(ModelLayout, AccessTrace)> {
        prepared.strategy.reset();
        let mut builder = TraceBuilder::new();
        let mut state = prepared.model.new_decode_state();
        // one reused scratch for the whole trace run (the allocation-free
        // decode hot path; see `lm::scratch`)
        let mut scratch = lm::DecodeScratch::for_model(&prepared.model);
        let prompt: Vec<u32> = self.eval_seqs[0].iter().take(4).copied().collect();
        let mut rng = tensor::init::rng(0x7a11);
        for &t in &prompt {
            prepared.model.forward_token_into(
                t,
                &mut state,
                prepared.strategy.as_mut(),
                &mut scratch,
            )?;
            builder.push_token_scratch(&scratch.accesses);
        }
        let budget = n_tokens.min(self.config.max_seq_len.saturating_sub(prompt.len() + 1));
        for _ in 0..budget {
            let next = lm::model::sample_from_logits(&scratch.logits, 1.0, &mut rng)?;
            prepared.model.forward_token_into(
                next,
                &mut state,
                prepared.strategy.as_mut(),
                &mut scratch,
            )?;
            builder.push_token_scratch(&scratch.accesses);
        }
        let example = builder
            .example_record()
            .cloned()
            .unwrap_or_else(lm::MlpAccessRecord::dense);
        let layout = layout_for_method(&self.config, &example, bits_per_weight, prepared.overhead);
        Ok((layout, builder.into_trace()))
    }

    /// Simulates the throughput of a method at a target density on a device.
    ///
    /// All models are treated as INT4 (4 bits per weight), matching the
    /// Table 2 setup; DIP-CA uses γ = 0.2, the paper's default.
    ///
    /// # Errors
    ///
    /// Propagates preparation, tracing and simulation errors.
    pub fn throughput(
        &mut self,
        method: MethodKind,
        target_density: f32,
        device: &DeviceConfig,
        policy: EvictionPolicy,
    ) -> Result<SimReport> {
        let bits = 4.0;
        let mut prepared = match method {
            MethodKind::DipCacheAware => self.prepare_dip_ca(target_density, 0.2, device, bits)?,
            other => self.prepare(other, target_density)?,
        };
        let (layout, trace) = self.access_trace(&mut prepared, self.scale.sim_tokens(), bits)?;
        Ok(hwsim::simulate(&layout, device, policy, &trace)?)
    }

    /// The device used by the Table 2 setup: an Apple-A18-class part whose
    /// DRAM budget fits roughly 55 % of the INT4 model.
    pub fn table2_device(&self) -> DeviceConfig {
        let example = lm::MlpAccessRecord::dense();
        let layout = layout_for_method(&self.config, &example, 4.0, StaticOverhead::default());
        let dram = (layout.total_bytes() as f64 * 0.55) as u64;
        DeviceConfig::apple_a18(4.0).with_dram_bytes(dram.max(layout.static_bytes + 1024))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workbench() -> Workbench {
        Workbench::new(&ModelConfig::tiny(), Scale::Smoke, 3).unwrap()
    }

    #[test]
    fn construction_populates_baselines() {
        let wb = workbench();
        assert!(wb.dense_ppl.is_finite() && wb.dense_ppl >= 1.0);
        assert!((wb.dense_accuracy - 1.0).abs() < 1e-9);
        assert_eq!(wb.eval_seqs.len(), Scale::Smoke.eval_sequences());
        assert_eq!(wb.task_suite.tasks.len(), 5);
        assert_eq!(wb.calib_trace.n_layers(), wb.config.n_layers);
    }

    #[test]
    fn dense_quality_matches_baseline() {
        let mut wb = workbench();
        let q = wb.quality(MethodKind::Dense, 1.0).unwrap();
        assert!((q.perplexity - wb.dense_ppl).abs() < 1e-9);
        assert!((q.accuracy_pct - 100.0).abs() < 1e-9);
        assert!((q.measured_density - 1.0).abs() < 1e-9);
        assert!(q.ppl_delta.abs() < 1e-9);
    }

    #[test]
    fn dynamic_methods_run_at_half_density() {
        let mut wb = workbench();
        for method in [
            MethodKind::GluOracle,
            MethodKind::GatePruning,
            MethodKind::UpPruning,
            MethodKind::Cats,
            MethodKind::Dip,
        ] {
            let q = wb.quality(method, 0.5).unwrap();
            assert!(
                (q.measured_density - 0.5).abs() < 0.06,
                "{method}: measured density {}",
                q.measured_density
            );
            assert!(q.perplexity.is_finite());
            assert!(q.accuracy_pct >= 0.0 && q.accuracy_pct <= 100.0);
        }
    }

    #[test]
    fn unsupported_combinations_are_reported() {
        let mut wb = workbench();
        let err = wb.quality(MethodKind::GluPruning, 0.5).unwrap_err();
        assert!(err.is_unsupported());
        let err = wb.quality(MethodKind::SparseGpt2of4, 0.8).unwrap_err();
        assert!(err.is_unsupported());
        let err = match wb.prepare(MethodKind::DipCacheAware, 0.5) {
            Err(e) => e,
            Ok(_) => panic!("DIP-CA without a device must be rejected"),
        };
        assert!(err.is_unsupported());
    }

    #[test]
    fn static_pruning_and_dejavu_prepare_and_evaluate() {
        let mut wb = workbench();
        let q = wb.quality(MethodKind::SparseGptUnstructured, 0.5).unwrap();
        // static pruning loads every (stored) weight, so measured density is 1
        assert!((q.measured_density - 1.0).abs() < 1e-9);
        let q = wb.quality(MethodKind::DejaVu, 0.5).unwrap();
        assert!((q.measured_density - 0.5).abs() < 0.06);
        // predictors add static overhead
        let prepared = wb.prepare(MethodKind::DejaVu, 0.5).unwrap();
        assert!(prepared.overhead.bytes > 0);
    }

    #[test]
    fn throughput_simulation_prefers_sparsity_under_tight_dram() {
        let mut wb = workbench();
        let device = wb.table2_device();
        let dense = wb
            .throughput(MethodKind::Dense, 1.0, &device, EvictionPolicy::Lfu)
            .unwrap();
        let dip = wb
            .throughput(MethodKind::Dip, 0.5, &device, EvictionPolicy::Lfu)
            .unwrap();
        let dip_ca = wb
            .throughput(MethodKind::DipCacheAware, 0.5, &device, EvictionPolicy::Lfu)
            .unwrap();
        assert!(dip.throughput_tps > dense.throughput_tps);
        assert!(dip_ca.hit_rate >= dip.hit_rate * 0.95);
        assert!(dip_ca.throughput_tps > dense.throughput_tps);
        assert!(dense.mean_density > dip.mean_density);
    }

    #[test]
    fn lora_variants_reuse_cached_models() {
        let mut wb = workbench();
        let a = wb.quality(MethodKind::DipLora, 0.6).unwrap();
        let b = wb.quality(MethodKind::DipLora, 0.6).unwrap();
        assert_eq!(a, b);
        assert_eq!(wb.lora_dip.len(), 1);
        let c = wb.quality(MethodKind::CatsLora, 0.6).unwrap();
        assert!(c.perplexity.is_finite());
        assert_eq!(wb.lora_cats.len(), 1);
    }
}
