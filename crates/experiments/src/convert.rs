//! Conversion between the model-side access records (`lm::MlpAccessRecord`)
//! and the hardware simulator's trace/layout types.
//!
//! The caching granularity depends on the slicing axis a method uses for each
//! matrix (input columns for DIP, output rows / neurons for DejaVu-style
//! methods), so the hardware [`ModelLayout`] is derived from an example
//! access record of the method being simulated.

use hwsim::{AccessTrace, LinearLayout, MlpBlockLayout, ModelLayout, TokenAccess};
use lm::{MatrixAccess, MlpAccessRecord, ModelConfig};

/// Per-method static memory overhead (bytes) that must be pinned in DRAM in
/// addition to attention/embedding/norm weights and the KV cache
/// (e.g. DejaVu predictors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StaticOverhead {
    /// Extra bytes pinned in DRAM (predictors, threshold tables, …).
    pub bytes: u64,
}

/// Bytes of the statically pinned portion of the model: everything except
/// MLP weights, at the given bit-width, plus the KV cache and per-method
/// overhead.
pub fn static_bytes(config: &ModelConfig, bits_per_weight: f64, overhead: StaticOverhead) -> u64 {
    let static_params = (config.total_params() - config.total_mlp_params()) as f64;
    (static_params * bits_per_weight / 8.0 + config.kv_cache_bytes()).ceil() as u64 + overhead.bytes
}

fn linear_layout(
    access: &MatrixAccess,
    in_dim: usize,
    out_dim: usize,
    bits_per_weight: f64,
) -> LinearLayout {
    serve::layout::linear_layout_for_axis(access.axis, in_dim, out_dim, bits_per_weight)
}

/// Builds the hardware memory layout for a model as accessed by a particular
/// method (described by one example access record).
pub fn layout_for_method(
    config: &ModelConfig,
    example: &MlpAccessRecord,
    bits_per_weight: f64,
    overhead: StaticOverhead,
) -> ModelLayout {
    let d_model = config.d_model;
    let d_ff = config.d_ff;
    let block = MlpBlockLayout {
        up: linear_layout(&example.up, d_model, d_ff, bits_per_weight),
        gate: linear_layout(&example.gate, d_model, d_ff, bits_per_weight),
        down: linear_layout(&example.down, d_ff, d_model, bits_per_weight),
    };
    ModelLayout {
        name: config.name.clone(),
        bits_per_weight,
        static_bytes: static_bytes(config, bits_per_weight, overhead),
        blocks: vec![block; config.n_layers],
    }
}

/// Converts one token's per-layer access records into a simulator token entry
/// (delegates to the serving layer's conversion so the two stay identical).
pub fn to_token_access(records: &[MlpAccessRecord]) -> TokenAccess {
    serve::layout::to_token_access(records)
}

/// Accumulates per-token access records into a simulator trace.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    trace: AccessTrace,
    example: Option<MlpAccessRecord>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Adds one generated token's access records.
    pub fn push_token(&mut self, records: &[MlpAccessRecord]) {
        if self.example.is_none() {
            self.example = records.first().cloned();
        }
        self.trace.push(to_token_access(records));
    }

    /// Adds one generated token's access records straight from the decode
    /// scratch (the trace still owns its indices, so this allocates for the
    /// trace only).
    pub fn push_token_scratch(&mut self, accesses: &[lm::MlpAccessScratch]) {
        if self.example.is_none() {
            self.example = accesses.first().map(lm::MlpAccessScratch::to_record);
        }
        self.trace
            .push(serve::layout::to_token_access_scratch(accesses));
    }

    /// The example record used to derive the layout (None if no token was pushed).
    pub fn example_record(&self) -> Option<&MlpAccessRecord> {
        self.example.as_ref()
    }

    /// Finishes the builder, returning the trace.
    pub fn into_trace(self) -> AccessTrace {
        self.trace
    }

    /// Number of tokens accumulated.
    pub fn n_tokens(&self) -> usize {
        self.trace.n_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dip_record(d_model: usize, d_ff: usize) -> MlpAccessRecord {
        MlpAccessRecord {
            up: MatrixAccess::input((0..d_model / 2).collect()),
            gate: MatrixAccess::input((0..d_model / 2).collect()),
            down: MatrixAccess::input((0..d_ff / 2).collect()),
        }
    }

    fn dejavu_record(d_ff: usize) -> MlpAccessRecord {
        MlpAccessRecord {
            up: MatrixAccess::output((0..d_ff / 2).collect()),
            gate: MatrixAccess::output((0..d_ff / 2).collect()),
            down: MatrixAccess::input((0..d_ff / 2).collect()),
        }
    }

    #[test]
    fn layout_axis_follows_the_access_record() {
        let config = ModelConfig::tiny();
        let dip_layout = layout_for_method(
            &config,
            &dip_record(config.d_model, config.d_ff),
            4.0,
            StaticOverhead::default(),
        );
        assert_eq!(dip_layout.blocks[0].up.n_columns, config.d_model);
        let dv_layout = layout_for_method(
            &config,
            &dejavu_record(config.d_ff),
            4.0,
            StaticOverhead::default(),
        );
        assert_eq!(dv_layout.blocks[0].up.n_columns, config.d_ff);
        // total MLP bytes identical regardless of the slicing axis
        assert_eq!(dip_layout.mlp_bytes(), dv_layout.mlp_bytes());
        assert_eq!(dip_layout.n_blocks(), config.n_layers);
    }

    #[test]
    fn static_bytes_include_kv_and_overhead() {
        let config = ModelConfig::tiny();
        let plain = static_bytes(&config, 4.0, StaticOverhead::default());
        let with_predictors = static_bytes(&config, 4.0, StaticOverhead { bytes: 10_000 });
        assert_eq!(with_predictors - plain, 10_000);
        assert!(plain as f64 > config.kv_cache_bytes());
    }

    #[test]
    fn trace_builder_accumulates_tokens() {
        let config = ModelConfig::tiny();
        let mut builder = TraceBuilder::new();
        assert!(builder.example_record().is_none());
        for _ in 0..3 {
            let records: Vec<MlpAccessRecord> = (0..config.n_layers)
                .map(|_| dip_record(config.d_model, config.d_ff))
                .collect();
            builder.push_token(&records);
        }
        assert_eq!(builder.n_tokens(), 3);
        assert!(builder.example_record().is_some());
        let trace = builder.into_trace();
        assert_eq!(trace.n_tokens(), 3);
        assert_eq!(trace.n_blocks(), config.n_layers);
        let layout = layout_for_method(
            &config,
            &dip_record(config.d_model, config.d_ff),
            4.0,
            StaticOverhead::default(),
        );
        let density = trace.mean_density(&layout);
        assert!((density - 0.5).abs() < 0.05, "density {density}");
    }

    #[test]
    fn dense_records_convert_to_all_access() {
        let rec = MlpAccessRecord::dense();
        let token = to_token_access(&[rec]);
        assert_eq!(token.blocks[0].up, hwsim::AccessSet::All);
        assert_eq!(token.blocks[0].down, hwsim::AccessSet::All);
    }
}
