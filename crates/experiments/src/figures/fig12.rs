//! Figures 12/13 (Appendix B.1): optimal allocation of the density budget
//! between the up/gate matrices and the down matrix.
//!
//! A 2-D sweep over (input density, GLU density) produces perplexity-vs-MLP
//! density points; the Pareto-optimal configurations are extracted and a
//! linear model in logit space is fitted, exactly as the paper describes.

use crate::registry;
use crate::report::{self, Figure, Series, Table};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use dip_core::strategies::Dip;
use dip_core::{pareto_front, DensityAllocation};
use lm::eval;

/// Output of the density-allocation study.
#[derive(Debug, Clone)]
pub struct Fig12Output {
    /// Every (mlp density, perplexity) trial, one series for all trials and
    /// one for the Pareto front.
    pub trials: Figure,
    /// The fitted logit-space allocation model.
    pub fitted: DensityAllocation,
    /// Table of the resulting optimal component densities per target density.
    pub allocation_table: Table,
}

/// Runs the density-allocation sweep on the primary model.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run(scale: Scale) -> Result<Fig12Output> {
    let config = registry::primary_model(scale);
    let wb = Workbench::new(&config, scale, registry::model_seed(&config))?;

    let grid: Vec<f32> = match scale {
        Scale::Smoke => vec![0.3, 0.5, 0.7, 0.9],
        _ => vec![0.25, 0.4, 0.55, 0.7, 0.85, 1.0],
    };

    let mut all_points: Vec<(f64, f64)> = Vec::new(); // (mlp density, ppl)
    let mut input_densities: Vec<f64> = Vec::new();
    let mut trials_series = Series::new("trials");
    for &d_in in &grid {
        for &d_glu in &grid {
            let mut dip = Dip::new(d_in, d_glu)?;
            let ppl = eval::perplexity(&wb.model, &mut dip, &wb.eval_seqs)?;
            let mlp_density = f64::from(dip.mlp_density());
            trials_series.push(mlp_density, ppl.perplexity);
            all_points.push((mlp_density, ppl.perplexity));
            input_densities.push(f64::from(d_in));
        }
    }

    let front = pareto_front(&all_points);
    let mut front_series = Series::new("pareto front");
    let mut fit_points = Vec::new();
    for &i in &front {
        front_series.push(all_points[i].0, all_points[i].1);
        fit_points.push((all_points[i].0, input_densities[i]));
    }
    let fitted =
        DensityAllocation::fit(&fit_points).unwrap_or_else(|_| DensityAllocation::balanced());

    let mut trials = Figure::new(
        "Figure 12: perplexity vs MLP density over the (input, GLU) density grid",
        "mlp density",
        "perplexity",
    );
    trials.push_series(trials_series);
    trials.push_series(front_series);

    let mut allocation_table = Table::new(
        "Figure 12: optimal component densities for a target MLP density",
        &["target mlp density", "up/gate density", "down density"],
    );
    for target in [0.3f32, 0.4, 0.5, 0.6, 0.7, 0.8] {
        let (d_in, d_glu) = fitted.split(target)?;
        allocation_table.push_row(vec![
            format!("{target:.2}"),
            format!("{d_in:.3}"),
            format!("{d_glu:.3}"),
        ]);
    }

    report::write_report("fig12.csv", &trials.to_csv());
    report::write_report("fig12.md", &allocation_table.to_markdown());
    Ok(Fig12Output {
        trials,
        fitted,
        allocation_table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_front_is_extracted_and_fit_is_usable() {
        let out = run(Scale::Smoke).unwrap();
        assert_eq!(out.trials.series.len(), 2);
        let trials = &out.trials.series[0];
        let front = &out.trials.series[1];
        assert!(!front.points.is_empty());
        assert!(front.points.len() <= trials.points.len());
        // the fitted allocation splits a budget without violating it
        let (d_in, d_glu) = out.fitted.split(0.5).unwrap();
        let achieved = (2.0 * d_in + d_glu) / 3.0;
        assert!((achieved - 0.5).abs() < 0.05);
        assert_eq!(out.allocation_table.len(), 6);
    }
}
