//! Figure 6: magnitude (oracle) GLU pruning vs predictive GLU pruning,
//! SwiGLU model vs its ReLU-fied counterpart, accuracy as a function of GLU
//! density.

use crate::registry;
use crate::report::{self, Figure, Series};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use dip_core::predictor::{train_predictors, PredictorTrainingConfig};
use dip_core::strategies::{GluOraclePruning, PredictiveGluPruning};
use lm::eval;

/// Output of the Figure 6 reproduction: one accuracy-vs-density figure per
/// model family.
#[derive(Debug, Clone)]
pub struct Fig6Output {
    /// Accuracy curves for the SwiGLU model.
    pub swiglu: Figure,
    /// Accuracy curves for the ReLU-fied model.
    pub relufied: Figure,
}

fn curves_for(wb: &Workbench, scale: Scale, title: &str) -> Result<Figure> {
    let mut figure = Figure::new(title, "glu density", "accuracy %");
    let cfg = PredictorTrainingConfig {
        hidden: (wb.config.d_model / 2).max(16),
        epochs: scale.predictor_epochs(),
        ..PredictorTrainingConfig::default()
    };
    let predictors = train_predictors(&wb.model, &wb.calib_trace, &cfg)?;

    let mut dense_series = Series::new("dense");
    dense_series.push(1.0, 100.0 * wb.dense_accuracy);
    figure.push_series(dense_series);

    let mut oracle_series = Series::new("glu-pruning");
    let mut predictive_series = Series::new("glu-predictive");
    for &density in &scale.density_sweep() {
        let mut oracle = GluOraclePruning::new(density).map_err(crate::ExpError::from)?;
        let acc = eval::suite_accuracy(&wb.model, &mut oracle, &wb.task_suite)?;
        oracle_series.push(f64::from(density), 100.0 * acc);

        let mut predictive = PredictiveGluPruning::new(predictors.clone(), density)
            .map_err(crate::ExpError::from)?;
        let acc = eval::suite_accuracy(&wb.model, &mut predictive, &wb.task_suite)?;
        predictive_series.push(f64::from(density), 100.0 * acc);
    }
    figure.push_series(oracle_series);
    figure.push_series(predictive_series);
    Ok(figure)
}

/// Runs the Figure 6 reproduction.
///
/// # Errors
///
/// Propagates training and evaluation errors.
pub fn run(scale: Scale) -> Result<Fig6Output> {
    let config = registry::primary_model(scale);
    let seed = registry::model_seed(&config);
    let swiglu_wb = Workbench::new(&config, scale, seed)?;
    let relufied_wb = Workbench::new(&config.relufied(), scale, seed)?;

    let swiglu = curves_for(
        &swiglu_wb,
        scale,
        "Figure 6: GLU pruning vs predictive (SwiGLU)",
    )?;
    let relufied = curves_for(
        &relufied_wb,
        scale,
        "Figure 6: GLU pruning vs predictive (ReLU-fied)",
    )?;

    report::write_report("fig6_swiglu.csv", &swiglu.to_csv());
    report::write_report("fig6_relufied.csv", &relufied.to_csv());
    Ok(Fig6Output { swiglu, relufied })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_selection_dominates_predictive_selection() {
        let out = run(Scale::Smoke).unwrap();
        for figure in [&out.swiglu, &out.relufied] {
            assert_eq!(figure.series.len(), 3);
            let oracle = &figure.series[1];
            let predictive = &figure.series[2];
            assert_eq!(oracle.points.len(), predictive.points.len());
            // at every density the oracle (true magnitude) selection is at
            // least as accurate as the trained predictor's selection
            let mut oracle_total = 0.0;
            let mut predictive_total = 0.0;
            for ((_, a), (_, b)) in oracle.points.iter().zip(predictive.points.iter()) {
                oracle_total += a;
                predictive_total += b;
            }
            assert!(
                oracle_total >= predictive_total - 1e-6,
                "oracle {oracle_total} vs predictive {predictive_total}"
            );
        }
    }
}
