//! Figure 8 (and Figure 14): Pareto curves of perplexity / accuracy vs MLP
//! density for static and dynamic sparsity methods.

use crate::methods::MethodKind;
use crate::registry;
use crate::report::{self, Figure, Series};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use lm::ModelConfig;

/// Output of the Pareto sweep for one model.
#[derive(Debug, Clone)]
pub struct ParetoOutput {
    /// Model name.
    pub model: String,
    /// Perplexity vs density curves (one series per method, plus `dense`).
    pub perplexity: Figure,
    /// Accuracy vs density curves.
    pub accuracy: Figure,
}

/// Runs the Pareto sweep for one model configuration.
///
/// # Errors
///
/// Propagates preparation and evaluation errors.
pub fn run_for_model(config: &ModelConfig, scale: Scale) -> Result<ParetoOutput> {
    let mut wb = Workbench::new(config, scale, registry::model_seed(config))?;
    let mut ppl_fig = Figure::new(
        format!("Figure 8: perplexity vs MLP density ({})", config.name),
        "mlp density",
        "perplexity",
    );
    let mut acc_fig = Figure::new(
        format!("Figure 8: accuracy vs MLP density ({})", config.name),
        "mlp density",
        "accuracy %",
    );

    let mut dense_ppl = Series::new("dense");
    dense_ppl.push(1.0, wb.dense_ppl);
    ppl_fig.push_series(dense_ppl);
    let mut dense_acc = Series::new("dense");
    dense_acc.push(1.0, 100.0 * wb.dense_accuracy);
    acc_fig.push_series(dense_acc);

    for method in MethodKind::pareto_set() {
        let mut ppl_series = Series::new(method.label());
        let mut acc_series = Series::new(method.label());
        for &density in &scale.density_sweep() {
            match wb.quality(method, density) {
                Ok(q) => {
                    ppl_series.push(f64::from(density), q.perplexity);
                    acc_series.push(f64::from(density), q.accuracy_pct);
                }
                Err(e) if e.is_unsupported() => continue,
                Err(e) => return Err(e),
            }
        }
        ppl_fig.push_series(ppl_series);
        acc_fig.push_series(acc_series);
    }

    let slug = config.name.replace(['-', ' '], "_");
    report::write_report(&format!("fig8_{slug}_ppl.csv"), &ppl_fig.to_csv());
    report::write_report(&format!("fig8_{slug}_acc.csv"), &acc_fig.to_csv());
    Ok(ParetoOutput {
        model: config.name.clone(),
        perplexity: ppl_fig,
        accuracy: acc_fig,
    })
}

/// Runs Figure 8 on the primary model (Phi-3-Medium analogue).
///
/// # Errors
///
/// Propagates errors from [`run_for_model`].
pub fn run(scale: Scale) -> Result<ParetoOutput> {
    run_for_model(&registry::primary_model(scale), scale)
}

/// Runs Figure 14: the same sweep on the remaining evaluation models.
///
/// # Errors
///
/// Propagates errors from [`run_for_model`].
pub fn run_fig14(scale: Scale) -> Result<Vec<ParetoOutput>> {
    registry::evaluation_models(scale)
        .iter()
        .skip(1)
        .map(|config| run_for_model(config, scale))
        .collect()
}

/// Helper used by tests and EXPERIMENTS.md: mean perplexity of a series over
/// its points.
pub fn mean_y(series: &Series) -> f64 {
    if series.points.is_empty() {
        return f64::NAN;
    }
    series.points.iter().map(|(_, y)| y).sum::<f64>() / series.points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dip_dominates_the_baselines_on_average() {
        let out = run(Scale::Smoke).unwrap();
        assert_eq!(
            out.perplexity.series.len(),
            1 + MethodKind::pareto_set().len()
        );
        let find = |name: &str| {
            out.perplexity
                .series
                .iter()
                .find(|s| s.name == name)
                .expect("series exists")
        };
        let dip = mean_y(find("DIP"));
        let cats = mean_y(find("CATS"));
        let sparsegpt = mean_y(find("SparseGPT (unstructured)"));
        // DIP should dominate CATS and static pruning across the sweep.
        // (DejaVu is not compared here: on the synthetic models the "large
        // GLU" set is partially static, which makes predictors stronger than
        // on real SwiGLU checkpoints — see EXPERIMENTS.md.)
        assert!(dip <= cats * 1.05, "DIP {dip} vs CATS {cats}");
        assert!(
            dip <= sparsegpt * 1.05,
            "DIP {dip} vs SparseGPT {sparsegpt}"
        );

        // accuracy figures carry the same series
        assert_eq!(out.accuracy.series.len(), out.perplexity.series.len());
        let acc_dip = mean_y(
            out.accuracy
                .series
                .iter()
                .find(|s| s.name == "DIP")
                .unwrap(),
        );
        assert!(acc_dip > 20.0, "DIP accuracy {acc_dip}");
    }
}
