//! Figure 2: NPU compute, DRAM capacity and LLM size trends.
//!
//! The paper's point is that NPU throughput and model sizes grow
//! exponentially while DRAM capacity grows only linearly. This module ships
//! the public data series used by the figure and fits both growth models,
//! reporting the doubling times / annual increments.

use crate::report::{self, Figure, Series, Table};
use crate::Result;

/// One data point per device / model generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// Release year.
    pub year: f64,
    /// NPU throughput in TOPS.
    pub npu_tops: f64,
    /// DRAM capacity in GB.
    pub dram_gb: f64,
    /// Largest released LLM that year, in billions of parameters.
    pub model_b_params: f64,
}

/// Public trend data (iPhone-class SoCs and the largest LLM per year),
/// matching the sources cited by the paper (Apple silicon / LLM survey).
pub fn trend_data() -> Vec<TrendPoint> {
    vec![
        TrendPoint {
            year: 2017.0,
            npu_tops: 0.6,
            dram_gb: 3.0,
            model_b_params: 0.3,
        },
        TrendPoint {
            year: 2018.0,
            npu_tops: 5.0,
            dram_gb: 4.0,
            model_b_params: 1.5,
        },
        TrendPoint {
            year: 2019.0,
            npu_tops: 6.0,
            dram_gb: 4.0,
            model_b_params: 8.3,
        },
        TrendPoint {
            year: 2020.0,
            npu_tops: 11.0,
            dram_gb: 6.0,
            model_b_params: 175.0,
        },
        TrendPoint {
            year: 2021.0,
            npu_tops: 15.8,
            dram_gb: 6.0,
            model_b_params: 530.0,
        },
        TrendPoint {
            year: 2022.0,
            npu_tops: 17.0,
            dram_gb: 6.0,
            model_b_params: 540.0,
        },
        TrendPoint {
            year: 2023.0,
            npu_tops: 35.0,
            dram_gb: 8.0,
            model_b_params: 1000.0,
        },
        TrendPoint {
            year: 2024.0,
            npu_tops: 38.0,
            dram_gb: 8.0,
            model_b_params: 1800.0,
        },
    ]
}

/// Ordinary least squares fit `y = a + b x`, returning `(a, b)`.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let var_x: f64 = points
        .iter()
        .map(|(x, _)| (x - mean_x) * (x - mean_x))
        .sum();
    let cov: f64 = points
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = if var_x > 0.0 { cov / var_x } else { 0.0 };
    (mean_y - slope * mean_x, slope)
}

/// Exponential fit `y = exp(a + b x)`; returns the annual growth factor
/// `exp(b)`.
pub fn exponential_growth_factor(points: &[(f64, f64)]) -> f64 {
    let log_points: Vec<(f64, f64)> = points.iter().map(|(x, y)| (*x, y.ln())).collect();
    let (_, slope) = linear_fit(&log_points);
    slope.exp()
}

/// Runs the Figure 2 reproduction: the raw series plus the fitted growth
/// rates showing exponential NPU/model growth vs linear DRAM growth.
pub fn run() -> Result<(Figure, Table)> {
    let data = trend_data();
    let mut figure = Figure::new("Figure 2: NPU / DRAM / model-size trends", "year", "value");
    let mut npu = Series::new("npu_tops");
    let mut dram = Series::new("dram_gb");
    let mut models = Series::new("model_b_params");
    for p in &data {
        npu.push(p.year, p.npu_tops);
        dram.push(p.year, p.dram_gb);
        models.push(p.year, p.model_b_params);
    }
    figure.push_series(npu);
    figure.push_series(dram);
    figure.push_series(models);

    let npu_growth = exponential_growth_factor(
        &data
            .iter()
            .map(|p| (p.year, p.npu_tops))
            .collect::<Vec<_>>(),
    );
    let model_growth = exponential_growth_factor(
        &data
            .iter()
            .map(|p| (p.year, p.model_b_params))
            .collect::<Vec<_>>(),
    );
    let (_, dram_slope) = linear_fit(&data.iter().map(|p| (p.year, p.dram_gb)).collect::<Vec<_>>());

    let mut table = Table::new(
        "Figure 2 fits: exponential compute/model growth vs linear DRAM growth",
        &["quantity", "fit", "value"],
    );
    table.push_row(vec![
        "NPU TOPS".into(),
        "annual growth factor".into(),
        format!("{npu_growth:.2}x"),
    ]);
    table.push_row(vec![
        "Largest LLM parameters".into(),
        "annual growth factor".into(),
        format!("{model_growth:.2}x"),
    ]);
    table.push_row(vec![
        "DRAM capacity".into(),
        "annual increment".into(),
        format!("{dram_slope:.2} GB/year"),
    ]);

    report::write_report("fig2.csv", &figure.to_csv());
    report::write_report("fig2.md", &table.to_markdown());
    Ok((figure, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_show_exponential_compute_and_linear_dram() {
        let (figure, table) = run().unwrap();
        assert_eq!(figure.series.len(), 3);
        assert_eq!(table.len(), 3);
        let data = trend_data();
        let npu_growth = exponential_growth_factor(
            &data
                .iter()
                .map(|p| (p.year, p.npu_tops))
                .collect::<Vec<_>>(),
        );
        let model_growth = exponential_growth_factor(
            &data
                .iter()
                .map(|p| (p.year, p.model_b_params))
                .collect::<Vec<_>>(),
        );
        let (_, dram_slope) =
            linear_fit(&data.iter().map(|p| (p.year, p.dram_gb)).collect::<Vec<_>>());
        // NPU compute and model sizes grow by >40%/year; DRAM grows by <1.5 GB/year
        assert!(npu_growth > 1.4, "npu growth {npu_growth}");
        assert!(model_growth > 2.0, "model growth {model_growth}");
        assert!(
            dram_slope > 0.0 && dram_slope < 1.5,
            "dram slope {dram_slope}"
        );
        // model growth clearly outpaces DRAM growth in relative terms
        let dram_growth = exponential_growth_factor(
            &data.iter().map(|p| (p.year, p.dram_gb)).collect::<Vec<_>>(),
        );
        assert!(model_growth > dram_growth * 1.5);
    }

    #[test]
    fn linear_fit_recovers_a_line() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = linear_fit(&points);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }
}
