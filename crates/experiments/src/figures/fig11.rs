//! Figure 11: cache eviction policies (no-cache, LRU, LFU, Belady oracle)
//! vs cache-aware masking — perplexity as a function of achievable
//! throughput.

use crate::methods::MethodKind;
use crate::registry;
use crate::report::{self, Figure, Series};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use hwsim::EvictionPolicy;
use lm::eval;

/// Output of the Figure 11 reproduction.
#[derive(Debug, Clone)]
pub struct Fig11Output {
    /// One (throughput, perplexity) series per cache configuration.
    pub figure: Figure,
}

/// Runs the Figure 11 reproduction on the primary model and its Table-2
/// device (DRAM ≈ half of the INT4 model).
///
/// # Errors
///
/// Propagates evaluation and simulation errors.
pub fn run(scale: Scale) -> Result<Fig11Output> {
    let config = registry::primary_model(scale);
    let mut wb = Workbench::new(&config, scale, registry::model_seed(&config))?;
    let device = wb.table2_device();

    let mut figure = Figure::new(
        format!(
            "Figure 11: cache policies vs cache-aware masking ({})",
            config.name
        ),
        "throughput tok/s",
        "perplexity",
    );

    // Dense reference point (streams everything; LFU cache holds what fits).
    let dense_sim = wb.throughput(MethodKind::Dense, 1.0, &device, EvictionPolicy::Lfu)?;
    let mut dense_series = Series::new("dense");
    dense_series.push(dense_sim.throughput_tps, wb.dense_ppl);
    figure.push_series(dense_series);

    // DIP traces replayed under each eviction policy.
    for policy in [
        EvictionPolicy::None,
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::Belady,
    ] {
        let mut series = Series::new(format!("DIP {policy}"));
        for &density in &scale.density_sweep() {
            let quality = wb.quality(MethodKind::Dip, density)?;
            let sim = wb.throughput(MethodKind::Dip, density, &device, policy)?;
            series.push(sim.throughput_tps, quality.perplexity);
        }
        figure.push_series(series);
    }

    // DIP-CA with a plain LFU cache.
    let mut ca_series = Series::new("DIP-CA (lfu)");
    for &density in &scale.density_sweep() {
        let mut prepared = wb.prepare_dip_ca(density, 0.2, &device, 4.0)?;
        let ppl = eval::perplexity(&prepared.model, prepared.strategy.as_mut(), &wb.eval_seqs)?;
        let (layout, trace) = wb.access_trace(&mut prepared, scale.sim_tokens(), 4.0)?;
        let sim = hwsim::simulate(&layout, &device, EvictionPolicy::Lfu, &trace)?;
        ca_series.push(sim.throughput_tps, ppl.perplexity);
    }
    figure.push_series(ca_series);

    report::write_report("fig11.csv", &figure.to_csv());
    Ok(Fig11Output { figure })
}

/// Best throughput achieved by a series subject to a perplexity ceiling.
pub fn best_throughput_under(series: &Series, max_ppl: f64) -> Option<f64> {
    series
        .points
        .iter()
        .filter(|(_, ppl)| *ppl <= max_ppl)
        .map(|(tps, _)| *tps)
        .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_helps_and_cache_aware_masking_helps_more() {
        let out = run(Scale::Smoke).unwrap();
        let find = |name: &str| {
            out.figure
                .series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        let no_cache = find("DIP no-cache");
        let lfu = find("DIP lfu");
        let belady = find("DIP belady");
        let ca = find("DIP-CA (lfu)");

        // pick a permissive perplexity budget so every series qualifies
        let max_ppl = out
            .figure
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(_, p)| *p))
            .fold(0.0f64, f64::max)
            + 1.0;
        let t_none = best_throughput_under(no_cache, max_ppl).unwrap();
        let t_lfu = best_throughput_under(lfu, max_ppl).unwrap();
        let t_belady = best_throughput_under(belady, max_ppl).unwrap();
        let t_ca = best_throughput_under(ca, max_ppl).unwrap();

        assert!(t_lfu >= t_none, "LFU {t_lfu} should beat no-cache {t_none}");
        assert!(t_belady >= t_lfu * 0.99, "Belady {t_belady} vs LFU {t_lfu}");
        assert!(
            t_ca >= t_lfu,
            "cache-aware masking {t_ca} should beat plain LFU {t_lfu}"
        );
        assert!(best_throughput_under(no_cache, 0.0).is_none());
    }
}
