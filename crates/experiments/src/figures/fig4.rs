//! Figure 4: global vs per-layer vs per-token (top-k) GLU thresholding.

use crate::registry;
use crate::report::{self, Table};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use dip_core::strategies::GluThresholdPruning;
use dip_core::ThresholdStrategy;
use lm::eval;
use tensor::stats::SeriesSummary;

/// Result row for one thresholding strategy.
#[derive(Debug, Clone)]
pub struct ThresholdingResult {
    /// Strategy name.
    pub name: String,
    /// Perplexity at the target average density.
    pub perplexity: f64,
    /// Mean realised GLU density across layers and tokens.
    pub mean_density: f32,
    /// Per-layer density spread (max − min of the per-layer means).
    pub density_spread: f32,
}

/// Output of the Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4Output {
    /// One row per thresholding strategy.
    pub results: Vec<ThresholdingResult>,
    /// Dense-model perplexity for reference.
    pub dense_ppl: f64,
    /// Rendered table.
    pub table: Table,
}

/// Runs the Figure 4 reproduction at 50 % target GLU density.
///
/// # Errors
///
/// Propagates calibration and evaluation errors.
pub fn run(scale: Scale) -> Result<Fig4Output> {
    let config = registry::primary_model(scale);
    let wb = Workbench::new(&config, scale, registry::model_seed(&config))?;
    let density = 0.5;

    let strategies = vec![
        ThresholdStrategy::calibrate_global(&wb.calib_trace, density)?,
        ThresholdStrategy::calibrate_per_layer(&wb.calib_trace, density)?,
        ThresholdStrategy::top_k(density)?,
    ];

    let mut table = Table::new(
        "Figure 4: GLU thresholding strategies at 50% target GLU density",
        &[
            "strategy",
            "perplexity",
            "mean density",
            "per-layer density spread",
        ],
    );
    let mut results = Vec::new();
    for strategy in strategies {
        let name = strategy.name().to_string();
        let mut pruner = GluThresholdPruning::new(strategy);
        let ppl = eval::perplexity(&wb.model, &mut pruner, &wb.eval_seqs)?;

        // per-layer density statistics from the observations the pruner recorded
        let mut per_layer: Vec<Vec<f32>> = vec![Vec::new(); config.n_layers];
        for (layer, d) in pruner.observed_densities() {
            per_layer[*layer].push(*d);
        }
        let layer_means: Vec<f32> = per_layer
            .iter()
            .map(|ds| {
                if ds.is_empty() {
                    0.0
                } else {
                    ds.iter().sum::<f32>() / ds.len() as f32
                }
            })
            .collect();
        let summary = SeriesSummary::from_slice(&layer_means).map_err(lm::LmError::from)?;
        let mean_density = summary.mean;
        let spread = summary.max - summary.min;

        table.push_row(vec![
            name.clone(),
            format!("{:.3}", ppl.perplexity),
            format!("{mean_density:.3}"),
            format!("{spread:.3}"),
        ]);
        results.push(ThresholdingResult {
            name,
            perplexity: ppl.perplexity,
            mean_density,
            density_spread: spread,
        });
    }

    report::write_report("fig4.md", &table.to_markdown());
    report::write_report("fig4.csv", &table.to_csv());
    Ok(Fig4Output {
        results,
        dense_ppl: wb.dense_ppl,
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_token_and_per_layer_beat_global_thresholding() {
        let out = run(Scale::Smoke).unwrap();
        assert_eq!(out.results.len(), 3);
        let global = &out.results[0];
        let per_layer = &out.results[1];
        let top_k = &out.results[2];
        assert_eq!(global.name, "global-threshold");
        assert_eq!(per_layer.name, "per-layer-threshold");
        assert_eq!(top_k.name, "per-token-topk");
        // all strategies realise roughly the target average density
        for r in &out.results {
            assert!(
                (r.mean_density - 0.5).abs() < 0.15,
                "{}: {}",
                r.name,
                r.mean_density
            );
        }
        // per-token top-k keeps a constant number of activations, so its
        // per-layer densities are essentially identical; the global-vs-per-layer
        // spread gap only emerges with many layers (see the Quick-scale run in
        // EXPERIMENTS.md: 0.17 vs 0.02 on the 10-layer model)
        assert!(
            top_k.density_spread < 0.05,
            "top-k spread {}",
            top_k.density_spread
        );
        assert!(global.density_spread + 1e-6 >= top_k.density_spread);
        // and it should not be better than the per-token strategy (Fig. 4's point)
        assert!(global.perplexity >= top_k.perplexity * 0.98);
        assert!(out.table.len() == 3);
        assert!(out.dense_ppl <= top_k.perplexity * 1.02);
    }
}
