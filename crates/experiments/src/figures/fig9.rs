//! Figure 9: memory footprint vs perplexity — quantization (BQ/VQ), static
//! pruning (SparseGPT-style) and their combination with DIP.

use crate::registry;
use crate::report::{self, Figure, Series};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use dip_core::strategies::Dip;
use dip_core::DensityAllocation;
use lm::eval;
use lm::mlp::DenseMlp;
use quant::model_ops::{
    model_memory_bytes, prune_mlp_static, quantize_mlp_blockwise, quantize_mlp_vector,
};
use quant::{BlockwiseQuantizer, PruningStructure, StaticPruner, VectorQuantizer};

const MB: f64 = 1024.0 * 1024.0;

/// Output of the Figure 9 reproduction: one (memory MB, perplexity) series
/// per configuration family.
#[derive(Debug, Clone)]
pub struct Fig9Output {
    /// The memory-vs-perplexity figure.
    pub figure: Figure,
}

/// Runs the Figure 9 reproduction on the primary model.
///
/// # Errors
///
/// Propagates quantization, pruning and evaluation errors.
pub fn run(scale: Scale) -> Result<Fig9Output> {
    let config = registry::primary_model(scale);
    let wb = Workbench::new(&config, scale, registry::model_seed(&config))?;
    let mut figure = Figure::new(
        format!("Figure 9: memory vs perplexity ({})", config.name),
        "memory MB",
        "perplexity",
    );

    // Dense FP16 reference.
    let mut dense = Series::new("dense-fp16");
    dense.push(
        model_memory_bytes(&config, 16.0, 16.0, 1.0, None) / MB,
        wb.dense_ppl,
    );
    figure.push_series(dense);

    // Blockwise quantization at 4/3/2 bits (dense).
    let mut bq_series = Series::new("BQ");
    let mut bq4_model = None;
    for bits in [4u8, 3, 2] {
        let quantizer = BlockwiseQuantizer::new(bits, 32)?;
        let q = quantize_mlp_blockwise(&wb.model, &quantizer);
        let ppl = eval::perplexity(&q, &mut DenseMlp, &wb.eval_seqs)?.perplexity;
        let mem = model_memory_bytes(
            &config,
            16.0,
            quantizer.effective_bits_per_weight(),
            1.0,
            None,
        ) / MB;
        bq_series.push(mem, ppl);
        if bits == 4 {
            bq4_model = Some(q);
        }
    }
    figure.push_series(bq_series);

    // Vector quantization at 3 and 2 bits (dense).
    let mut vq_series = Series::new("VQ");
    let mut vq3_model = None;
    for bits in [3u8, 2] {
        let quantizer = VectorQuantizer::new(bits, 2, 4, 11)?;
        let q = quantize_mlp_vector(&wb.model, &quantizer);
        let ppl = eval::perplexity(&q, &mut DenseMlp, &wb.eval_seqs)?.perplexity;
        let mem = model_memory_bytes(
            &config,
            16.0,
            quantizer.effective_bits_per_weight(config.mlp_params_per_layer()),
            1.0,
            None,
        ) / MB;
        vq_series.push(mem, ppl);
        if bits == 3 {
            vq3_model = Some(q);
        }
    }
    figure.push_series(vq_series);

    // SparseGPT-style unstructured static pruning at FP16 (+1 bit mask).
    let mut sgpt = Series::new("SparseGPT (unstructured)");
    for &density in &scale.density_sweep() {
        let pruner = StaticPruner::magnitude(PruningStructure::Unstructured);
        let pruned = prune_mlp_static(&wb.model, &pruner, density)?;
        let ppl = eval::perplexity(&pruned, &mut DenseMlp, &wb.eval_seqs)?.perplexity;
        let mem = model_memory_bytes(
            &config,
            16.0,
            16.0,
            f64::from(density),
            Some(PruningStructure::Unstructured),
        ) / MB;
        sgpt.push(mem, ppl);
    }
    figure.push_series(sgpt);

    // BQ4 + DIP and VQ3 + DIP across densities.
    let bq4_model = bq4_model.expect("4-bit model built above");
    let vq3_model = vq3_model.expect("3-bit model built above");
    let bq4_bits = BlockwiseQuantizer::new(4, 32)?.effective_bits_per_weight();
    let vq3_bits =
        VectorQuantizer::new(3, 2, 4, 11)?.effective_bits_per_weight(config.mlp_params_per_layer());
    for (name, model, bits) in [
        ("BQ4+DIP", &bq4_model, bq4_bits),
        ("VQ3+DIP", &vq3_model, vq3_bits),
    ] {
        let mut series = Series::new(name);
        for &density in &scale.density_sweep() {
            let mut dip = Dip::for_target_density(density, &DensityAllocation::balanced())?;
            let ppl = eval::perplexity(model, &mut dip, &wb.eval_seqs)?.perplexity;
            let mem = model_memory_bytes(&config, 16.0, bits, f64::from(density), None) / MB;
            series.push(mem, ppl);
        }
        figure.push_series(series);
    }

    report::write_report("fig9.csv", &figure.to_csv());
    Ok(Fig9Output { figure })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dip_on_quantized_models_extends_the_memory_pareto_front() {
        let out = run(Scale::Smoke).unwrap();
        let find = |name: &str| {
            out.figure
                .series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        let bq = find("BQ");
        let bq_dip = find("BQ4+DIP");
        let sgpt = find("SparseGPT (unstructured)");
        // BQ4+DIP reaches lower memory than dense BQ4
        let min_mem = |s: &Series| {
            s.points
                .iter()
                .map(|(x, _)| *x)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(min_mem(bq_dip) < min_mem(bq));
        // every series carries finite perplexities
        for s in &out.figure.series {
            assert!(s.points.iter().all(|(_, y)| y.is_finite()));
        }
        // at comparable memory, BQ4+DIP should not be worse than SparseGPT at FP16
        let best_sgpt = sgpt
            .points
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min);
        let best_bq_dip = bq_dip
            .points
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min);
        assert!(best_bq_dip.is_finite() && best_sgpt.is_finite());
    }
}
