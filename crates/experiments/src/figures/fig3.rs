//! Figure 3: GLU activation magnitude distribution, SwiGLU vs ReLU-fied.

use crate::registry;
use crate::report::{self, Figure, Series, Table};
use crate::scale::Scale;
use crate::Result;
use lm::{build_synthetic, eval, trace};

/// Output of the Figure 3 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3Output {
    /// Histogram series (bin centre → probability mass) for both models.
    pub figure: Figure,
    /// Natural-sparsity summary table.
    pub summary: Table,
    /// Fraction of exactly-zero GLU activations in the SwiGLU model.
    pub swiglu_natural_sparsity: f32,
    /// Fraction of exactly-zero GLU activations in the ReLU-fied model.
    pub relufied_natural_sparsity: f32,
}

/// Runs the Figure 3 reproduction at the given scale.
///
/// # Errors
///
/// Propagates model construction and tracing errors.
pub fn run(scale: Scale) -> Result<Fig3Output> {
    let config = registry::primary_model(scale);
    let seed = registry::model_seed(&config);
    let swiglu = build_synthetic(&config, seed)?;
    let relufied = build_synthetic(&config.relufied(), seed)?;

    let seqs =
        eval::standard_eval_corpus(&swiglu, scale.eval_sequences(), scale.eval_seq_len(), 3)?;
    let trace_swiglu = trace::collect_activation_trace(&swiglu, &seqs)?;
    let trace_relu = trace::collect_activation_trace(&relufied, &seqs)?;

    let layer = config.n_layers - 1;
    let mut figure = Figure::new(
        "Figure 3: GLU activation magnitude distribution (last layer)",
        "magnitude",
        "density",
    );
    let mut summary = Table::new(
        "Figure 3 summary: natural sparsity of GLU activations",
        &["model", "natural sparsity", "p50 |GLU|", "p99 |GLU|"],
    );

    let mut natural = [0.0f32; 2];
    for (i, (name, tr)) in [("swiglu", &trace_swiglu), ("relufied", &trace_relu)]
        .into_iter()
        .enumerate()
    {
        let mags = tr.glu_magnitudes(layer);
        let hi = tensor::stats::quantile(&mags, 0.999).map_err(lm::LmError::from)?;
        let hist = tr.glu_histogram(layer, 0.0, hi.max(1e-3), 40)?;
        let mut series = Series::new(name);
        for (center, density) in hist.bin_centers().iter().zip(hist.densities().iter()) {
            series.push(f64::from(*center), *density);
        }
        figure.push_series(series);

        natural[i] = tr.natural_sparsity(layer);
        summary.push_row(vec![
            name.to_string(),
            format!("{:.3}", natural[i]),
            format!(
                "{:.4}",
                tensor::stats::quantile(&mags, 0.5).map_err(lm::LmError::from)?
            ),
            format!(
                "{:.4}",
                tensor::stats::quantile(&mags, 0.99).map_err(lm::LmError::from)?
            ),
        ]);
    }

    report::write_report("fig3.csv", &figure.to_csv());
    report::write_report("fig3.md", &summary.to_markdown());
    Ok(Fig3Output {
        figure,
        summary,
        swiglu_natural_sparsity: natural[0],
        relufied_natural_sparsity: natural[1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swiglu_has_no_natural_sparsity_relufied_has_plenty() {
        let out = run(Scale::Smoke).unwrap();
        assert!(out.swiglu_natural_sparsity < 0.05);
        assert!(out.relufied_natural_sparsity > 0.5);
        assert_eq!(out.figure.series.len(), 2);
        assert_eq!(out.summary.len(), 2);
        // histogram masses are valid probabilities
        for s in &out.figure.series {
            assert!(s.points.iter().all(|(_, y)| (0.0..=1.0).contains(y)));
        }
    }
}
