//! Figure 10: (left) the normalized GLU activation magnitude distribution
//! across layers; (right) the effect of the DIP-CA penalty γ on throughput
//! and perplexity.

use crate::registry;
use crate::report::{self, Figure, Series, Table};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use hwsim::EvictionPolicy;
use lm::eval;

/// Output of the Figure 10 reproduction.
#[derive(Debug, Clone)]
pub struct Fig10Output {
    /// Normalized |GLU| quantiles per layer (left panel).
    pub distribution: Figure,
    /// γ ablation: perplexity and throughput per γ (right panel).
    pub gamma_ablation: Table,
    /// (γ, perplexity, throughput) tuples for programmatic checks.
    pub gamma_points: Vec<(f32, f64, f64)>,
}

/// Runs the Figure 10 reproduction on the primary model.
///
/// # Errors
///
/// Propagates evaluation and simulation errors.
pub fn run(scale: Scale) -> Result<Fig10Output> {
    let config = registry::primary_model(scale);
    let mut wb = Workbench::new(&config, scale, registry::model_seed(&config))?;

    // Left panel: per-layer normalized |GLU| quantiles.
    let mut distribution = Figure::new(
        "Figure 10 (left): normalized |GLU| quantiles per layer",
        "quantile",
        "normalized magnitude",
    );
    for layer in [0, config.n_layers / 2, config.n_layers - 1] {
        let mags = wb.calib_trace.glu_magnitudes(layer);
        let max = tensor::stats::max(&mags).max(1e-9);
        let mut series = Series::new(format!("layer {layer}"));
        for q in [0.1f32, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0] {
            let v = tensor::stats::quantile(&mags, q).map_err(lm::LmError::from)?;
            series.push(f64::from(q), f64::from(v / max));
        }
        distribution.push_series(series);
    }

    // Right panel: γ ablation at fixed density on the Table-2 device.
    let device = wb.table2_device();
    let density = 0.55;
    let mut gamma_ablation = Table::new(
        "Figure 10 (right): DIP-CA gamma ablation",
        &["gamma", "perplexity", "throughput tok/s", "cache hit rate"],
    );
    let mut gamma_points = Vec::new();
    for &gamma in &[1e-4f32, 1e-2, 0.1, 0.2, 0.3, 0.6, 1.0] {
        let mut prepared = wb.prepare_dip_ca(density, gamma, &device, 4.0)?;
        let ppl = eval::perplexity(&prepared.model, prepared.strategy.as_mut(), &wb.eval_seqs)?;
        let (layout, trace) = wb.access_trace(&mut prepared, scale.sim_tokens(), 4.0)?;
        let sim = hwsim::simulate(&layout, &device, EvictionPolicy::Lfu, &trace)?;
        gamma_ablation.push_row(vec![
            format!("{gamma}"),
            format!("{:.3}", ppl.perplexity),
            format!("{:.3}", sim.throughput_tps),
            format!("{:.3}", sim.hit_rate),
        ]);
        gamma_points.push((gamma, ppl.perplexity, sim.throughput_tps));
    }

    report::write_report("fig10_distribution.csv", &distribution.to_csv());
    report::write_report("fig10_gamma.md", &gamma_ablation.to_markdown());
    Ok(Fig10Output {
        distribution,
        gamma_ablation,
        gamma_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_heavy_tailed_and_gamma_trades_ppl_for_throughput() {
        let out = run(Scale::Smoke).unwrap();
        // left panel: the top percentile dominates the median by a large factor
        for series in &out.distribution.series {
            let median = series
                .points
                .iter()
                .find(|(q, _)| (*q - 0.5).abs() < 1e-6)
                .unwrap()
                .1;
            let top = series.points.last().unwrap().1;
            assert!(
                top >= 10.0 * median.max(1e-9),
                "median {median} vs top {top}"
            );
        }
        // right panel: γ = 1 (plain DIP) has the lowest hit-rate boost, small γ
        // has the highest throughput, and throughput is monotone-ish in 1/γ
        assert!(out.gamma_points.len() >= 5);
        let plain = out.gamma_points.last().unwrap();
        let aggressive = &out.gamma_points[0];
        assert!((plain.0 - 1.0).abs() < 1e-6);
        assert!(
            aggressive.2 >= plain.2,
            "small gamma should not reduce throughput: {} vs {}",
            aggressive.2,
            plain.2
        );
        // perplexities stay finite across the sweep
        assert!(out.gamma_points.iter().all(|(_, p, _)| p.is_finite()));
    }
}
