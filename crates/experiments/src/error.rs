//! Error type for the experiment harness.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ExpError>;

/// Errors produced while preparing or running experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpError {
    /// Error from the language-model substrate.
    Lm(lm::LmError),
    /// Error from the sparsity core.
    Dip(dip_core::DipError),
    /// Error from the quantization baselines.
    Quant(quant::QuantError),
    /// Error from the hardware simulator.
    Sim(hwsim::SimError),
    /// Error from the serving engine.
    Serve(serve::ServeError),
    /// The requested combination is not supported (e.g. a target density a
    /// scheme cannot reach); experiments render these cells as "—".
    Unsupported {
        /// Explanation shown in logs.
        reason: String,
    },
    /// A scenario invariant was violated (conservation of requests, replay
    /// determinism): the run produced results, but they are untrustworthy.
    Invariant {
        /// What was violated, with the offending numbers.
        reason: String,
    },
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::Lm(e) => write!(f, "model error: {e}"),
            ExpError::Dip(e) => write!(f, "sparsity error: {e}"),
            ExpError::Quant(e) => write!(f, "quantization error: {e}"),
            ExpError::Sim(e) => write!(f, "simulator error: {e}"),
            ExpError::Serve(e) => write!(f, "serving error: {e}"),
            ExpError::Unsupported { reason } => write!(f, "unsupported configuration: {reason}"),
            ExpError::Invariant { reason } => write!(f, "invariant violated: {reason}"),
        }
    }
}

impl std::error::Error for ExpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExpError::Lm(e) => Some(e),
            ExpError::Dip(e) => Some(e),
            ExpError::Quant(e) => Some(e),
            ExpError::Sim(e) => Some(e),
            ExpError::Serve(e) => Some(e),
            ExpError::Unsupported { .. } | ExpError::Invariant { .. } => None,
        }
    }
}

impl From<lm::LmError> for ExpError {
    fn from(e: lm::LmError) -> Self {
        ExpError::Lm(e)
    }
}

impl From<dip_core::DipError> for ExpError {
    fn from(e: dip_core::DipError) -> Self {
        ExpError::Dip(e)
    }
}

impl From<quant::QuantError> for ExpError {
    fn from(e: quant::QuantError) -> Self {
        ExpError::Quant(e)
    }
}

impl From<hwsim::SimError> for ExpError {
    fn from(e: hwsim::SimError) -> Self {
        ExpError::Sim(e)
    }
}

impl From<serve::ServeError> for ExpError {
    fn from(e: serve::ServeError) -> Self {
        ExpError::Serve(e)
    }
}

impl ExpError {
    /// Whether the error just means "this cell does not exist" (e.g. GLU
    /// pruning at 50 % density) rather than a real failure.
    pub fn is_unsupported(&self) -> bool {
        matches!(
            self,
            ExpError::Unsupported { .. }
                | ExpError::Dip(dip_core::DipError::InvalidParameter { .. })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExpError = lm::LmError::BadSequence { reason: "x".into() }.into();
        assert!(e.to_string().contains("model error"));
        let e: ExpError = dip_core::DipError::InvalidParameter {
            name: "d",
            reason: "r".into(),
        }
        .into();
        assert!(e.is_unsupported());
        let e = ExpError::Unsupported {
            reason: "glu at 50%".into(),
        };
        assert!(e.is_unsupported());
        assert!(e.to_string().contains("glu at 50%"));
        let e = ExpError::Invariant {
            reason: "arrived 5 != shed 0 + completed 4".into(),
        };
        assert!(e.to_string().contains("invariant violated"));
        assert!(!e.is_unsupported());
        assert!(std::error::Error::source(&e).is_none());
        let e: ExpError = hwsim::SimError::InvalidConfig {
            field: "f",
            reason: "r".into(),
        }
        .into();
        assert!(!e.is_unsupported());
        assert!(std::error::Error::source(&e).is_some());
        let e: ExpError = quant::QuantError::InvalidParameter {
            name: "bits",
            reason: "r".into(),
        }
        .into();
        assert!(e.to_string().contains("quantization"));
        let e: ExpError = serve::ServeError::InvalidConfig {
            field: "slots",
            reason: "r".into(),
        }
        .into();
        assert!(e.to_string().contains("serving"));
        assert!(!e.is_unsupported());
    }
}
