//! Experiment harness reproducing every table and figure of
//! *"Efficient LLM Inference using Dynamic Input Pruning and Cache-Aware
//! Masking"* (MLSys 2025).
//!
//! Each `figures::*` / `tables::*` module regenerates one artefact of the
//! paper's evaluation and has a matching binary (`cargo run -p experiments
//! --release --bin table1 -- quick`). Outputs are printed as markdown and
//! written under `target/experiments/`.
//!
//! The shared infrastructure lives in:
//!
//! * [`scale`] — smoke/quick/full experiment sizes,
//! * [`registry`] — the synthetic stand-ins for the paper's four models,
//! * [`workbench`] — per-model state: calibration, predictors, LoRA models,
//!   quality and throughput measurement,
//! * [`methods`] — the method matrix (DIP, DIP-CA and every baseline),
//! * [`convert`] — bridging model access records to the hardware simulator,
//! * [`report`] — markdown/CSV rendering,
//! * [`serving`] — the multi-user serving scenario built on the `serve`
//!   crate (continuous batching + shared-cache contention).

#![warn(missing_docs)]

pub mod convert;
pub mod error;
pub mod figures;
pub mod methods;
pub mod registry;
pub mod report;
pub mod scale;
pub mod serving;
pub mod tables;
pub mod workbench;

pub use error::{ExpError, Result};
pub use methods::MethodKind;
pub use report::{Figure, Series, Table};
pub use scale::Scale;
pub use serving::ServingScenario;
pub use workbench::{PreparedMethod, QualityPoint, Workbench};
