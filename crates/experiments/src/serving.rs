//! The multi-user serving scenario (beyond the paper's single-stream study).
//!
//! Runs one fleet of concurrent sessions per (strategy, scheduler)
//! configuration through the `serve` engine on a DRAM-constrained device and
//! tabulates aggregate tokens/sec, request-latency percentiles,
//! time-to-first-token, shared-cache hit rate and fairness. This is the
//! many-users counterpart of Table 2: the single-stream throughput ordering
//! (dense < DIP < DIP-CA) must survive multi-tenant cache contention.

use crate::error::Result;
use crate::report::Table;
use crate::scale::Scale;
use lm::{build_synthetic, ModelConfig, SliceAxis};
use serve::{GenRequest, SchedulerPolicy, ServeConfig, ServeEngine, ServeReport, SparsityPolicy};

/// One serving configuration of the comparison matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingCell {
    /// The per-request sparsity strategy.
    pub strategy: SparsityPolicy,
    /// The continuous-batching scheduler.
    pub scheduler: SchedulerPolicy,
}

/// Results of the serving scenario.
#[derive(Debug, Clone)]
pub struct ServingScenario {
    /// The scale the scenario ran at.
    pub scale: Scale,
    /// Per-cell serve reports, in row order.
    pub results: Vec<(ServingCell, ServeReport)>,
    /// Rendered comparison table.
    pub table: Table,
}

/// Number of concurrent sessions at each scale.
pub fn fleet_size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 8,
        Scale::Quick => 12,
        Scale::Full => 16,
    }
}

/// Tokens generated per session at each scale.
pub fn tokens_per_session(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 8,
        Scale::Quick => 16,
        Scale::Full => 32,
    }
}

fn scenario_model(scale: Scale) -> ModelConfig {
    match scale {
        Scale::Smoke => ModelConfig::tiny(),
        Scale::Quick | Scale::Full => ModelConfig::phi3_mini_sim(),
    }
}

/// The comparison matrix: strategies under FIFO, plus DIP-CA under SRF to
/// show the scheduler axis.
pub fn cells() -> Vec<ServingCell> {
    vec![
        ServingCell {
            strategy: SparsityPolicy::Dense,
            scheduler: SchedulerPolicy::Fifo,
        },
        ServingCell {
            strategy: SparsityPolicy::Cats { density: 0.5 },
            scheduler: SchedulerPolicy::Fifo,
        },
        ServingCell {
            strategy: SparsityPolicy::Dip { density: 0.5 },
            scheduler: SchedulerPolicy::Fifo,
        },
        ServingCell {
            strategy: SparsityPolicy::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
            scheduler: SchedulerPolicy::Fifo,
        },
        ServingCell {
            strategy: SparsityPolicy::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
            scheduler: SchedulerPolicy::ShortestRemainingFirst,
        },
    ]
}

/// Builds the fleet of requests for one cell.
pub fn fleet(scale: Scale, strategy: SparsityPolicy) -> Vec<GenRequest> {
    let n = fleet_size(scale);
    let tokens = tokens_per_session(scale);
    (0..n)
        .map(|i| {
            GenRequest::new(
                i as u64,
                vec![(i % 5) as u32 + 1, (i % 11) as u32 + 2],
                tokens,
                strategy,
            )
        })
        .collect()
}

/// Runs the serving comparison at the given scale.
///
/// # Errors
///
/// Propagates engine construction and run errors.
pub fn run(scale: Scale) -> Result<ServingScenario> {
    let config = scenario_model(scale);
    let slots = fleet_size(scale);
    // Per-session context is budgeted to what the fleet actually needs, and
    // the shared column cache gets ~55% of the INT4 MLP weights on top of the
    // pinned static region — the Table 2 constraint, now multi-tenant.
    let kv_budget = (4 + tokens_per_session(scale) + 2).min(config.max_seq_len);
    let layout =
        serve::layout::layout_for_serving(&config, [SliceAxis::Input; 3], 4.0, slots, kv_budget);
    let dram = layout.static_bytes + ((layout.mlp_bytes() as f64) * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);

    let mut table = Table::new(
        format!(
            "Serving: {} concurrent sessions on {} (shared cache ~55% of INT4 MLP weights)",
            slots, config.name
        ),
        &[
            "Strategy",
            "Scheduler",
            "tok/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "TTFT ms",
            "hit rate %",
            "fairness",
        ],
    );

    let mut results = Vec::new();
    for cell in cells() {
        let model = build_synthetic(&config, 13)?;
        let serve_config = ServeConfig::new(device.clone())
            .with_max_concurrent(slots)
            .with_scheduler(cell.scheduler)
            .with_kv_budget(kv_budget);
        let mut engine = ServeEngine::new(model, serve_config)?;
        let report = engine.run(fleet(scale, cell.strategy))?;
        table.push_row(vec![
            cell.strategy.label(),
            cell.scheduler.to_string(),
            format!("{:.2}", report.aggregate_tps),
            format!("{:.2}", 1e3 * report.latency_p50_s),
            format!("{:.2}", 1e3 * report.latency_p95_s),
            format!("{:.2}", 1e3 * report.latency_p99_s),
            format!("{:.2}", 1e3 * report.mean_first_token_s),
            format!("{:.1}", 100.0 * report.cache_hit_rate),
            format!("{:.3}", report.fairness),
        ]);
        results.push((cell, report));
    }

    Ok(ServingScenario {
        scale,
        results,
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_for(
        scenario: &ServingScenario,
        strategy: SparsityPolicy,
        scheduler: SchedulerPolicy,
    ) -> &ServeReport {
        scenario
            .results
            .iter()
            .find(|(c, _)| c.strategy == strategy && c.scheduler == scheduler)
            .map(|(_, r)| r)
            .expect("cell present")
    }

    #[test]
    fn smoke_scenario_reproduces_the_contention_ordering() {
        let scenario = run(Scale::Smoke).unwrap();
        assert_eq!(scenario.results.len(), cells().len());
        assert_eq!(scenario.table.len(), cells().len());

        let dense = report_for(&scenario, SparsityPolicy::Dense, SchedulerPolicy::Fifo);
        let dip = report_for(
            &scenario,
            SparsityPolicy::Dip { density: 0.5 },
            SchedulerPolicy::Fifo,
        );
        let dip_ca = report_for(
            &scenario,
            SparsityPolicy::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
            SchedulerPolicy::Fifo,
        );
        assert!(dip.aggregate_tps > dense.aggregate_tps);
        assert!(dip_ca.aggregate_tps > dense.aggregate_tps);
        assert!(dip_ca.cache_hit_rate > dense.cache_hit_rate);
        assert!(scenario.table.to_markdown().contains("Serving"));
    }
}
