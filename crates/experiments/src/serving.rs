//! The multi-user serving scenario (beyond the paper's single-stream study).
//!
//! Runs one fleet of concurrent sessions per [`ServingCell`] through the
//! `serve` engine on a DRAM-constrained device and tabulates aggregate
//! tokens/sec, request-latency percentiles, time-to-first-token, shared-cache
//! hit rate and fairness. This is the many-users counterpart of Table 2: the
//! single-stream throughput ordering (dense < DIP < DIP-CA) must survive
//! multi-tenant cache contention.
//!
//! Cells are **declarative**: each names a scheduler and a list of
//! [`StrategySpec`]s that the fleet's sessions cycle through (one spec =
//! homogeneous fleet, several = heterogeneous mix). [`run_with_specs`]
//! builds the comparison from an arbitrary spec list — the `serving` binary
//! reads that list from a JSON file, so new workload mixes need no
//! recompilation.
//!
//! The **open-loop** scenario ([`run_open_loop`]) goes further: instead of a
//! closed fleet present at t = 0, a bursty mixed-tier [`Workload`] drives
//! arrivals on the engine's virtual clock, and the matrix compares Dense /
//! DIP / DIP-CA under FIFO vs priority-preemptive scheduling on *identical*
//! traffic — tokens/sec, TTFT/TBT/queue-delay tails, shed counts,
//! preemptions and per-tier SLO attainment. The `serving` binary's
//! `--open-loop [workload.json]` flag drives it from a JSON workload file
//! (see `examples/open_loop_workload.json`).

use crate::error::Result;
use crate::report::Table;
use crate::scale::Scale;
use lm::{build_synthetic, ModelConfig, SliceAxis};
use serve::{
    AdmissionConfig, ArrivalProcess, DegradePolicy, FaultPlan, GenRequest, RequestTemplate,
    RetryPolicy, SchedulerPolicy, ServeConfig, ServeEngine, ServeReport, SloTarget, SlowLaneWindow,
    StrategySpec, Tier, Workload,
};

/// One serving configuration of the comparison matrix: a fleet whose
/// sessions cycle through `strategies`, served under `scheduler`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingCell {
    /// Row label (the spec label for homogeneous fleets).
    pub label: String,
    /// The per-request strategy specs, assigned round-robin to sessions.
    pub strategies: Vec<StrategySpec>,
    /// The continuous-batching scheduler.
    pub scheduler: SchedulerPolicy,
}

impl ServingCell {
    /// A homogeneous fleet: every session runs `spec`.
    pub fn uniform(spec: StrategySpec, scheduler: SchedulerPolicy) -> Self {
        ServingCell {
            label: spec.label(),
            strategies: vec![spec],
            scheduler,
        }
    }

    /// A heterogeneous fleet cycling through `specs`.
    pub fn mix(specs: Vec<StrategySpec>, scheduler: SchedulerPolicy) -> Self {
        let label = format!(
            "mix({})",
            specs
                .iter()
                .map(StrategySpec::method_name)
                .collect::<Vec<_>>()
                .join("+")
        );
        ServingCell {
            label,
            strategies: specs,
            scheduler,
        }
    }
}

/// Results of the serving scenario.
#[derive(Debug, Clone)]
pub struct ServingScenario {
    /// The scale the scenario ran at.
    pub scale: Scale,
    /// Per-cell serve reports, in row order.
    pub results: Vec<(ServingCell, ServeReport)>,
    /// Rendered comparison table.
    pub table: Table,
}

/// Number of concurrent sessions at each scale.
pub fn fleet_size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 8,
        Scale::Quick => 12,
        Scale::Full => 16,
    }
}

/// Tokens generated per session at each scale.
pub fn tokens_per_session(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 8,
        Scale::Quick => 16,
        Scale::Full => 32,
    }
}

fn scenario_model(scale: Scale) -> ModelConfig {
    match scale {
        Scale::Smoke => ModelConfig::tiny(),
        Scale::Quick | Scale::Full => ModelConfig::phi3_mini_sim(),
    }
}

/// The default comparison matrix: strategies under FIFO, plus DIP-CA under
/// SRF to show the scheduler axis.
pub fn cells() -> Vec<ServingCell> {
    let dip_ca = StrategySpec::DipCacheAware {
        density: 0.5,
        gamma: 0.2,
    };
    vec![
        ServingCell::uniform(StrategySpec::Dense, SchedulerPolicy::Fifo),
        ServingCell::uniform(StrategySpec::Cats { density: 0.5 }, SchedulerPolicy::Fifo),
        ServingCell::uniform(StrategySpec::Dip { density: 0.5 }, SchedulerPolicy::Fifo),
        ServingCell::uniform(dip_ca, SchedulerPolicy::Fifo),
        ServingCell::uniform(dip_ca, SchedulerPolicy::ShortestRemainingFirst),
    ]
}

/// Builds the comparison matrix for an arbitrary spec list: one homogeneous
/// FIFO fleet per spec, plus — when the specs' slicing axes are compatible —
/// one heterogeneous fleet mixing them all under shared-cache contention.
pub fn cells_from_specs(specs: &[StrategySpec]) -> Vec<ServingCell> {
    let mut cells: Vec<ServingCell> = specs
        .iter()
        .map(|s| ServingCell::uniform(*s, SchedulerPolicy::Fifo))
        .collect();
    if specs.len() > 1 && dip_core::spec::resolve_axes(specs).is_ok() {
        cells.push(ServingCell::mix(specs.to_vec(), SchedulerPolicy::Fifo));
    }
    cells
}

/// Builds the fleet of requests for one cell (sessions cycle through the
/// cell's strategy specs). An empty spec list yields an empty fleet.
pub fn fleet(scale: Scale, strategies: &[StrategySpec]) -> Vec<GenRequest> {
    if strategies.is_empty() {
        return Vec::new();
    }
    let n = fleet_size(scale);
    let tokens = tokens_per_session(scale);
    (0..n)
        .map(|i| {
            GenRequest::new(
                i as u64,
                vec![(i % 5) as u32 + 1, (i % 11) as u32 + 2],
                tokens,
                strategies[i % strategies.len()],
            )
        })
        .collect()
}

/// Runs the default serving comparison at the given scale (cells fan out
/// across cores; see [`run_cells_parallel`]).
///
/// # Errors
///
/// Propagates engine construction and run errors.
pub fn run(scale: Scale) -> Result<ServingScenario> {
    run_cells_parallel(scale, cells())
}

/// Runs the serving comparison for a declarative spec list (see
/// [`cells_from_specs`]); cells fan out across cores.
///
/// # Errors
///
/// Returns an error for an empty spec list and propagates engine errors.
pub fn run_with_specs(scale: Scale, specs: &[StrategySpec]) -> Result<ServingScenario> {
    if specs.is_empty() {
        return Err(crate::error::ExpError::Unsupported {
            reason: "the serving scenario needs at least one strategy spec".to_string(),
        });
    }
    run_cells_parallel(scale, cells_from_specs(specs))
}

/// Runs the serving comparison over an explicit cell list, one cell after
/// another on the calling thread.
///
/// # Errors
///
/// Returns [`crate::error::ExpError::Unsupported`] for a cell with no
/// strategies and propagates engine construction and run errors.
pub fn run_cells(scale: Scale, cells: Vec<ServingCell>) -> Result<ServingScenario> {
    run_cells_impl(scale, cells, false)
}

/// Runs the serving comparison with one OS thread per cell.
///
/// Cells are *independent* fleet runs (each builds its own model and
/// engine, with its own shared-cache state), so fanning them across cores
/// changes wall-clock time only: the reports are **bitwise identical** to
/// [`run_cells`] — each engine's token interleave is still decided solely
/// by its scheduler, and results are collected in cell order.
///
/// # Errors
///
/// Same as [`run_cells`].
pub fn run_cells_parallel(scale: Scale, cells: Vec<ServingCell>) -> Result<ServingScenario> {
    run_cells_impl(scale, cells, true)
}

fn run_cells_impl(
    scale: Scale,
    cells: Vec<ServingCell>,
    parallel: bool,
) -> Result<ServingScenario> {
    if let Some(cell) = cells.iter().find(|c| c.strategies.is_empty()) {
        return Err(crate::error::ExpError::Unsupported {
            reason: format!("serving cell `{}` names no strategy specs", cell.label),
        });
    }
    let config = scenario_model(scale);
    let slots = fleet_size(scale);
    // Per-session context is budgeted to what the fleet actually needs, and
    // the shared column cache gets ~55% of the INT4 MLP weights on top of the
    // pinned static region — the Table 2 constraint, now multi-tenant. (The
    // DRAM budget is axis-independent: total MLP bytes are identical
    // whichever axis the cache slices along.)
    let kv_budget = (4 + tokens_per_session(scale) + 2).min(config.max_seq_len);
    let device = scenario_device(&config, slots, kv_budget);

    let run_one = |cell: &ServingCell| -> Result<ServeReport> {
        let model = build_synthetic(&config, 13)?;
        let serve_config = ServeConfig::new(device.clone())
            .with_max_concurrent(slots)
            .with_scheduler(cell.scheduler)
            .with_kv_budget(kv_budget);
        let mut engine = ServeEngine::new(model, serve_config)?;
        Ok(engine.run(fleet(scale, &cell.strategies))?)
    };

    let reports: Vec<Result<ServeReport>> = if parallel && cells.len() > 1 {
        let run_one = &run_one;
        std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .iter()
                .map(|cell| scope.spawn(move || run_one(cell)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving cell thread panicked"))
                .collect()
        })
    } else {
        cells.iter().map(run_one).collect()
    };

    let mut table = Table::new(
        format!(
            "Serving: {} concurrent sessions on {} (shared cache ~55% of INT4 MLP weights)",
            slots, config.name
        ),
        &[
            "Strategy",
            "Scheduler",
            "tok/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "TTFT ms",
            "hit rate %",
            "fairness",
        ],
    );

    let mut results = Vec::new();
    for (cell, report) in cells.into_iter().zip(reports) {
        let report = report?;
        table.push_row(vec![
            cell.label.clone(),
            cell.scheduler.to_string(),
            format!("{:.2}", report.aggregate_tps),
            format!("{:.2}", 1e3 * report.latency_p50_s),
            format!("{:.2}", 1e3 * report.latency_p95_s),
            format!("{:.2}", 1e3 * report.latency_p99_s),
            format!("{:.2}", 1e3 * report.mean_first_token_s),
            format!("{:.1}", 100.0 * report.cache_hit_rate),
            format!("{:.3}", report.fairness),
        ]);
        results.push((cell, report));
    }

    Ok(ServingScenario {
        scale,
        results,
        table,
    })
}

/// Results of the open-loop serving scenario.
#[derive(Debug, Clone)]
pub struct OpenLoopScenario {
    /// The scale the scenario ran at.
    pub scale: Scale,
    /// The workload every cell was driven with (identical traffic).
    pub workload: Workload,
    /// Per-cell serve reports, in row order.
    pub results: Vec<(ServingCell, ServeReport)>,
    /// Rendered comparison table.
    pub table: Table,
}

/// The open-loop comparison matrix: each strategy under FIFO and under
/// priority-preemptive scheduling, driven by identical bursty traffic.
pub fn open_loop_cells() -> Vec<ServingCell> {
    let dip_ca = StrategySpec::DipCacheAware {
        density: 0.5,
        gamma: 0.2,
    };
    let mut cells = Vec::new();
    for spec in [
        StrategySpec::Dense,
        StrategySpec::Dip { density: 0.5 },
        dip_ca,
    ] {
        cells.push(ServingCell::uniform(spec, SchedulerPolicy::Fifo));
        cells.push(ServingCell::uniform(
            spec,
            SchedulerPolicy::PriorityPreemptive,
        ));
    }
    cells
}

/// Builds a bursty mixed-tier workload calibrated to the scenario device's
/// deterministic service rate (probed with a closed single-stream run), so
/// the on-windows genuinely oversubscribe the KV slots at every scale.
///
/// # Errors
///
/// Propagates engine construction errors from the calibration probe.
pub fn calibrated_open_loop_workload(scale: Scale) -> Result<Workload> {
    let config = scenario_model(scale);
    let slots = fleet_size(scale);
    let kv_budget = (4 + tokens_per_session(scale) + 2).min(config.max_seq_len);
    let device = scenario_device(&config, slots, kv_budget);
    let mut probe = ServeEngine::new(
        build_synthetic(&config, 13)?,
        ServeConfig::new(device)
            .with_max_concurrent(1)
            .with_kv_budget(kv_budget),
    )?;
    let tokens = (kv_budget - 4).min(30);
    let report = probe.run(vec![GenRequest::new(
        0,
        vec![1, 2],
        tokens,
        StrategySpec::Dense,
    )])?;
    let per_token = report.makespan_s / (tokens + 2) as f64;

    let on_s = 20.0 * slots as f64 * per_token;
    Ok(Workload::new(
        0x0911,
        4.0 * on_s, // two on/off cycles
        ArrivalProcess::OnOff {
            // one ~10-token request per ~2 token-times during bursts
            rate_per_s: 1.0 / (2.0 * per_token),
            on_s,
            off_s: on_s,
        },
        vec![
            RequestTemplate::new((2, 4), (6, 10), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(4.0),
            RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dense)
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(40.0 * per_token, 20.0 * per_token)),
        ],
    ))
}

/// Runs the open-loop comparison with a calibrated bursty workload (see
/// [`calibrated_open_loop_workload`] and [`run_open_loop_with_workload`]).
///
/// # Errors
///
/// Propagates engine construction and run errors.
pub fn run_open_loop(scale: Scale) -> Result<OpenLoopScenario> {
    let workload = calibrated_open_loop_workload(scale)?;
    run_open_loop_with_workload(scale, &workload)
}

/// An instrumented open-loop comparison: the scenario plus, per cell, the
/// detached [`serve::telemetry::EngineTelemetry`] pipeline its engine
/// recorded into (metrics registry, span ring, virtual-time timeline) —
/// ready for export via [`serve::render_prometheus_merged`] /
/// [`serve::render_trace_jsonl`] / [`serve::render_chrome_trace`].
#[derive(Debug)]
pub struct InstrumentedOpenLoop {
    /// The scenario (reports and table), bitwise identical to
    /// [`run_open_loop_with_workload`] on the same inputs.
    pub scenario: OpenLoopScenario,
    /// Per-cell telemetry, in row order, keyed by `"<strategy>/<scheduler>"`
    /// (the same value baked into each registry's `cell` label).
    pub telemetry: Vec<(String, serve::telemetry::EngineTelemetry)>,
}

/// Runs the open-loop comparison for an explicit workload: every cell sees
/// *identical* traffic (same arrivals, shapes, tiers and SLOs — only the
/// per-request strategy is overridden to the cell's specs, round-robin), so
/// fleet pricing of Dense vs DIP vs DIP-CA is apples-to-apples under the
/// same burst pattern. Cells fan out across OS threads; reports are bitwise
/// identical to a sequential run (each cell owns its engine and model).
///
/// # Errors
///
/// Returns [`crate::error::ExpError::Unsupported`] for a cell with no
/// strategies and propagates engine construction and run errors.
pub fn run_open_loop_with_workload(scale: Scale, workload: &Workload) -> Result<OpenLoopScenario> {
    Ok(run_open_loop_impl(scale, workload, false)?.scenario)
}

/// Runs [`run_open_loop_with_workload`] with one telemetry pipeline attached
/// per cell (constant label `cell="<strategy>/<scheduler>"`, timeline
/// windows sized to the workload horizon). Telemetry is write-only, so the
/// scenario's reports are bitwise identical to the uninstrumented run.
///
/// # Errors
///
/// Same as [`run_open_loop_with_workload`].
pub fn run_open_loop_instrumented(
    scale: Scale,
    workload: &Workload,
) -> Result<InstrumentedOpenLoop> {
    run_open_loop_impl(scale, workload, true)
}

fn run_open_loop_impl(
    scale: Scale,
    workload: &Workload,
    instrument: bool,
) -> Result<InstrumentedOpenLoop> {
    let cells = open_loop_cells();
    if let Some(cell) = cells.iter().find(|c| c.strategies.is_empty()) {
        return Err(crate::error::ExpError::Unsupported {
            reason: format!("open-loop cell `{}` names no strategy specs", cell.label),
        });
    }
    let config = scenario_model(scale);
    let slots = fleet_size(scale);
    let kv_budget = (4 + tokens_per_session(scale) + 2).min(config.max_seq_len);
    let device = scenario_device(&config, slots, kv_budget);

    // identical traffic for every cell: generate once, override strategies
    let base_arrivals = workload.generate(config.vocab_size)?;
    // ~24 timeline windows across the workload horizon (runs drain a little
    // past it; the timeline grows on demand for the tail)
    let window_s = (workload.duration_s / 24.0).max(1e-6);
    type CellRun = (ServeReport, Option<serve::telemetry::EngineTelemetry>);
    let run_one = |cell: &ServingCell| -> Result<CellRun> {
        let model = build_synthetic(&config, 13)?;
        let serve_config = ServeConfig::new(device.clone())
            .with_max_concurrent(slots)
            .with_scheduler(cell.scheduler)
            .with_kv_budget(kv_budget)
            .with_admission(AdmissionConfig::default().with_queue_capacity(4096));
        let mut engine = ServeEngine::new(model, serve_config)?;
        if instrument {
            let key = format!("{}/{}", cell.label, cell.scheduler);
            let mut tel = serve::telemetry::EngineTelemetry::new(
                serve::TelemetryConfig::default().with_timeline_window(window_s),
                &[("cell", &key)],
            );
            tel.pipeline_mut()
                .timeline
                .reserve_until(workload.duration_s);
            engine.attach_telemetry(tel);
        }
        let arrivals: Vec<GenRequest> = base_arrivals
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut r = r.clone();
                r.strategy = cell.strategies[i % cell.strategies.len()];
                r
            })
            .collect();
        let report = engine.run_open_loop_requests(arrivals)?;
        Ok((report, engine.take_telemetry()))
    };

    let reports: Vec<Result<CellRun>> = if cells.len() > 1 {
        let run_one = &run_one;
        std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .iter()
                .map(|cell| scope.spawn(move || run_one(cell)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("open-loop cell thread panicked"))
                .collect()
        })
    } else {
        cells.iter().map(run_one).collect()
    };

    let mut table = Table::new(
        format!(
            "Open-loop serving: bursty arrivals onto {} slots on {} (identical traffic per row)",
            slots, config.name
        ),
        &[
            "Strategy",
            "Scheduler",
            "tok/s",
            "TTFT p50 ms",
            "TTFT p95 ms",
            "TTFT p99 ms",
            "TBT p95 ms",
            "queue p95 ms",
            "shed",
            "preempt",
            "SLO% premium",
            "SLO% all",
        ],
    );

    let mut results = Vec::new();
    let mut telemetry = Vec::new();
    for (cell, run) in cells.into_iter().zip(reports) {
        let (report, tel) = run?;
        let ol = report
            .open_loop
            .as_ref()
            .expect("open-loop runs carry open-loop stats");
        let premium = &ol.tiers[Tier::Premium.index()];
        table.push_row(vec![
            cell.label.clone(),
            cell.scheduler.to_string(),
            format!("{:.2}", report.aggregate_tps),
            format!("{:.3}", 1e3 * ol.ttft.p50_s),
            format!("{:.3}", 1e3 * ol.ttft.p95_s),
            format!("{:.3}", 1e3 * ol.ttft.p99_s),
            format!("{:.3}", 1e3 * ol.tbt.p95_s),
            format!("{:.3}", 1e3 * ol.queue_delay.p95_s),
            format!("{}", ol.shed),
            format!("{}", ol.preemptions),
            format!("{:.1}", 100.0 * premium.slo_attainment),
            format!("{:.1}", 100.0 * ol.slo_attainment),
        ]);
        if let Some(tel) = tel {
            telemetry.push((format!("{}/{}", cell.label, cell.scheduler), tel));
        }
        results.push((cell, report));
    }

    Ok(InstrumentedOpenLoop {
        scenario: OpenLoopScenario {
            scale,
            workload: workload.clone(),
            results,
            table,
        },
        telemetry,
    })
}

/// Results of the paged-KV fleet scenario: one fleet served twice on the
/// same fixed page budget — private pages only (`isolated`) vs
/// copy-on-write shared-prefix caching (`shared`).
#[derive(Debug, Clone)]
pub struct PagedFleetScenario {
    /// Fleet size (requests in the closed batch).
    pub sessions: usize,
    /// The fixed KV page budget both runs were capped at.
    pub pool_pages: usize,
    /// The run with paged KV but no prefix sharing.
    pub isolated: ServeReport,
    /// The run with shared-prefix caching enabled.
    pub shared: ServeReport,
    /// TTFT p95 of the isolated run, seconds.
    pub isolated_ttft_p95_s: f64,
    /// TTFT p95 of the shared run, seconds.
    pub shared_ttft_p95_s: f64,
    /// Rendered comparison table.
    pub table: Table,
}

/// Fleet size of the paged-KV scenario at each scale (the `Full` tier is
/// the headline thousands-of-sessions configuration).
pub fn paged_fleet_sessions(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 256,
        Scale::Quick => 1024,
        Scale::Full => 2048,
    }
}

/// Runs one closed fleet of `sessions` assistant sessions — two templates,
/// each opening with its own shared 12-token system prompt — twice over the
/// **same fixed page budget**: paged KV without sharing, then with
/// copy-on-write shared-prefix caching. The budget holds the worst case of
/// only half the engine's slots, so page pressure (not the slot count) is
/// the binding constraint; sharing discounts the whole pages of a mapped
/// prefix at admission and therefore packs roughly twice the sessions into
/// the same pool — higher tokens/sec and a lower TTFT tail on
/// bitwise-identical per-request token streams.
///
/// # Errors
///
/// Propagates engine construction and run errors.
pub fn run_paged_fleet(sessions: usize) -> Result<PagedFleetScenario> {
    let config = ModelConfig::tiny();
    let slots = 64.min(sessions.max(1));
    let page_size = 4usize;
    let prefix_len = 12usize;
    let suffix_len = 2usize;
    let gen_tokens = 6usize;
    let total = prefix_len + suffix_len + gen_tokens;
    // worst-case pages of one session, across all layers
    let per_session = config.n_layers * lm::pages_spanning(total, page_size);
    // budget: only half the slots fit at worst case — memory binds first
    let pool_pages = per_session * (slots / 2).max(1);
    let device = scenario_device(&config, slots, total.min(config.max_seq_len));

    // two assistant templates, each with its own deterministic system prompt
    let prefixes: Vec<Vec<u32>> = (0..2u32)
        .map(|t| {
            (0..prefix_len as u32)
                .map(|i| (t * 31 + i * 7 + 1) % config.vocab_size as u32)
                .collect()
        })
        .collect();
    let fleet = || -> Vec<GenRequest> {
        (0..sessions)
            .map(|i| {
                let template = i % prefixes.len();
                let mut prompt = prefixes[template].clone();
                prompt.extend([(i % 23) as u32 + 1, (i % 17) as u32 + 2]);
                GenRequest::new(i as u64, prompt, gen_tokens, StrategySpec::Dense)
                    .with_shared_prefix(prefix_len)
            })
            .collect()
    };

    let run_one = |sharing: bool| -> Result<ServeReport> {
        let model = build_synthetic(&config, 13)?;
        let mut serve_config = ServeConfig::new(device.clone())
            .with_max_concurrent(slots)
            .with_kv_budget(total.min(config.max_seq_len))
            .with_paged_kv(page_size, pool_pages);
        if sharing {
            serve_config = serve_config.with_prefix_sharing();
        }
        let mut engine = ServeEngine::new(model, serve_config)?;
        Ok(engine.run(fleet())?)
    };
    let isolated = run_one(false)?;
    let shared = run_one(true)?;

    let ttft_p95 = |report: &ServeReport| -> f64 {
        let samples: Vec<f64> = report.requests.iter().map(|r| r.ttft_s).collect();
        serve::percentile(&samples, 0.95)
    };
    let isolated_ttft_p95_s = ttft_p95(&isolated);
    let shared_ttft_p95_s = ttft_p95(&shared);

    let mut table = Table::new(
        format!(
            "Paged-KV fleet: {sessions} sessions onto {slots} slots, {pool_pages}-page budget on {}",
            config.name
        ),
        &[
            "Prefix cache",
            "tok/s",
            "makespan s",
            "TTFT p95 ms",
            "prefill tokens",
            "pages high-water",
            "prefix hits",
            "tokens saved",
        ],
    );
    for (label, report, ttft) in [
        ("off", &isolated, isolated_ttft_p95_s),
        ("shared", &shared, shared_ttft_p95_s),
    ] {
        let paged = report
            .paged_kv
            .as_ref()
            .expect("paged runs carry paged stats");
        table.push_row(vec![
            label.to_string(),
            format!("{:.2}", report.aggregate_tps),
            format!("{:.3}", report.makespan_s),
            format!("{:.3}", 1e3 * ttft),
            format!("{}", report.total_prefill_tokens),
            format!("{}", paged.pages_high_water),
            format!("{}", paged.prefix_hits),
            format!("{}", paged.prefix_tokens_saved),
        ]);
    }

    Ok(PagedFleetScenario {
        sessions,
        pool_pages,
        isolated,
        shared,
        isolated_ttft_p95_s,
        shared_ttft_p95_s,
        table,
    })
}

/// Results of the event-loop stall scenario: one bursty fleet with a
/// long-prompt premium tenant, served by both open-loop engine cores on
/// identical traffic, plus a preempting fleet whose KV spills are priced on
/// the virtual clock.
#[derive(Debug, Clone)]
pub struct EventLoopStallScenario {
    /// Interactive decode sessions competing with the long prompt.
    pub decoders: usize,
    /// Prompt length of the premium tenant that stalls the step loop.
    pub long_prompt_tokens: usize,
    /// Prefill chunk size of the event-driven leg.
    pub prefill_chunk_tokens: usize,
    /// The run under the event-driven core (chunked prefill).
    pub event: ServeReport,
    /// The run under the synchronous step-loop core (monolithic prefill).
    pub step: ServeReport,
    /// Decode TBT p99 of the event-driven leg, seconds.
    pub event_tbt_p99_s: f64,
    /// Decode TBT p99 of the step-loop leg, seconds.
    pub step_tbt_p99_s: f64,
    /// Head-of-line stall ratio: step-loop TBT p99 over event-driven TBT
    /// p99 (higher = chunking removes a bigger stall).
    pub stall_ratio: f64,
    /// Aggregate tok/s of the event leg over the step leg (~1.0: chunking
    /// reorders work, it does not add any).
    pub tps_ratio: f64,
    /// A preempting one-slot fleet under the event core: park/resume KV
    /// swaps priced through the hardware model (non-zero `kv_swap_s`,
    /// spill bytes in the flash totals).
    pub spill: ServeReport,
    /// Rendered comparison table.
    pub table: Table,
}

/// Runs the head-of-line prefill stall comparison: six interactive decode
/// sessions are mid-generation when one premium tenant arrives with a
/// 56-token prompt under priority-preemptive scheduling. The step-loop core
/// serves that prompt as one monolithic chunk — every decoder's
/// time-between-tokens spikes by the whole prefill — while the event-driven
/// core slices it into 8-token chunks and yields a decode round between
/// chunks, bounding the stall near chunk + round. Both legs serve the same
/// tokens, so aggregate tok/s agree; only the *ordering* (and therefore the
/// decode tail) differs. A third leg runs a one-slot preempting fleet on
/// the event core so the report carries virtually-priced KV spill/reload
/// costs (`kv_swap_s`, spill bytes) for the bench gate.
///
/// # Errors
///
/// Propagates engine construction and run errors.
pub fn run_event_loop_stall() -> Result<EventLoopStallScenario> {
    let mut config = ModelConfig::tiny();
    config.max_seq_len = 96; // the long prompt outgrows the test preset
    let decoders = 6usize;
    let decode_tokens = 48usize;
    let long_prompt = 56usize;
    let long_gen = 8usize;
    let chunk = 8usize;
    let slots = decoders + 1;
    let kv_budget = (long_prompt + long_gen).min(config.max_seq_len);
    let device = scenario_device(&config, slots, kv_budget);

    // Probe the decoders alone so the premium arrival lands mid-decode on
    // the deterministic virtual clock (no wall-clock flakiness).
    let decoder_fleet = || -> Vec<GenRequest> {
        (0..decoders)
            .map(|i| {
                GenRequest::new(
                    i as u64,
                    vec![1 + i as u32, 2 + i as u32],
                    decode_tokens,
                    StrategySpec::Dense,
                )
                .with_tier(Tier::Standard)
            })
            .collect()
    };
    let solo_makespan = {
        let model = build_synthetic(&config, 13)?;
        let mut probe = ServeEngine::new(
            model,
            ServeConfig::new(device.clone())
                .with_max_concurrent(slots)
                .with_kv_budget(kv_budget),
        )?;
        probe.run_open_loop_requests(decoder_fleet())?.makespan_s
    };

    let run_one = |core: serve::EngineCore| -> Result<ServeReport> {
        let model = build_synthetic(&config, 13)?;
        let serve_config = ServeConfig::new(device.clone())
            .with_max_concurrent(slots)
            .with_scheduler(SchedulerPolicy::PriorityPreemptive)
            .with_kv_budget(kv_budget)
            .with_engine_core(core)
            .with_prefill_chunk(chunk);
        let mut engine = ServeEngine::new(model, serve_config)?;
        let mut arrivals = decoder_fleet();
        let long_prompt_tokens: Vec<u32> = (0..long_prompt as u32)
            .map(|i| 1 + (i * 5 + 3) % (config.vocab_size as u32 - 1))
            .collect();
        arrivals.push(
            GenRequest::new(
                decoders as u64,
                long_prompt_tokens,
                long_gen,
                StrategySpec::Dense,
            )
            .with_tier(Tier::Premium)
            .at(0.25 * solo_makespan),
        );
        Ok(engine.run_open_loop_requests(arrivals)?)
    };
    let event = run_one(serve::EngineCore::EventDriven)?;
    let step = run_one(serve::EngineCore::StepLoop)?;

    let tbt_p99 = |report: &ServeReport| -> f64 {
        report
            .open_loop
            .as_ref()
            .expect("open-loop runs carry open-loop stats")
            .tbt
            .p99_s
    };
    let event_tbt_p99_s = tbt_p99(&event);
    let step_tbt_p99_s = tbt_p99(&step);
    let stall_ratio = step_tbt_p99_s / event_tbt_p99_s.max(f64::MIN_POSITIVE);
    let tps_ratio = event.aggregate_tps / step.aggregate_tps.max(f64::MIN_POSITIVE);

    // Preempting leg: one slot, a batch job interrupted by premium
    // arrivals — every park/resume is priced through the hardware model.
    let spill = {
        let one_slot_engine = || -> Result<ServeEngine> {
            let model = build_synthetic(&config, 13)?;
            Ok(ServeEngine::new(
                model,
                ServeConfig::new(device.clone())
                    .with_max_concurrent(1)
                    .with_scheduler(SchedulerPolicy::PriorityPreemptive)
                    .with_kv_budget(kv_budget),
            )?)
        };
        let batch_job =
            || GenRequest::new(0, vec![1, 5, 9], 20, StrategySpec::Dense).with_tier(Tier::Batch);
        // probe the batch job alone so the interrupts land mid-generation
        let batch_makespan = one_slot_engine()?
            .run_open_loop_requests(vec![batch_job()])?
            .makespan_s;
        let mut arrivals = vec![batch_job()];
        // second-half fractions: the first prefill tokens run on a cold
        // column cache (several microseconds each on the virtual clock), so
        // earlier interrupts would pile up inside one park window
        for (i, frac) in [0.5, 0.7, 0.9].iter().enumerate() {
            arrivals.push(
                GenRequest::new(1 + i as u64, vec![2 + i as u32], 2, StrategySpec::Dense)
                    .with_tier(Tier::Premium)
                    .at(frac * batch_makespan),
            );
        }
        one_slot_engine()?.run_open_loop_requests(arrivals)?
    };

    let mut table = Table::new(
        format!(
            "Event-loop stall: {decoders} decoders + one {long_prompt}-token premium prompt on {}",
            config.name
        ),
        &[
            "Engine core",
            "tok/s",
            "TBT p99 ms",
            "TTFT p99 ms",
            "makespan s",
        ],
    );
    for (label, report) in [("event-driven", &event), ("step-loop", &step)] {
        let ol = report.open_loop.as_ref().expect("open-loop stats");
        table.push_row(vec![
            label.to_string(),
            format!("{:.2}", report.aggregate_tps),
            format!("{:.3}", 1e3 * ol.tbt.p99_s),
            format!("{:.3}", 1e3 * ol.ttft.p99_s),
            format!("{:.3}", report.makespan_s),
        ]);
    }

    Ok(EventLoopStallScenario {
        decoders,
        long_prompt_tokens: long_prompt,
        prefill_chunk_tokens: chunk,
        event,
        step,
        event_tbt_p99_s,
        step_tbt_p99_s,
        stall_ratio,
        tps_ratio,
        spill,
        table,
    })
}

/// Results of the degrade-vs-shed scenario: the same oversubscribing burst
/// served twice on the same slot count and KV page pool — once where the
/// only pressure valve is admission shedding, once where a
/// [`serve::DegradePolicy`] walks queued-up sessions down the declared
/// fallback chain (dense → dip@0.50 → dip@0.25) instead.
#[derive(Debug, Clone)]
pub struct DegradeVsShedScenario {
    /// KV slots both runs were capped at.
    pub slots: usize,
    /// The KV page pool both runs shared.
    pub pool_pages: usize,
    /// The run without a degrade policy: bursts are absorbed by the queue
    /// and, past its capacity, by shedding.
    pub shed_only: ServeReport,
    /// The run with graceful degradation enabled.
    pub degraded: ServeReport,
    /// Premium-tier SLO attainment of the shed-only run.
    pub shed_premium_slo: f64,
    /// Premium-tier SLO attainment of the degrading run.
    pub degrade_premium_slo: f64,
    /// `degrade_premium_slo - shed_premium_slo` (> 0: degradation buys
    /// premium SLO that pure back-pressure burns).
    pub premium_slo_lift: f64,
    /// Aggregate tok/s of the degrading run over the shed-only run
    /// (~1.0: degradation trades per-session fidelity, not throughput).
    pub tps_ratio: f64,
    /// Rendered comparison table.
    pub table: Table,
}

/// Runs the graceful-degradation headline: bursty dense traffic
/// oversubscribes two KV slots under FIFO scheduling, with a premium tier
/// whose SLO is calibrated to the unqueued service rate. The shed-only
/// engine can only queue (missing premium TTFT targets) and shed; the
/// degrading engine serves the same traffic on the same page pool but walks
/// sessions admitted into a deep queue down the fallback chain, draining
/// the backlog faster — strictly higher premium SLO attainment at aggregate
/// tok/s within a few percent. Both runs are virtual-clock deterministic.
///
/// # Errors
///
/// Propagates engine construction and run errors.
pub fn run_degrade_vs_shed() -> Result<DegradeVsShedScenario> {
    let config = ModelConfig::tiny();
    let slots = 2usize;
    let kv_budget = 24usize.min(config.max_seq_len);
    let page_size = 8usize;
    // both runs share one fixed page pool; with two slots the pool never
    // binds, so the comparison isolates the queue-pressure axis
    let pool_pages = config.n_layers * lm::pages_spanning(kv_budget, page_size) * slots * 4;
    let device = scenario_device(&config, slots, kv_budget);

    // probe the *contended* dense service rate (both slots busy, shared
    // cache thrashing) so the burst load factor and the premium SLO are
    // calibrated against what the engine can actually sustain
    let per_token = {
        let mut probe = ServeEngine::new(
            build_synthetic(&config, 13)?,
            ServeConfig::new(device.clone())
                .with_max_concurrent(slots)
                .with_kv_budget(kv_budget),
        )?;
        let fleet: Vec<GenRequest> = (0..2 * slots)
            .map(|i| GenRequest::new(i as u64, vec![1 + i as u32, 2, 3], 8, StrategySpec::Dense))
            .collect();
        let report = probe.run(fleet)?;
        report.makespan_s / (report.total_prefill_tokens + report.total_generated_tokens) as f64
    };

    // a mean request carries ~9.4 tokens of work (3:1 batch:premium mix);
    // bursts offer 2x the fleet's token rate, and each off-window is twice
    // the burst so the backlog fully drains — both runs serve the whole
    // workload and the queue, not shedding, is the dominant premium cost
    let mean_request_tokens = 9.4;
    let on_s = 50.0 * per_token;
    let off_s = 2.0 * on_s;
    let workload = Workload::new(
        0x0d1e,
        4.0 * (on_s + off_s), // four burst/drain cycles
        ArrivalProcess::OnOff {
            rate_per_s: 2.0 / (mean_request_tokens * per_token),
            on_s,
            off_s,
        },
        vec![
            RequestTemplate::new((2, 4), (6, 10), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(3.0),
            RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dense)
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(20.0 * per_token, 20.0 * per_token)),
        ],
    );

    let run_one = |degrade: Option<DegradePolicy>| -> Result<ServeReport> {
        let model = build_synthetic(&config, 13)?;
        let mut serve_config = ServeConfig::new(device.clone())
            .with_max_concurrent(slots)
            .with_scheduler(SchedulerPolicy::Fifo)
            .with_kv_budget(kv_budget)
            .with_paged_kv(page_size, pool_pages)
            .with_admission(AdmissionConfig::default().with_queue_capacity(16));
        if let Some(policy) = degrade {
            serve_config = serve_config.with_degrade(policy);
        }
        let mut engine = ServeEngine::new(model, serve_config)?;
        Ok(engine.run_open_loop(&workload)?)
    };
    let shed_only = run_one(None)?;
    let degraded = run_one(Some(DegradePolicy {
        queue_depth_threshold: 2,
        max_steps: 2,
    }))?;

    let premium_slo = |report: &ServeReport| -> f64 {
        report.open_loop.as_ref().expect("open-loop stats").tiers[Tier::Premium.index()]
            .slo_attainment
    };
    let shed_premium_slo = premium_slo(&shed_only);
    let degrade_premium_slo = premium_slo(&degraded);
    let premium_slo_lift = degrade_premium_slo - shed_premium_slo;
    let tps_ratio = degraded.aggregate_tps / shed_only.aggregate_tps.max(f64::MIN_POSITIVE);

    let mut table = Table::new(
        format!(
            "Degrade vs shed: bursty dense traffic onto {slots} slots, {pool_pages}-page pool on {}",
            config.name
        ),
        &[
            "Pressure valve",
            "tok/s",
            "arrived",
            "shed",
            "degraded",
            "TTFT p95 ms",
            "SLO% premium",
            "SLO% all",
        ],
    );
    for (label, report) in [("shed only", &shed_only), ("degrade", &degraded)] {
        let ol = report.open_loop.as_ref().expect("open-loop stats");
        table.push_row(vec![
            label.to_string(),
            format!("{:.2}", report.aggregate_tps),
            format!("{}", ol.arrived),
            format!("{}", ol.shed),
            format!("{}", ol.degraded_sessions),
            format!("{:.3}", 1e3 * ol.ttft.p95_s),
            format!(
                "{:.1}",
                100.0 * ol.tiers[Tier::Premium.index()].slo_attainment
            ),
            format!("{:.1}", 100.0 * ol.slo_attainment),
        ]);
    }

    Ok(DegradeVsShedScenario {
        slots,
        pool_pages,
        shed_only,
        degraded,
        shed_premium_slo,
        degrade_premium_slo,
        premium_slo_lift,
        tps_ratio,
        table,
    })
}

/// Results of the chaos scenario: the same mixed-tier workload served clean
/// and under a seeded fault plan, with the chaos leg replayed to prove
/// determinism. Both legs are conservation-checked before the scenario
/// returns.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// The fault-plan seed.
    pub seed: u64,
    /// The fault-free run of the same workload and engine config.
    pub clean: ServeReport,
    /// The run under the seeded fault plan (cancels, deadlines, retryable
    /// aborts, KV page loss, a slow lane), with retry and degrade policies
    /// armed.
    pub chaos: ServeReport,
    /// Rendered comparison table.
    pub table: Table,
}

/// The chaos workload: mixed tiers where premium requests declare a hard
/// deadline and batch requests a client patience cap — both on the
/// microsecond timescale the tiny-model virtual clock serves tokens at.
pub fn chaos_workload() -> Workload {
    Workload::new(
        0xfeed,
        0.04,
        ArrivalProcess::OnOff {
            rate_per_s: 900.0,
            on_s: 0.004,
            off_s: 0.006,
        },
        vec![
            RequestTemplate::new((4, 8), (8, 16), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(2.0)
                .with_cancel_after_tokens(5),
            RequestTemplate::new((2, 6), (8, 12), StrategySpec::Dip { density: 0.5 }),
            RequestTemplate::new((2, 4), (6, 10), StrategySpec::Dense)
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(0.05, 0.02))
                .with_deadline_ms(0.2),
        ],
    )
}

/// The chaos fault plan: every fault type armed, with windows a few
/// hundred microseconds wide so they straddle whole session lifetimes on
/// the virtual clock.
pub fn chaos_fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        cancel_rate: 0.25,
        cancel_window_s: 0.0002,
        deadline_rate: 0.2,
        deadline_window_s: 0.00015,
        abort_rate: 0.25,
        abort_window_s: 0.0002,
        page_loss_every_s: 0.0002,
        page_loss_horizon_s: 0.05,
        slow_lane: Some(SlowLaneWindow {
            start_s: 0.002,
            duration_s: 0.01,
            factor: 3.0,
        }),
    }
}

/// Returns a description of any request-conservation violation in an
/// open-loop report: every arrival must end exactly one way
/// (`arrived = shed + completed + cancelled + deadline_expired + failed`),
/// globally and per tier.
pub fn conservation_violation(report: &ServeReport) -> Option<String> {
    let ol = report.open_loop.as_ref()?;
    let ended = ol.shed + ol.completed + ol.cancelled + ol.deadline_expired + ol.failed;
    if ol.arrived != ended {
        return Some(format!(
            "arrived {} != shed {} + completed {} + cancelled {} + expired {} + failed {}",
            ol.arrived, ol.shed, ol.completed, ol.cancelled, ol.deadline_expired, ol.failed
        ));
    }
    for tier in &ol.tiers {
        let ended = tier.shed + tier.completed + tier.cancelled + tier.expired + tier.failed;
        if tier.arrived != ended {
            return Some(format!(
                "tier {}: arrived {} != {} requests ending",
                tier.tier, tier.arrived, ended
            ));
        }
    }
    None
}

/// Runs the chaos scenario: the mixed-tier [`chaos_workload`] served clean
/// and under [`chaos_fault_plan`] with bounded retry and graceful
/// degradation armed, on a preemptive four-slot paged-KV engine. The chaos
/// leg is run twice and the two reports must match bitwise; both legs must
/// conserve every arrival. Violations return
/// [`crate::error::ExpError::Invariant`] rather than a report that cannot
/// be trusted.
///
/// # Errors
///
/// Propagates engine errors; returns [`crate::error::ExpError::Invariant`]
/// on a conservation or replay-determinism violation.
pub fn run_chaos(seed: u64) -> Result<ChaosScenario> {
    let config = ModelConfig::tiny();
    let slots = 4usize;
    let device = scenario_device(&config, slots, config.max_seq_len);
    let workload = chaos_workload();

    let run_one = |plan: Option<FaultPlan>| -> Result<ServeReport> {
        let model = build_synthetic(&config, 13)?;
        let mut serve_config = ServeConfig::new(device.clone())
            .with_max_concurrent(slots)
            .with_scheduler(SchedulerPolicy::PriorityPreemptive)
            .with_paged_kv(8, 4096)
            .with_admission(
                AdmissionConfig::default()
                    .with_queue_capacity(16)
                    .with_rate_limit(700.0, 6.0),
            )
            .with_retry(RetryPolicy {
                max_attempts: 3,
                backoff_base_s: 0.002,
            })
            .with_degrade(DegradePolicy {
                queue_depth_threshold: 2,
                max_steps: 2,
            });
        if let Some(plan) = plan {
            serve_config = serve_config.with_fault_plan(plan);
        }
        let mut engine = ServeEngine::new(model, serve_config)?;
        Ok(engine.run_open_loop(&workload)?)
    };

    let clean = run_one(None)?;
    let chaos = run_one(Some(chaos_fault_plan(seed)))?;
    let replay = run_one(Some(chaos_fault_plan(seed)))?;
    if chaos != replay {
        return Err(crate::error::ExpError::Invariant {
            reason: format!("chaos run with seed {seed} diverged from its replay"),
        });
    }
    for (label, report) in [("clean", &clean), ("chaos", &chaos)] {
        if let Some(violation) = conservation_violation(report) {
            return Err(crate::error::ExpError::Invariant {
                reason: format!("{label} leg leaks requests: {violation}"),
            });
        }
    }

    let mut table = Table::new(
        format!(
            "Chaos: seeded fault plan (seed {seed}) on {slots} preemptive slots on {}",
            config.name
        ),
        &[
            "Leg",
            "tok/s",
            "arrived",
            "completed",
            "cancelled",
            "expired",
            "failed",
            "retries",
            "pages lost",
            "refill tok",
            "degraded",
            "shed",
        ],
    );
    for (label, report) in [("clean", &clean), ("chaos", &chaos)] {
        let ol = report.open_loop.as_ref().expect("open-loop stats");
        table.push_row(vec![
            label.to_string(),
            format!("{:.2}", report.aggregate_tps),
            format!("{}", ol.arrived),
            format!("{}", ol.completed),
            format!("{}", ol.cancelled),
            format!("{}", ol.deadline_expired),
            format!("{}", ol.failed),
            format!("{}", ol.retries),
            format!("{}", ol.kv_pages_lost),
            format!("{}", ol.kv_refill_tokens),
            format!("{}", ol.degraded_sessions),
            format!("{}", ol.shed),
        ]);
    }

    Ok(ChaosScenario {
        seed,
        clean,
        chaos,
        table,
    })
}

/// The DRAM-constrained scenario device: statics + per-slot KV budgets
/// pinned, ~55% of the INT4 MLP weights cacheable (shared with the
/// closed-batch scenario).
fn scenario_device(config: &ModelConfig, slots: usize, kv_budget: usize) -> hwsim::DeviceConfig {
    let layout =
        serve::layout::layout_for_serving(config, [SliceAxis::Input; 3], 4.0, slots, kv_budget);
    let dram = layout.static_bytes + ((layout.mlp_bytes() as f64) * 0.55) as u64;
    hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_for(
        scenario: &ServingScenario,
        spec: StrategySpec,
        scheduler: SchedulerPolicy,
    ) -> &ServeReport {
        scenario
            .results
            .iter()
            .find(|(c, _)| c.strategies == vec![spec] && c.scheduler == scheduler)
            .map(|(_, r)| r)
            .expect("cell present")
    }

    #[test]
    fn smoke_scenario_reproduces_the_contention_ordering() {
        let scenario = run(Scale::Smoke).unwrap();
        assert_eq!(scenario.results.len(), cells().len());
        assert_eq!(scenario.table.len(), cells().len());

        let dense = report_for(&scenario, StrategySpec::Dense, SchedulerPolicy::Fifo);
        let dip = report_for(
            &scenario,
            StrategySpec::Dip { density: 0.5 },
            SchedulerPolicy::Fifo,
        );
        let dip_ca = report_for(
            &scenario,
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
            SchedulerPolicy::Fifo,
        );
        assert!(dip.aggregate_tps > dense.aggregate_tps);
        assert!(dip_ca.aggregate_tps > dense.aggregate_tps);
        assert!(dip_ca.cache_hit_rate > dense.cache_hit_rate);
        assert!(scenario.table.to_markdown().contains("Serving"));
    }

    #[test]
    fn declarative_spec_list_drives_the_scenario() {
        // A JSON mix (the `serving` binary's input format) including a
        // non-DIP-family strategy, driven end-to-end.
        let specs = StrategySpec::list_from_json(
            r#"[
                {"method": "dense"},
                {"method": "glu", "density": 0.75},
                {"method": "dip", "density": 0.5},
                {"method": "dip-ca", "density": 0.5, "gamma": 0.2}
            ]"#,
        )
        .unwrap();
        let scenario = run_with_specs(Scale::Smoke, &specs).unwrap();
        // one homogeneous cell per spec + the heterogeneous mix
        assert_eq!(scenario.results.len(), specs.len() + 1);
        let (mix_cell, mix_report) = scenario.results.last().unwrap();
        assert!(mix_cell.label.starts_with("mix("));
        assert_eq!(mix_report.requests.len(), fleet_size(Scale::Smoke));
        // the mixed fleet really is heterogeneous
        let labels: std::collections::HashSet<&str> = mix_report
            .requests
            .iter()
            .map(|r| r.strategy.as_str())
            .collect();
        assert_eq!(labels.len(), specs.len());
        assert!(mix_report.aggregate_tps > 0.0);

        // axis-incompatible lists skip the mix row but keep the per-spec rows
        let conflicting = vec![
            StrategySpec::Dip { density: 0.5 },
            StrategySpec::Cats { density: 0.5 },
        ];
        assert_eq!(cells_from_specs(&conflicting).len(), 2);

        assert!(run_with_specs(Scale::Smoke, &[]).is_err());
        // a hand-built cell with no strategies is a typed error, not a panic
        let empty_cell = ServingCell::mix(vec![], SchedulerPolicy::Fifo);
        assert!(run_cells(Scale::Smoke, vec![empty_cell]).is_err());
        assert!(fleet(Scale::Smoke, &[]).is_empty());
    }

    #[test]
    fn open_loop_scenario_prices_schedulers_on_identical_traffic() {
        let scenario = run_open_loop(Scale::Smoke).unwrap();
        assert_eq!(scenario.results.len(), open_loop_cells().len());
        assert_eq!(scenario.table.len(), scenario.results.len());
        assert!(scenario.table.to_markdown().contains("Open-loop"));

        let report_for = |spec: StrategySpec, scheduler: SchedulerPolicy| -> &ServeReport {
            scenario
                .results
                .iter()
                .find(|(c, _)| c.strategies == vec![spec] && c.scheduler == scheduler)
                .map(|(_, r)| r)
                .expect("cell present")
        };
        let dip = StrategySpec::Dip { density: 0.5 };
        let fifo = report_for(dip, SchedulerPolicy::Fifo);
        let priority = report_for(dip, SchedulerPolicy::PriorityPreemptive);
        let fifo_ol = fifo.open_loop.as_ref().unwrap();
        let prio_ol = priority.open_loop.as_ref().unwrap();

        // identical traffic per row: same arrivals, same total served work
        assert_eq!(fifo_ol.arrived, prio_ol.arrived);
        assert!(fifo_ol.arrived > 0);
        assert_eq!(fifo.total_generated_tokens, priority.total_generated_tokens);
        // the bursts genuinely oversubscribe: priority actually preempts
        assert!(prio_ol.preemptions > 0);
        // and buys the premium tier at least as much SLO attainment
        let premium = Tier::Premium.index();
        assert!(prio_ol.tiers[premium].slo_attainment >= fifo_ol.tiers[premium].slo_attainment);
    }

    #[test]
    fn paged_fleet_sharing_beats_isolated_on_the_same_page_budget() {
        let sessions = 192;
        let scenario = run_paged_fleet(sessions).unwrap();
        assert_eq!(scenario.isolated.requests.len(), sessions);
        assert_eq!(scenario.shared.requests.len(), sessions);
        assert!(scenario.table.to_markdown().contains("Paged-KV fleet"));

        // both runs honour the fixed page budget
        for report in [&scenario.isolated, &scenario.shared] {
            let paged = report.paged_kv.as_ref().unwrap();
            assert_eq!(paged.pool_pages, scenario.pool_pages);
            assert!(paged.pages_high_water <= scenario.pool_pages);
        }

        // sharing actually shares...
        let shared = scenario.shared.paged_kv.as_ref().unwrap();
        assert!(shared.prefix_hits > 0);
        assert!(shared.prefix_tokens_saved > 0);
        assert_eq!(scenario.isolated.paged_kv.as_ref().unwrap().prefix_hits, 0);
        // ...serves fewer prefill tokens for the same fleet...
        assert!(scenario.shared.total_prefill_tokens < scenario.isolated.total_prefill_tokens);
        // ...and converts the saved pages into throughput and a shorter
        // TTFT tail on the capped pool
        assert!(scenario.shared.aggregate_tps > scenario.isolated.aggregate_tps);
        assert!(scenario.shared.makespan_s < scenario.isolated.makespan_s);
        assert!(scenario.shared_ttft_p95_s < scenario.isolated_ttft_p95_s);

        // without perturbing a single generated token
        for (s, i) in scenario
            .shared
            .requests
            .iter()
            .zip(&scenario.isolated.requests)
        {
            assert_eq!(s.id, i.id);
            assert_eq!(s.generated, i.generated);
        }

        // the scenario is deterministic end to end
        let again = run_paged_fleet(sessions).unwrap();
        assert_eq!(again.isolated, scenario.isolated);
        assert_eq!(again.shared, scenario.shared);
    }

    #[test]
    fn instrumented_open_loop_matches_the_bare_run_bitwise() {
        let workload = calibrated_open_loop_workload(Scale::Smoke).unwrap();
        let bare = run_open_loop_with_workload(Scale::Smoke, &workload).unwrap();
        let instrumented = run_open_loop_instrumented(Scale::Smoke, &workload).unwrap();

        // telemetry is write-only: same reports, same rendered table
        assert_eq!(bare.results, instrumented.scenario.results);
        assert_eq!(
            bare.table.to_markdown(),
            instrumented.scenario.table.to_markdown()
        );

        // one telemetry pipeline per cell, in row order, and every cell's
        // timeline windows account for exactly the tokens the report served
        assert_eq!(instrumented.telemetry.len(), bare.results.len());
        for ((cell, report), (key, tel)) in bare.results.iter().zip(&instrumented.telemetry) {
            assert_eq!(*key, format!("{}/{}", cell.label, cell.scheduler));
            let served = (report.total_prefill_tokens + report.total_generated_tokens) as u64;
            assert_eq!(tel.timeline().total_tokens(), served);
            assert!(!tel.ring().is_empty(), "cell `{key}` recorded no events");
        }

        // the merged exposition carries every cell's const label
        let registries: Vec<&serve::MetricsRegistry> = instrumented
            .telemetry
            .iter()
            .map(|(_, t)| t.registry())
            .collect();
        let text = serve::render_prometheus_merged(&registries);
        serve::check_exposition(&text).unwrap();
        for (key, _) in &instrumented.telemetry {
            assert!(text.contains(&format!("cell=\"{key}\"")));
        }
    }

    #[test]
    fn degradation_buys_premium_slo_that_shedding_burns() {
        let s = run_degrade_vs_shed().unwrap();
        let shed_ol = s.shed_only.open_loop.as_ref().unwrap();
        let deg_ol = s.degraded.open_loop.as_ref().unwrap();
        // identical traffic, and the bursts genuinely pressure the queue
        assert_eq!(shed_ol.arrived, deg_ol.arrived);
        assert!(shed_ol.arrived > 0);
        // only the degrading engine degrades, and it walks the declared
        // fallback chain (dense -> dip@…)
        assert_eq!(shed_ol.degraded_sessions, 0);
        assert!(deg_ol.degraded_sessions > 0);
        assert!(s
            .degraded
            .requests
            .iter()
            .any(|r| r.degraded && r.strategy.as_str().starts_with("dip")));
        // the headline: strictly higher premium SLO at near-equal tok/s
        assert!(
            s.degrade_premium_slo > s.shed_premium_slo,
            "degradation must beat shedding on premium SLO: {:.3} vs {:.3}",
            s.degrade_premium_slo,
            s.shed_premium_slo
        );
        assert!(
            (s.tps_ratio - 1.0).abs() <= 0.1,
            "degradation must hold aggregate tok/s within 10%: ratio {:.4}",
            s.tps_ratio
        );
        assert!(s.table.to_markdown().contains("Degrade vs shed"));

        // the scenario is deterministic end to end
        let again = run_degrade_vs_shed().unwrap();
        assert_eq!(again.shed_only, s.shed_only);
        assert_eq!(again.degraded, s.degraded);
    }

    #[test]
    fn chaos_scenario_strikes_conserves_and_replays() {
        let s = run_chaos(7).unwrap();
        let ol = s.chaos.open_loop.as_ref().unwrap();
        assert!(ol.arrived > 0);
        // the plan actually struck: injected fault kinds the clean leg
        // cannot produce
        assert!(
            ol.retries + ol.failed + ol.kv_pages_lost > 0,
            "the seeded plan must strike at least one injected fault"
        );
        assert_ne!(s.chaos, s.clean, "a striking plan must perturb the run");
        // conservation held on both legs (run_chaos enforces it; re-check
        // through the public helper)
        assert!(conservation_violation(&s.clean).is_none());
        assert!(conservation_violation(&s.chaos).is_none());
        assert!(s.table.to_markdown().contains("Chaos"));

        // replay determinism across scenario invocations, not just inside
        let again = run_chaos(7).unwrap();
        assert_eq!(again.clean, s.clean);
        assert_eq!(again.chaos, s.chaos);
        // and the plan is seed-sensitive
        assert_ne!(run_chaos(8).unwrap().chaos, s.chaos);
    }

    #[test]
    fn event_loop_stall_scenario_cuts_the_decode_tail_at_equal_work() {
        let s = run_event_loop_stall().unwrap();
        assert!(
            s.stall_ratio >= 2.0,
            "chunked prefill must cut decode TBT p99 at least 2x: step {:.6}s / event {:.6}s = {:.2}",
            s.step_tbt_p99_s,
            s.event_tbt_p99_s,
            s.stall_ratio
        );
        assert!(
            (s.tps_ratio - 1.0).abs() <= 0.05,
            "chunking reorders work, it must not change aggregate tok/s: ratio {:.4}",
            s.tps_ratio
        );
        let spill = s.spill.open_loop.as_ref().unwrap();
        assert!(
            spill.preemptions >= 2,
            "spill leg must preempt repeatedly: preemptions {} resumes {} completed {} arrived {} kv_swap_s {}",
            spill.preemptions,
            spill.resumes,
            spill.completed,
            spill.arrived,
            spill.kv_swap_s
        );
        assert!(
            spill.kv_swap_s > 0.0 && spill.kv_spill_bytes > 0.0,
            "preemption KV swaps must carry a priced virtual cost"
        );
        assert_eq!(s.table.len(), 2);
    }
}
