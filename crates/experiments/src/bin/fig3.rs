//! Regenerates Figure 3 (GLU activation magnitude distribution).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig3 at {scale:?} scale...");

    let out = experiments::figures::fig3::run(scale).expect("fig3 failed");
    println!("{}", out.summary.to_markdown());
    println!("{}", out.figure.to_markdown());
}
