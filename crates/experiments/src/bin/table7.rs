//! Regenerates Table 7 (Flash speed ablation).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running table7 at {scale:?} scale...");

    let out = experiments::tables::ablations::run_flash_ablation(scale).expect("table7 failed");
    println!("{}", out.table.to_markdown());
}
