//! Regenerates Table 2 (throughput at bounded perplexity increase).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running table2 at {scale:?} scale...");

    let out = experiments::tables::table2::run(scale).expect("table2 failed");
    println!("{}", out.table.to_markdown());
}
