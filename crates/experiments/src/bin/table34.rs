//! Regenerates Tables 3 and 4 (methods at 60% and 40% MLP density).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running table34 at {scale:?} scale...");

    let t3 = experiments::tables::table1::run_table3(scale).expect("table3 failed");
    println!("{}", t3.table.to_markdown());
    let t4 = experiments::tables::table1::run_table4(scale).expect("table4 failed");
    println!("{}", t4.table.to_markdown());
}
