//! Regenerates Table 1 (methods at 50% MLP density).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running table1 at {scale:?} scale...");

    let out = experiments::tables::table1::run(scale).expect("table1 failed");
    println!("{}", out.table.to_markdown());
}
