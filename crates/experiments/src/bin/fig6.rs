//! Regenerates Figure 6 (GLU pruning vs predictive pruning).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig6 at {scale:?} scale...");

    let out = experiments::figures::fig6::run(scale).expect("fig6 failed");
    println!("{}", out.swiglu.to_markdown());
    println!("{}", out.relufied.to_markdown());
}
