//! Regenerates Figure 9 (memory vs perplexity: quantization, pruning, DIP).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig9 at {scale:?} scale...");

    let out = experiments::figures::fig9::run(scale).expect("fig9 failed");
    println!("{}", out.figure.to_markdown());
}
