//! Regenerates Figure 2 (NPU/DRAM/model-size trends).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig2 at {scale:?} scale...");

    let (_, table) = experiments::figures::fig2::run().expect("fig2 failed");
    let _ = scale;
    println!("{}", table.to_markdown());
}
