//! Runs the multi-user serving scenarios (strategies × schedulers under
//! shared-cache contention).
//!
//! ```text
//! serving [smoke|quick|full] [specs.json]                 # closed fleet
//! serving [smoke|quick|full] --open-loop [workload.json]  # open-loop traffic
//! ```
//!
//! Closed fleet: without a spec file the built-in comparison matrix runs;
//! with one, the file must hold a JSON array of strategy specs (see
//! `examples/serving_specs.json`) and the scenario runs one homogeneous
//! fleet per spec plus a heterogeneous mix — new workload mixes need no
//! recompilation.
//!
//! Open loop: arrivals are drawn from a workload (bursty by default,
//! calibrated to the simulated device's service rate) and driven through
//! admission control and preemptive scheduling on a virtual clock; with a
//! workload file (see `examples/open_loop_workload.json`) the traffic —
//! arrival process, request shapes, tiers, SLOs — is declarative too.

use experiments::Scale;
use serve::{StrategySpec, Workload};

fn main() {
    let mut scale = Scale::Quick;
    let mut open_loop = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--open-loop" || arg == "open-loop" {
            open_loop = true;
            continue;
        }
        match Scale::parse(&arg) {
            Some(s) => scale = s,
            None => path = Some(arg),
        }
    }

    let table = if open_loop {
        let out = match path {
            None => {
                eprintln!("running open-loop serving scenario at {scale:?} scale (calibrated bursty workload)...");
                experiments::serving::run_open_loop(scale).expect("open-loop scenario failed")
            }
            Some(path) => {
                let json = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read workload file `{path}`: {e}"));
                let workload = Workload::from_json(&json)
                    .unwrap_or_else(|e| panic!("cannot parse workload file `{path}`: {e}"));
                eprintln!(
                    "running open-loop serving scenario at {scale:?} scale with workload `{path}`...",
                );
                experiments::serving::run_open_loop_with_workload(scale, &workload)
                    .expect("open-loop scenario failed")
            }
        };
        out.table
    } else {
        let out = match path {
            None => {
                eprintln!("running serving scenario at {scale:?} scale (built-in matrix)...");
                experiments::serving::run(scale).expect("serving scenario failed")
            }
            Some(path) => {
                let json = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read spec file `{path}`: {e}"));
                let specs = StrategySpec::list_from_json(&json)
                    .unwrap_or_else(|e| panic!("cannot parse spec file `{path}`: {e}"));
                eprintln!(
                    "running serving scenario at {scale:?} scale with {} specs from `{path}`...",
                    specs.len()
                );
                experiments::serving::run_with_specs(scale, &specs)
                    .expect("serving scenario failed")
            }
        };
        out.table
    };
    println!("{}", table.to_markdown());
}
