//! Runs the multi-user serving scenario (strategies × schedulers under
//! shared-cache contention).
//!
//! ```text
//! serving [smoke|quick|full] [specs.json]
//! ```
//!
//! Without a spec file the built-in comparison matrix runs. With one, the
//! file must hold a JSON array of strategy specs (see
//! `examples/serving_specs.json`); the scenario runs one homogeneous fleet
//! per spec plus a heterogeneous mix of all of them — new workload mixes
//! need no recompilation.

use experiments::Scale;
use serve::StrategySpec;

fn main() {
    let mut scale = Scale::Quick;
    let mut spec_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match Scale::parse(&arg) {
            Some(s) => scale = s,
            None => spec_path = Some(arg),
        }
    }

    let out = match spec_path {
        None => {
            eprintln!("running serving scenario at {scale:?} scale (built-in matrix)...");
            experiments::serving::run(scale).expect("serving scenario failed")
        }
        Some(path) => {
            let json = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read spec file `{path}`: {e}"));
            let specs = StrategySpec::list_from_json(&json)
                .unwrap_or_else(|e| panic!("cannot parse spec file `{path}`: {e}"));
            eprintln!(
                "running serving scenario at {scale:?} scale with {} specs from `{path}`...",
                specs.len()
            );
            experiments::serving::run_with_specs(scale, &specs).expect("serving scenario failed")
        }
    };
    println!("{}", out.table.to_markdown());
}
