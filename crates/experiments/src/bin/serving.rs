//! Runs the multi-user serving scenarios (strategies × schedulers under
//! shared-cache contention).
//!
//! ```text
//! serving [smoke|quick|full] [specs.json]                 # closed fleet
//! serving [smoke|quick|full] --open-loop [workload.json]  # open-loop traffic
//!     [--metrics-out metrics.prom]   # Prometheus text exposition
//!     [--trace-out trace.jsonl]      # JSONL span/event + timeline dump
//!     [--chrome-out trace.json]      # chrome://tracing span export
//! serving [smoke|quick|full] --paged-fleet [sessions]     # paged-KV fleet
//! serving chaos [--seed N]                                # fault injection
//! ```
//!
//! Closed fleet: without a spec file the built-in comparison matrix runs;
//! with one, the file must hold a JSON array of strategy specs (see
//! `examples/serving_specs.json`) and the scenario runs one homogeneous
//! fleet per spec plus a heterogeneous mix — new workload mixes need no
//! recompilation.
//!
//! Paged fleet: one closed fleet of template-sharing assistant sessions
//! (scale default sizes, or an explicit session count) served twice on the
//! same fixed KV page budget — paged KV without prefix sharing vs with
//! copy-on-write shared-prefix caching — printing the throughput/TTFT
//! comparison table.
//!
//! Chaos: the mixed-tier chaos workload runs clean and under a seeded
//! fault plan (client cancels, injected deadlines, retryable worker
//! aborts, KV page loss, a slow lane) with bounded retry and graceful
//! degradation armed. The scenario itself verifies request conservation
//! and replay determinism; this binary additionally re-runs the whole
//! scenario and diffs the reports bitwise, then prints the clean/chaos
//! comparison and the degrade-vs-shed headline table.
//!
//! Open loop: arrivals are drawn from a workload (bursty by default,
//! calibrated to the simulated device's service rate) and driven through
//! admission control and preemptive scheduling on a virtual clock; with a
//! workload file (see `examples/open_loop_workload.json`) the traffic —
//! arrival process, request shapes, tiers, SLOs — is declarative too.
//!
//! Any exporter flag attaches one telemetry pipeline per cell (the reports
//! stay bitwise identical — telemetry is write-only) and additionally prints
//! the first cell's virtual-time timeline. Every written export is
//! self-validated (Prometheus line format, JSONL well-formedness) and the
//! timeline's window token sums are checked against the report totals
//! before anything is written.

use experiments::serving::InstrumentedOpenLoop;
use experiments::Scale;
use serve::{StrategySpec, Workload};

struct ExportPaths {
    metrics: Option<String>,
    trace: Option<String>,
    chrome: Option<String>,
}

impl ExportPaths {
    fn any(&self) -> bool {
        self.metrics.is_some() || self.trace.is_some() || self.chrome.is_some()
    }
}

/// Validates the instrumented run's cross-checks, writes the requested
/// exports, and returns the first cell's timeline table.
fn export(out: &InstrumentedOpenLoop, paths: &ExportPaths) -> Option<String> {
    // accounting invariant: per-window token counts sum exactly to each
    // report's served totals — refuse to write exports that don't add up
    for ((cell, report), (key, tel)) in out.scenario.results.iter().zip(&out.telemetry) {
        assert_eq!(
            format!("{}/{}", cell.label, cell.scheduler),
            *key,
            "cell order must match telemetry order"
        );
        let served = (report.total_prefill_tokens + report.total_generated_tokens) as u64;
        assert_eq!(
            tel.timeline().total_tokens(),
            served,
            "cell `{key}`: timeline window sums diverge from the report totals"
        );
    }

    if let Some(path) = &paths.metrics {
        let registries: Vec<&serve::MetricsRegistry> =
            out.telemetry.iter().map(|(_, t)| t.registry()).collect();
        let text = serve::render_prometheus_merged(&registries);
        serve::check_exposition(&text)
            .unwrap_or_else(|e| panic!("internal error: invalid exposition: {e}"));
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        eprintln!(
            "wrote Prometheus exposition to `{path}` ({} bytes)",
            text.len()
        );
    }
    if let Some(path) = &paths.trace {
        let cells: Vec<(&str, &serve::TraceRing)> = out
            .telemetry
            .iter()
            .map(|(key, t)| (key.as_str(), t.ring()))
            .collect();
        let mut text = serve::render_trace_jsonl(&cells);
        for (key, tel) in &out.telemetry {
            text.push_str(&serve::render_timeline_jsonl(key, tel.timeline()));
        }
        serve::check_jsonl(&text)
            .unwrap_or_else(|e| panic!("internal error: invalid trace JSONL: {e}"));
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        eprintln!("wrote JSONL trace to `{path}` ({} bytes)", text.len());
    }
    if let Some(path) = &paths.chrome {
        let cells: Vec<(&str, &serve::TraceRing)> = out
            .telemetry
            .iter()
            .map(|(key, t)| (key.as_str(), t.ring()))
            .collect();
        let text = serve::render_chrome_trace(&cells);
        serve::check_jsonl(&text)
            .unwrap_or_else(|e| panic!("internal error: invalid chrome trace: {e}"));
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        eprintln!(
            "wrote chrome://tracing export to `{path}` ({} bytes)",
            text.len()
        );
    }

    out.telemetry.first().map(|(key, tel)| {
        format!(
            "\nTimeline of cell `{key}` (window = {:.4}s):\n\n{}",
            tel.timeline().window_s(),
            tel.timeline().render_table()
        )
    })
}

fn main() {
    let mut scale = Scale::Quick;
    let mut open_loop = false;
    let mut paged_fleet = false;
    let mut chaos = false;
    let mut seed = 7u64;
    let mut path: Option<String> = None;
    let mut paths = ExportPaths {
        metrics: None,
        trace: None,
        chrome: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a file path argument"))
        };
        match arg.as_str() {
            "--open-loop" | "open-loop" => open_loop = true,
            "--paged-fleet" | "paged-fleet" => paged_fleet = true,
            "--chaos" | "chaos" => chaos = true,
            "--seed" => {
                let value = flag_value("--seed");
                seed = value
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("--seed takes an integer, got `{value}`"));
            }
            "--metrics-out" => paths.metrics = Some(flag_value("--metrics-out")),
            "--trace-out" => paths.trace = Some(flag_value("--trace-out")),
            "--chrome-out" => paths.chrome = Some(flag_value("--chrome-out")),
            other => match Scale::parse(other) {
                Some(s) => scale = s,
                None => path = Some(other.to_string()),
            },
        }
    }
    if paths.any() && !open_loop {
        panic!("--metrics-out/--trace-out/--chrome-out require --open-loop");
    }
    if paged_fleet && open_loop {
        panic!("--paged-fleet and --open-loop are separate scenarios");
    }
    if chaos && (paged_fleet || open_loop || paths.any()) {
        panic!("chaos is a separate scenario; it takes only --seed");
    }

    if chaos {
        eprintln!("running chaos scenario with fault-plan seed {seed}...");
        // the scenario verifies conservation and replay determinism
        // internally; re-running the whole scenario and diffing bitwise
        // additionally proves no hidden state leaks between invocations
        let first = experiments::serving::run_chaos(seed).expect("chaos scenario failed");
        let second = experiments::serving::run_chaos(seed).expect("chaos re-run failed");
        assert_eq!(
            first.clean, second.clean,
            "clean leg diverged between scenario invocations"
        );
        assert_eq!(
            first.chaos, second.chaos,
            "chaos leg diverged between scenario invocations"
        );
        println!("{}", first.table.to_markdown());
        let ol = first.chaos.open_loop.as_ref().expect("open-loop stats");
        eprintln!(
            "chaos (seed {seed}): {} arrived -> {} completed, {} cancelled, {} expired, \
             {} failed after {} retries, {} pages lost ({} refill tokens), {} degraded; \
             determinism re-run diff clean",
            ol.arrived,
            ol.completed,
            ol.cancelled,
            ol.deadline_expired,
            ol.failed,
            ol.retries,
            ol.kv_pages_lost,
            ol.kv_refill_tokens,
            ol.degraded_sessions
        );

        let headline =
            experiments::serving::run_degrade_vs_shed().expect("degrade-vs-shed scenario failed");
        println!("{}", headline.table.to_markdown());
        assert!(
            headline.degrade_premium_slo > headline.shed_premium_slo,
            "degradation must beat shedding on premium SLO ({:.3} vs {:.3})",
            headline.degrade_premium_slo,
            headline.shed_premium_slo
        );
        assert!(
            (headline.tps_ratio - 1.0).abs() <= 0.1,
            "degradation must hold aggregate tok/s within 10% (ratio {:.4})",
            headline.tps_ratio
        );
        eprintln!(
            "degrade vs shed: premium SLO {:.1}% -> {:.1}% (+{:.1} pts) at {:.3}x tok/s",
            100.0 * headline.shed_premium_slo,
            100.0 * headline.degrade_premium_slo,
            100.0 * headline.premium_slo_lift,
            headline.tps_ratio
        );
        return;
    }

    if paged_fleet {
        // the optional positional argument is a session count, not a file
        let sessions = match path {
            None => experiments::serving::paged_fleet_sessions(scale),
            Some(arg) => arg
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("--paged-fleet takes a session count, got `{arg}`")),
        };
        eprintln!("running paged-KV fleet scenario with {sessions} sessions...");
        let scenario =
            experiments::serving::run_paged_fleet(sessions).expect("paged-fleet scenario failed");
        println!("{}", scenario.table.to_markdown());
        let shared = scenario.shared.paged_kv.as_ref().expect("paged stats");
        assert!(
            shared.prefix_hits > 0,
            "prefix sharing never hit — the fleet templates are broken"
        );
        assert!(
            scenario.shared.aggregate_tps > scenario.isolated.aggregate_tps
                && scenario.shared_ttft_p95_s < scenario.isolated_ttft_p95_s,
            "sharing must beat the isolated fleet on tok/s and TTFT p95"
        );
        eprintln!(
            "sharing: {:.2}x tok/s, {:.2}x TTFT p95, {} prompt tokens never re-prefilled",
            scenario.shared.aggregate_tps / scenario.isolated.aggregate_tps,
            scenario.isolated_ttft_p95_s / scenario.shared_ttft_p95_s.max(1e-12),
            shared.prefix_tokens_saved
        );
        return;
    }

    let table = if open_loop {
        let workload = match path {
            None => {
                eprintln!("running open-loop serving scenario at {scale:?} scale (calibrated bursty workload)...");
                experiments::serving::calibrated_open_loop_workload(scale)
                    .expect("workload calibration failed")
            }
            Some(path) => {
                let json = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read workload file `{path}`: {e}"));
                let workload = Workload::from_json(&json)
                    .unwrap_or_else(|e| panic!("cannot parse workload file `{path}`: {e}"));
                eprintln!(
                    "running open-loop serving scenario at {scale:?} scale with workload `{path}`...",
                );
                workload
            }
        };
        if paths.any() {
            let out = experiments::serving::run_open_loop_instrumented(scale, &workload)
                .expect("open-loop scenario failed");
            let timeline = export(&out, &paths);
            let mut rendered = out.scenario.table.to_markdown();
            if let Some(timeline) = timeline {
                rendered.push_str(&timeline);
            }
            println!("{rendered}");
            return;
        }
        experiments::serving::run_open_loop_with_workload(scale, &workload)
            .expect("open-loop scenario failed")
            .table
    } else {
        let out = match path {
            None => {
                eprintln!("running serving scenario at {scale:?} scale (built-in matrix)...");
                experiments::serving::run(scale).expect("serving scenario failed")
            }
            Some(path) => {
                let json = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read spec file `{path}`: {e}"));
                let specs = StrategySpec::list_from_json(&json)
                    .unwrap_or_else(|e| panic!("cannot parse spec file `{path}`: {e}"));
                eprintln!(
                    "running serving scenario at {scale:?} scale with {} specs from `{path}`...",
                    specs.len()
                );
                experiments::serving::run_with_specs(scale, &specs)
                    .expect("serving scenario failed")
            }
        };
        out.table
    };
    println!("{}", table.to_markdown());
}
