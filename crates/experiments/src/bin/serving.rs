//! Runs the multi-user serving scenario (strategies × schedulers under
//! shared-cache contention).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running serving scenario at {scale:?} scale...");

    let out = experiments::serving::run(scale).expect("serving scenario failed");
    println!("{}", out.table.to_markdown());
}
