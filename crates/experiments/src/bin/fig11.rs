//! Regenerates Figure 11 (cache eviction policies vs cache-aware masking).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig11 at {scale:?} scale...");

    let out = experiments::figures::fig11::run(scale).expect("fig11 failed");
    println!("{}", out.figure.to_markdown());
}
