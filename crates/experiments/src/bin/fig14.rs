//! Regenerates Figure 14 (Pareto curves, remaining models).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig14 at {scale:?} scale...");

    for out in experiments::figures::fig8::run_fig14(scale).expect("fig14 failed") {
        println!("{}", out.perplexity.to_markdown());
        println!("{}", out.accuracy.to_markdown());
    }
}
