//! Regenerates Figure 10 (GLU distribution and gamma ablation).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig10 at {scale:?} scale...");

    let out = experiments::figures::fig10::run(scale).expect("fig10 failed");
    println!("{}", out.distribution.to_markdown());
    println!("{}", out.gamma_ablation.to_markdown());
}
