//! Regenerates Figure 4 (thresholding strategies).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig4 at {scale:?} scale...");

    let out = experiments::figures::fig4::run(scale).expect("fig4 failed");
    println!("dense perplexity: {:.3}\n", out.dense_ppl);
    println!("{}", out.table.to_markdown());
}
