//! Regenerates Figures 12/13 (density allocation study).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig12 at {scale:?} scale...");

    let out = experiments::figures::fig12::run(scale).expect("fig12 failed");
    println!("{}", out.trials.to_markdown());
    println!(
        "fitted allocation: intercept={:.3} slope={:.3}\n",
        out.fitted.intercept, out.fitted.slope
    );
    println!("{}", out.allocation_table.to_markdown());
}
