//! Regenerates Figure 8 (Pareto curves, primary model).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running fig8 at {scale:?} scale...");

    let out = experiments::figures::fig8::run(scale).expect("fig8 failed");
    println!("{}", out.perplexity.to_markdown());
    println!("{}", out.accuracy.to_markdown());
}
