//! Regenerates Table 6 (DRAM size ablation).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running table6 at {scale:?} scale...");

    let out = experiments::tables::ablations::run_dram_ablation(scale).expect("table6 failed");
    println!("{}", out.table.to_markdown());
}
