//! Regenerates Table 5 (per-task accuracy at 50% sparsity).
use experiments::Scale;

fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("running table5 at {scale:?} scale...");

    let out = experiments::tables::table5::run(scale).expect("table5 failed");
    println!("{}", out.table.to_markdown());
}
