//! Table 5: per-task accuracy of the main methods at 50 % MLP sparsity.

use crate::methods::MethodKind;
use crate::registry;
use crate::report::{self, Table};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use lm::eval;

/// Structured per-task accuracy results for one model.
#[derive(Debug, Clone)]
pub struct Table5Output {
    /// Model name.
    pub model: String,
    /// Task names (columns).
    pub tasks: Vec<String>,
    /// Per method: per-task accuracy (percent); `None` when unreachable.
    pub results: Vec<(MethodKind, Option<Vec<f64>>)>,
    /// Rendered table.
    pub table: Table,
}

/// The methods reported in Table 5.
pub fn table5_methods() -> Vec<MethodKind> {
    vec![
        MethodKind::Dense,
        MethodKind::GluOracle,
        MethodKind::SparseGptUnstructured,
        MethodKind::DejaVu,
        MethodKind::Cats,
        MethodKind::Dip,
    ]
}

/// Runs Table 5 on the primary model at 50 % MLP density.
///
/// # Errors
///
/// Propagates preparation and evaluation errors.
pub fn run(scale: Scale) -> Result<Table5Output> {
    let config = registry::primary_model(scale);
    let mut wb = Workbench::new(&config, scale, registry::model_seed(&config))?;
    let tasks = wb.task_suite.names();

    let mut headers = vec!["Method".to_string()];
    headers.extend(tasks.clone());
    let mut table = Table::new(
        format!(
            "Table 5: per-task accuracy at 50% MLP sparsity ({})",
            config.name
        ),
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    let mut results = Vec::new();
    for method in table5_methods() {
        let density = if method == MethodKind::Dense {
            1.0
        } else {
            0.5
        };
        let prepared = wb.prepare(method, density);
        let per_task = match prepared {
            Ok(mut p) => {
                let mut accs = Vec::with_capacity(wb.task_suite.tasks.len());
                for task in &wb.task_suite.tasks {
                    let acc = eval::task_accuracy(&p.model, p.strategy.as_mut(), task)?;
                    accs.push(100.0 * acc);
                }
                Some(accs)
            }
            Err(e) if e.is_unsupported() => None,
            Err(e) => return Err(e),
        };
        let mut row = vec![method.label().to_string()];
        match &per_task {
            Some(accs) => row.extend(accs.iter().map(|a| format!("{a:.1}"))),
            None => row.extend(tasks.iter().map(|_| "—".to_string())),
        }
        table.push_row(row);
        results.push((method, per_task));
    }

    report::write_report("table5.md", &table.to_markdown());
    report::write_report("table5.csv", &table.to_csv());
    Ok(Table5Output {
        model: config.name.clone(),
        tasks,
        results,
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_is_perfect_and_dip_outperforms_weak_baselines_on_average() {
        let out = run(Scale::Smoke).unwrap();
        assert_eq!(out.tasks.len(), 5);
        assert_eq!(out.results.len(), table5_methods().len());

        let mean = |m: MethodKind| -> f64 {
            let accs = out
                .results
                .iter()
                .find(|(k, _)| *k == m)
                .and_then(|(_, a)| a.clone())
                .expect("method evaluated");
            accs.iter().sum::<f64>() / accs.len() as f64
        };
        assert!((mean(MethodKind::Dense) - 100.0).abs() < 1e-9);
        let dip = mean(MethodKind::Dip);
        let oracle = mean(MethodKind::GluOracle);
        assert!(oracle + 1e-9 >= dip * 0.9);
        assert!(dip > 20.0, "DIP mean accuracy {dip}");
        assert!(out.table.len() == table5_methods().len());
    }
}
