//! Tables 1, 3 and 4: perplexity and downstream accuracy of every method at
//! a fixed MLP density (50 %, 60 % and 40 % respectively) across the four
//! evaluation models.

use crate::methods::MethodKind;
use crate::registry;
use crate::report::{self, Table};
use crate::scale::Scale;
use crate::workbench::{QualityPoint, Workbench};
use crate::Result;

/// Structured results of one methods-at-fixed-density run.
#[derive(Debug, Clone)]
pub struct MethodsTable {
    /// The target MLP density of the run.
    pub target_density: f32,
    /// Model names (column groups).
    pub models: Vec<String>,
    /// Per method: per model `Option<QualityPoint>` (None = unreachable).
    pub results: Vec<(MethodKind, Vec<Option<QualityPoint>>)>,
    /// Rendered table.
    pub table: Table,
}

impl MethodsTable {
    /// Looks up the quality point of a method on a model by name.
    pub fn get(&self, method: MethodKind, model: &str) -> Option<&QualityPoint> {
        let model_idx = self.models.iter().position(|m| m == model)?;
        self.results
            .iter()
            .find(|(m, _)| *m == method)
            .and_then(|(_, points)| points.get(model_idx))
            .and_then(|p| p.as_ref())
    }
}

/// Runs the methods-at-fixed-density evaluation (the engine behind Tables 1,
/// 3 and 4).
///
/// # Errors
///
/// Propagates evaluation errors; unreachable (method, density) combinations
/// are rendered as "—" rather than failing the run.
pub fn run_at_density(scale: Scale, target_density: f32) -> Result<MethodsTable> {
    let configs = registry::evaluation_models(scale);
    let mut workbenches = configs
        .iter()
        .map(|c| Workbench::new(c, scale, registry::model_seed(c)))
        .collect::<Result<Vec<_>>>()?;
    let models: Vec<String> = configs.iter().map(|c| c.name.clone()).collect();

    let mut headers: Vec<String> = vec!["Method".to_string()];
    headers.extend(models.iter().map(|m| format!("{m} PPL")));
    headers.extend(models.iter().map(|m| format!("{m} Acc%")));
    let mut table = Table::new(
        format!(
            "Table: dynamic sparsity methods at {:.0}% MLP density",
            target_density * 100.0
        ),
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    let mut results = Vec::new();
    for method in MethodKind::table1_rows() {
        let density = if method == MethodKind::Dense {
            1.0
        } else {
            target_density
        };
        let mut points: Vec<Option<QualityPoint>> = Vec::new();
        for wb in workbenches.iter_mut() {
            match wb.quality(method, density) {
                Ok(q) => points.push(Some(q)),
                Err(e) if e.is_unsupported() => points.push(None),
                Err(e) => return Err(e),
            }
        }
        let mut row = vec![method.label().to_string()];
        row.extend(points.iter().map(|p| {
            p.as_ref()
                .map_or("—".to_string(), |q| format!("{:.2}", q.perplexity))
        }));
        row.extend(points.iter().map(|p| {
            p.as_ref()
                .map_or("—".to_string(), |q| format!("{:.1}", q.accuracy_pct))
        }));
        table.push_row(row);
        results.push((method, points));
    }

    let file = format!("table_density_{:.0}.md", target_density * 100.0);
    report::write_report(&file, &table.to_markdown());
    report::write_report(&file.replace(".md", ".csv"), &table.to_csv());
    Ok(MethodsTable {
        target_density,
        models,
        results,
        table,
    })
}

/// Table 1: methods at 50 % MLP density.
///
/// # Errors
///
/// See [`run_at_density`].
pub fn run(scale: Scale) -> Result<MethodsTable> {
    run_at_density(scale, 0.5)
}

/// Table 3: methods at 60 % MLP density.
///
/// # Errors
///
/// See [`run_at_density`].
pub fn run_table3(scale: Scale) -> Result<MethodsTable> {
    run_at_density(scale, 0.6)
}

/// Table 4: methods at 40 % MLP density.
///
/// # Errors
///
/// See [`run_at_density`].
pub fn run_table4(scale: Scale) -> Result<MethodsTable> {
    run_at_density(scale, 0.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_papers_method_ordering() {
        let out = run(Scale::Smoke).unwrap();
        assert_eq!(out.results.len(), 12);
        let model = out.models[0].clone();

        let ppl = |m: MethodKind| out.get(m, &model).map(|q| q.perplexity);
        let dense = ppl(MethodKind::Dense).unwrap();
        let oracle = ppl(MethodKind::GluOracle).unwrap();
        let dip = ppl(MethodKind::Dip).unwrap();
        let dip_lora = ppl(MethodKind::DipLora).unwrap();
        let gate = ppl(MethodKind::GatePruning).unwrap();
        let up = ppl(MethodKind::UpPruning).unwrap();
        let cats = ppl(MethodKind::Cats).unwrap();

        // headline orderings of Table 1 (small tolerances absorb the noise of
        // the short smoke-scale corpus; the Quick-scale binaries reproduce the
        // full ordering, see EXPERIMENTS.md)
        assert!(oracle <= dip * 1.02, "oracle {oracle} vs dip {dip}");
        assert!(dip <= up * 1.1, "dip {dip} vs up {up}");
        assert!(dip <= gate * 1.1, "dip {dip} vs gate {gate}");
        assert!(dip <= cats * 1.1, "dip {dip} vs cats {cats}");
        assert!(dip_lora <= dip * 1.02, "dip+lora {dip_lora} vs dip {dip}");
        assert!(dense <= oracle * 1.1);
        assert!(up.is_finite() && gate.is_finite() && cats.is_finite());

        // accuracy ordering mirrors perplexity for the main contenders
        let acc = |m: MethodKind| out.get(m, &model).map(|q| q.accuracy_pct).unwrap();
        assert!(acc(MethodKind::Dip) + 10.0 >= acc(MethodKind::GatePruning));
        // rendering sanity
        assert!(out.table.to_markdown().contains("DIP"));
        assert!(out.table.len() == 12);
    }
}
