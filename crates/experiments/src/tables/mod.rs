//! One module per table of the paper.

pub mod ablations;
pub mod table1;
pub mod table2;
pub mod table5;
