//! Table 2: highest throughput achievable at a bounded perplexity increase
//! (+0.2 and +0.5 over dense), with DRAM sized to hold roughly half of each
//! INT4 model.

use crate::methods::MethodKind;
use crate::registry;
use crate::report::{self, Table};
use crate::scale::Scale;
use crate::workbench::Workbench;
use crate::Result;
use hwsim::{DeviceConfig, EvictionPolicy};
use lm::eval;
use lm::ModelConfig;

/// Throughput of one method at the best density satisfying a perplexity budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputCell {
    /// Best tokens/s under the budget (None when no density qualifies).
    pub throughput_tps: Option<f64>,
    /// The density at which it was achieved.
    pub density: Option<f32>,
}

/// Structured Table 2 output for one model.
#[derive(Debug, Clone)]
pub struct ModelThroughput {
    /// Model name.
    pub model: String,
    /// Dense-model throughput.
    pub dense_tps: f64,
    /// Per method, per perplexity budget (+0.2, +0.5): the best throughput.
    pub cells: Vec<(MethodKind, [ThroughputCell; 2])>,
}

/// Full Table 2 output.
#[derive(Debug, Clone)]
pub struct Table2Output {
    /// One entry per model.
    pub per_model: Vec<ModelThroughput>,
    /// Rendered table.
    pub table: Table,
}

/// Finds the best throughput of `method` on `wb`/`device` subject to the
/// perplexity staying below `dense + budget`.
///
/// # Errors
///
/// Propagates evaluation and simulation errors.
pub fn best_throughput(
    wb: &mut Workbench,
    method: MethodKind,
    device: &DeviceConfig,
    budget: f64,
    scale: Scale,
) -> Result<ThroughputCell> {
    let mut best: Option<(f64, f32)> = None;
    for &density in &scale.density_sweep() {
        let ppl = match method {
            MethodKind::DipCacheAware => {
                let mut prepared = wb.prepare_dip_ca(density, 0.2, device, 4.0)?;
                eval::perplexity(&prepared.model, prepared.strategy.as_mut(), &wb.eval_seqs)?
                    .perplexity
            }
            other => match wb.quality(other, density) {
                Ok(q) => q.perplexity,
                Err(e) if e.is_unsupported() => continue,
                Err(e) => return Err(e),
            },
        };
        if ppl > wb.dense_ppl + budget {
            continue;
        }
        let sim = wb.throughput(method, density, device, EvictionPolicy::Lfu)?;
        if best.is_none_or(|(t, _)| sim.throughput_tps > t) {
            best = Some((sim.throughput_tps, density));
        }
    }
    Ok(ThroughputCell {
        throughput_tps: best.map(|(t, _)| t),
        density: best.map(|(_, d)| d),
    })
}

/// Runs Table 2 for one model.
///
/// # Errors
///
/// Propagates evaluation and simulation errors.
pub fn run_for_model(config: &ModelConfig, scale: Scale) -> Result<ModelThroughput> {
    let mut wb = Workbench::new(config, scale, registry::model_seed(config))?;
    let device = wb.table2_device();
    let dense_tps = wb
        .throughput(MethodKind::Dense, 1.0, &device, EvictionPolicy::Lfu)?
        .throughput_tps;

    let mut cells = Vec::new();
    for method in MethodKind::throughput_set() {
        let at_02 = best_throughput(&mut wb, method, &device, 0.2, scale)?;
        let at_05 = best_throughput(&mut wb, method, &device, 0.5, scale)?;
        cells.push((method, [at_02, at_05]));
    }
    Ok(ModelThroughput {
        model: config.name.clone(),
        dense_tps,
        cells,
    })
}

/// Runs Table 2 across the evaluation models.
///
/// # Errors
///
/// Propagates evaluation and simulation errors.
pub fn run(scale: Scale) -> Result<Table2Output> {
    let configs = registry::evaluation_models(scale);
    let per_model: Vec<ModelThroughput> = configs
        .iter()
        .map(|c| run_for_model(c, scale))
        .collect::<Result<_>>()?;

    let mut headers = vec!["Method".to_string()];
    headers.extend(per_model.iter().map(|m| m.model.clone()));
    let mut table = Table::new(
        "Table 2: throughput [tok/s] at bounded perplexity increase (DRAM ≈ 55% of INT4 model)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    let mut dense_row = vec!["Dense".to_string()];
    dense_row.extend(per_model.iter().map(|m| format!("{:.2}", m.dense_tps)));
    table.push_row(dense_row);

    for (budget_idx, budget_label) in ["@ +0.2 PPL", "@ +0.5 PPL"].iter().enumerate() {
        for (mi, method) in MethodKind::throughput_set().iter().enumerate() {
            let mut row = vec![format!("{} {budget_label}", method.label())];
            for m in &per_model {
                let cell = m.cells[mi].1[budget_idx];
                row.push(
                    cell.throughput_tps
                        .map_or("—".to_string(), |t| format!("{t:.2}")),
                );
            }
            table.push_row(row);
        }
    }

    report::write_report("table2.md", &table.to_markdown());
    report::write_report("table2.csv", &table.to_csv());
    Ok(Table2Output { per_model, table })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_methods_beat_the_dense_baseline_and_dip_ca_leads() {
        let out = run(Scale::Smoke).unwrap();
        assert_eq!(out.per_model.len(), 1);
        let m = &out.per_model[0];
        assert!(m.dense_tps > 0.0);

        let cell = |method: MethodKind, budget: usize| -> Option<f64> {
            m.cells
                .iter()
                .find(|(k, _)| *k == method)
                .and_then(|(_, cells)| cells[budget].throughput_tps)
        };
        // at the looser +0.5 budget DIP and DIP-CA must beat dense throughput
        let dip = cell(MethodKind::Dip, 1).expect("DIP qualifies at +0.5");
        let dip_ca = cell(MethodKind::DipCacheAware, 1).expect("DIP-CA qualifies at +0.5");
        assert!(dip > m.dense_tps, "DIP {dip} vs dense {}", m.dense_tps);
        assert!(
            dip_ca >= dip * 0.95,
            "DIP-CA ({dip_ca}) should be competitive with DIP ({dip})"
        );
        // rendered table has a dense row plus 2 budgets x methods rows
        assert_eq!(out.table.len(), 1 + 2 * MethodKind::throughput_set().len());
    }
}
