//! Tables 6 and 7: hardware ablations — DRAM capacity and Flash read speed.
//!
//! Both report the highest throughput achievable at a +0.5 perplexity budget
//! for the dense baseline and the main sparsity methods, on the primary
//! model quantized to INT4.

use crate::methods::MethodKind;
use crate::registry;
use crate::report::{self, Table};
use crate::scale::Scale;
use crate::tables::table2::best_throughput;
use crate::workbench::Workbench;
use crate::Result;
use hwsim::{DeviceConfig, EvictionPolicy};

/// The methods reported in the hardware ablations.
pub fn ablation_methods() -> Vec<MethodKind> {
    vec![
        MethodKind::GluPruning,
        MethodKind::UpPruning,
        MethodKind::Cats,
        MethodKind::DipCacheAware,
    ]
}

/// Output of one ablation run.
#[derive(Debug, Clone)]
pub struct AblationOutput {
    /// Column labels (one per hardware setting).
    pub settings: Vec<String>,
    /// Dense throughput per setting.
    pub dense: Vec<f64>,
    /// Per method: throughput per setting at the +0.5 PPL budget.
    pub methods: Vec<(MethodKind, Vec<Option<f64>>)>,
    /// Rendered table.
    pub table: Table,
}

fn run_over_devices(
    scale: Scale,
    title: &str,
    file_stem: &str,
    settings: Vec<(String, DeviceConfig)>,
) -> Result<AblationOutput> {
    let config = registry::primary_model(scale);
    let mut wb = Workbench::new(&config, scale, registry::model_seed(&config))?;

    let mut dense = Vec::new();
    for (_, device) in &settings {
        dense.push(
            wb.throughput(MethodKind::Dense, 1.0, device, EvictionPolicy::Lfu)?
                .throughput_tps,
        );
    }

    let mut methods = Vec::new();
    for method in ablation_methods() {
        let mut per_setting = Vec::new();
        for (_, device) in &settings {
            let cell = best_throughput(&mut wb, method, device, 0.5, scale)?;
            per_setting.push(cell.throughput_tps);
        }
        methods.push((method, per_setting));
    }

    let mut headers = vec!["Method".to_string()];
    headers.extend(settings.iter().map(|(name, _)| name.clone()));
    let mut table = Table::new(
        title,
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut dense_row = vec!["Dense".to_string()];
    dense_row.extend(dense.iter().map(|t| format!("{t:.2}")));
    table.push_row(dense_row);
    for (method, per_setting) in &methods {
        let mut row = vec![method.label().to_string()];
        row.extend(
            per_setting
                .iter()
                .map(|t| t.map_or("—".to_string(), |t| format!("{t:.2}"))),
        );
        table.push_row(row);
    }

    report::write_report(&format!("{file_stem}.md"), &table.to_markdown());
    report::write_report(&format!("{file_stem}.csv"), &table.to_csv());
    Ok(AblationOutput {
        settings: settings.into_iter().map(|(n, _)| n).collect(),
        dense,
        methods,
        table,
    })
}

/// Table 6: throughput at different DRAM capacities (the 2/4/6 GB analogue,
/// expressed as a fraction of the INT4 model size).
///
/// # Errors
///
/// Propagates evaluation and simulation errors.
pub fn run_dram_ablation(scale: Scale) -> Result<AblationOutput> {
    let config = registry::primary_model(scale);
    let example = lm::MlpAccessRecord::dense();
    let layout = crate::convert::layout_for_method(
        &config,
        &example,
        4.0,
        crate::convert::StaticOverhead::default(),
    );
    let total = layout.total_bytes() as f64;
    let settings = [0.35f64, 0.55, 0.8]
        .iter()
        .map(|frac| {
            let bytes = ((total * frac) as u64).max(layout.static_bytes + 1024);
            (
                format!("DRAM {:.0}% of model", frac * 100.0),
                DeviceConfig::apple_a18(4.0).with_dram_bytes(bytes),
            )
        })
        .collect();
    run_over_devices(
        scale,
        "Table 6: throughput [tok/s] at +0.5 PPL for different DRAM sizes",
        "table6",
        settings,
    )
}

/// Table 7: throughput at different Flash read speeds (0.5 / 1 / 2 GB/s).
///
/// # Errors
///
/// Propagates evaluation and simulation errors.
pub fn run_flash_ablation(scale: Scale) -> Result<AblationOutput> {
    let config = registry::primary_model(scale);
    let example = lm::MlpAccessRecord::dense();
    let layout = crate::convert::layout_for_method(
        &config,
        &example,
        4.0,
        crate::convert::StaticOverhead::default(),
    );
    let dram = ((layout.total_bytes() as f64 * 0.55) as u64).max(layout.static_bytes + 1024);
    let settings = [0.5f64, 1.0, 2.0]
        .iter()
        .map(|gbps| {
            (
                format!("Flash {gbps} GB/s"),
                DeviceConfig::apple_a18(4.0)
                    .with_dram_bytes(dram)
                    .with_flash_bandwidth(gbps * hwsim::GB_PER_S),
            )
        })
        .collect();
    run_over_devices(
        scale,
        "Table 7: throughput [tok/s] at +0.5 PPL for different Flash read speeds",
        "table7",
        settings,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_dram_and_faster_flash_increase_throughput() {
        let dram = run_dram_ablation(Scale::Smoke).unwrap();
        assert_eq!(dram.settings.len(), 3);
        assert!(
            dram.dense[0] <= dram.dense[2],
            "dense should speed up with DRAM"
        );
        // DIP-CA throughput (where defined) is non-decreasing in DRAM size
        let dip_ca = dram
            .methods
            .iter()
            .find(|(m, _)| *m == MethodKind::DipCacheAware)
            .map(|(_, v)| v.clone())
            .unwrap();
        let defined: Vec<f64> = dip_ca.iter().flatten().copied().collect();
        assert!(!defined.is_empty());

        let flash = run_flash_ablation(Scale::Smoke).unwrap();
        assert!(
            flash.dense[0] < flash.dense[2],
            "dense scales with flash speed"
        );
        assert_eq!(flash.table.len(), 1 + ablation_methods().len());
    }
}
