//! Report formatting: markdown tables and CSV series, mirroring the rows and
//! columns the paper prints.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple table with a title, column headers and string rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Table {
    /// Table title (e.g. `"Table 1: dynamic sparsity methods at 50% MLP sparsity"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row should have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// A named (x, y) series, used for figure-style outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name (e.g. the pruning strategy).
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A figure: a title, axis labels and one or more series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Figure {
    /// Figure title (e.g. `"Figure 8: perplexity vs MLP density"`).
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Data series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Renders the figure as long-form CSV (`series,x,y`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "series,{},{}", self.x_label, self.y_label);
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "{},{x},{y}", s.name);
            }
        }
        out
    }

    /// Renders the figure as a markdown section with one table per series.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| series | {} | {} |", self.x_label, self.y_label);
        let _ = writeln!(out, "|---|---|---|");
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "| {} | {x:.4} | {y:.4} |", s.name);
            }
        }
        out
    }
}

/// Directory where experiment outputs are written
/// (`target/experiments/` relative to the workspace root, or the current
/// directory as a fallback).
pub fn output_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(base).join("experiments")
}

/// Writes a report file under [`output_dir`], creating the directory if
/// needed. Returns the path written to, or `None` if writing failed (the
/// experiment output is still returned to the caller / printed to stdout).
pub fn write_report(file_name: &str, contents: &str) -> Option<PathBuf> {
    let dir = output_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(file_name);
    match std::fs::write(&path, contents) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_round_trip() {
        let mut t = Table::new("Demo", &["method", "ppl"]);
        t.push_row(vec!["dense".into(), "4.29".into()]);
        t.push_row(vec!["dip".into(), "5.52".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| dense | 4.29 |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("method,ppl\n"));
        assert!(csv.contains("dip,5.52"));
    }

    #[test]
    fn figure_rendering() {
        let mut f = Figure::new("Fig", "density", "ppl");
        let mut s = Series::new("dip");
        s.push(0.5, 5.5);
        s.push(0.6, 5.0);
        f.push_series(s);
        let csv = f.to_csv();
        assert!(csv.contains("dip,0.5,5.5"));
        let md = f.to_markdown();
        assert!(md.contains("| dip | 0.5000 | 5.5000 |"));
    }

    #[test]
    fn report_writing_is_best_effort() {
        let path = write_report("unit_test_report.md", "# hello");
        if let Some(p) = path {
            let read = std::fs::read_to_string(p).unwrap();
            assert!(read.contains("hello"));
        }
    }
}
