//! Model registry: which synthetic models each experiment runs on.

use crate::scale::Scale;
use lm::ModelConfig;

/// The evaluation models, in the paper's column order
/// (Phi-3-Medium, Phi-3-Mini, Llama-3-8B, Mistral-7B analogues).
///
/// At [`Scale::Smoke`] a single tiny model is used so tests stay fast.
pub fn evaluation_models(scale: Scale) -> Vec<ModelConfig> {
    match scale {
        Scale::Smoke => vec![ModelConfig::tiny()],
        Scale::Quick | Scale::Full => vec![
            ModelConfig::phi3_medium_sim(),
            ModelConfig::phi3_mini_sim(),
            ModelConfig::llama8b_sim(),
            ModelConfig::mistral7b_sim(),
        ],
    }
}

/// The primary model used by single-model figures (Fig. 8, 9, 10, 11, 12):
/// the Phi-3-Medium analogue, or the tiny model at smoke scale.
pub fn primary_model(scale: Scale) -> ModelConfig {
    match scale {
        Scale::Smoke => ModelConfig::tiny(),
        Scale::Quick | Scale::Full => ModelConfig::phi3_medium_sim(),
    }
}

/// Deterministic seed used to synthesise a model's weights, derived from its
/// name so that every experiment sees the same weights for the same model.
pub fn model_seed(config: &ModelConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in config.name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_uses_the_tiny_model() {
        let models = evaluation_models(Scale::Smoke);
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].name, "tiny-test");
        assert_eq!(primary_model(Scale::Smoke).name, "tiny-test");
    }

    #[test]
    fn quick_scale_matches_the_papers_four_models() {
        let models = evaluation_models(Scale::Quick);
        assert_eq!(models.len(), 4);
        assert_eq!(models[0].name, "phi3-medium-sim");
        assert_eq!(primary_model(Scale::Quick).name, "phi3-medium-sim");
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = model_seed(&ModelConfig::phi3_medium_sim());
        let b = model_seed(&ModelConfig::phi3_medium_sim());
        let c = model_seed(&ModelConfig::mistral7b_sim());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
