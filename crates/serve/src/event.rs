//! Virtual-time event queue of the open-loop engine core.
//!
//! The open-loop driver serializes everything that happens in a serving
//! deployment — request arrivals, admission, preemption spills, resume
//! reloads, prefill-chunk progress and decode-batch settlement — onto one
//! virtual clock. This module supplies the ordering structure: a min-heap
//! of [`Event`]s keyed by `(time, push sequence)`, so equal-time events
//! fire in push order and a run's event order is a pure function of its
//! inputs. The engine pushes one [`EventKind::Arrival`] per request up
//! front, then pushes a completion event ([`EventKind::SpillDone`],
//! [`EventKind::ReloadDone`] or [`EventKind::UnitDone`]) every time it
//! occupies the memory bus; the clock only advances when one of those
//! events is popped, and arrivals landing inside a bus occupancy are
//! ingested at their own position in the order (see DESIGN.md §16).
//!
//! Fault injection ([`crate::fault`]) rides the same heap: cancellations,
//! deadlines, aborts, page losses, slow-lane windows and retry maturities
//! are ordinary `(time, seq)` events, so a seeded fault schedule replays
//! exactly and the determinism argument is unchanged (see DESIGN.md §17).
//! Only [`EventKind::Arrival`] counts toward `arrivals_pending`; fault
//! events never do, so the batch planner's multi-token guard — and with it
//! the fault-free engine's event order — is untouched by this module's
//! extension.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What an [`Event`] means when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A request arrives (index into the run's arrival vector).
    Arrival(usize),
    /// A preemption finished spilling the victim's KV state to Flash.
    SpillDone {
        /// Stream id of the parked session.
        stream: usize,
    },
    /// A resume finished reloading a parked session's KV state from Flash.
    ReloadDone {
        /// Stream id of the resumed session.
        stream: usize,
    },
    /// A dispatched service unit (prefill chunk, decode lane, or one
    /// sequential token) completed its last token.
    UnitDone {
        /// Schedule positions the unit served.
        tokens: usize,
    },
    /// Fault injection: the client cancels request `request`. Fires whether
    /// the request is queued, active or parked; if it already finished the
    /// event is a stale no-op. Never counted in `arrivals_pending`.
    CancelAt {
        /// Request id (`GenRequest::id`) of the cancelled request.
        request: u64,
    },
    /// Fault injection or per-request budget: request `request`'s wall-clock
    /// deadline expires. Stale if the request already finished. Never counted
    /// in `arrivals_pending`.
    DeadlineAt {
        /// Request id of the expiring request.
        request: u64,
    },
    /// Fault injection: a transient worker failure aborts request
    /// `request`'s session. Unlike [`EventKind::CancelAt`] the work is
    /// retryable — the engine re-offers it through admission if a
    /// `RetryPolicy` allows. Never counted in `arrivals_pending`.
    AbortAt {
        /// Request id of the aborted request.
        request: u64,
    },
    /// Fault injection: a paged-KV page is invalidated. `draw` picks the
    /// victim deterministically among the then-active paged sessions
    /// (`draw % eligible`); with no eligible session the event is a no-op.
    /// Never counted in `arrivals_pending`.
    PageLossAt {
        /// Seeded random draw used for deterministic victim selection.
        draw: u64,
    },
    /// Fault injection: the engine enters (`on = true`) or leaves
    /// (`on = false`) a slow-lane window during which every dispatched
    /// unit's latency is multiplied by the plan's straggler factor. Never
    /// counted in `arrivals_pending`.
    SlowLane {
        /// Whether the slow-lane window opens or closes.
        on: bool,
    },
    /// A backed-off retry matures: re-offer the request parked in retry
    /// slot `slot` through admission. Never counted in `arrivals_pending` —
    /// a retry is not a new arrival. (The slot indexes the engine's
    /// pending-retry table, not the arrival vector.)
    RetryAt {
        /// Index into the engine's pending-retry slots.
        slot: usize,
    },
}

/// One scheduled event on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual-clock time at which the event fires (seconds).
    pub time: f64,
    /// Push sequence number: the deterministic tie-break among equal-time
    /// events (earlier push fires first).
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

/// Heap entry with the ordering inverted so `BinaryHeap` (a max-heap) pops
/// the *earliest* `(time, seq)` first. Times are totally ordered via
/// `f64::total_cmp`; the engine validates arrival times finite, and every
/// completion time is a finite sum of finite latencies.
struct HeapEntry(Event);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // inverted: smaller (time, seq) ranks greater, so it pops first
        other
            .0
            .time
            .total_cmp(&self.0.time)
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

/// A deterministic min-queue of virtual-time events.
///
/// `(time, seq)` keys make the pop order total: two events never tie, so
/// the queue defines *the* event order of a run — the determinism argument
/// of the event-driven core reduces to "pushes are a pure function of the
/// inputs".
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
    arrivals_pending: usize,
}

impl EventQueue {
    /// An empty queue with room for `capacity` events (sized once per run,
    /// so steady-state pushes stay allocation-free).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            arrivals_pending: 0,
        }
    }

    /// Schedules `kind` to fire at `time`. Events pushed at the same time
    /// fire in push order.
    pub fn push_at(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite(), "event times are finite by validation");
        if matches!(kind, EventKind::Arrival(_)) {
            self.arrivals_pending += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { time, seq, kind }));
    }

    /// Pops the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: f64) -> Option<Event> {
        if self.heap.peek().is_some_and(|e| e.0.time <= now) {
            self.pop_next()
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally (the idle engine's clock
    /// jump).
    pub fn pop_next(&mut self) -> Option<Event> {
        let event = self.heap.pop().map(|e| e.0)?;
        if matches!(event.kind, EventKind::Arrival(_)) {
            self.arrivals_pending -= 1;
        }
        Some(event)
    }

    /// Fire time of the earliest scheduled event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Whether any [`EventKind::Arrival`] is still scheduled — the batch
    /// planner's guard: a multi-token unit may only form when no un-ingested
    /// arrival could change scheduling mid-unit.
    pub fn has_pending_arrival(&self) -> bool {
        self.arrivals_pending > 0
    }

    /// Scheduled events not yet popped.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::with_capacity(4);
        q.push_at(2.0, EventKind::Arrival(1));
        q.push_at(0.5, EventKind::Arrival(0));
        q.push_at(1.25, EventKind::UnitDone { tokens: 3 });
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(0.5));
        assert_eq!(q.pop_next().unwrap().kind, EventKind::Arrival(0));
        assert_eq!(
            q.pop_next().unwrap().kind,
            EventKind::UnitDone { tokens: 3 }
        );
        assert_eq!(q.pop_next().unwrap().kind, EventKind::Arrival(1));
        assert!(q.pop_next().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_fire_in_push_order() {
        let mut q = EventQueue::with_capacity(4);
        for i in 0..5 {
            q.push_at(1.0, EventKind::Arrival(i));
        }
        for i in 0..5 {
            assert_eq!(q.pop_next().unwrap().kind, EventKind::Arrival(i));
        }
    }

    #[test]
    fn pop_due_respects_the_clock() {
        let mut q = EventQueue::with_capacity(4);
        q.push_at(1.0, EventKind::SpillDone { stream: 7 });
        q.push_at(3.0, EventKind::ReloadDone { stream: 7 });
        assert!(q.pop_due(0.99).is_none());
        // the boundary is inclusive: an event at exactly `now` is due
        assert_eq!(
            q.pop_due(1.0).unwrap().kind,
            EventKind::SpillDone { stream: 7 }
        );
        assert!(q.pop_due(2.9).is_none());
        assert_eq!(q.pop_due(3.0).unwrap().time, 3.0);
        assert!(q.pop_due(f64::MAX).is_none());
    }

    #[test]
    fn arrival_bookkeeping_tracks_pending_arrivals_only() {
        let mut q = EventQueue::with_capacity(4);
        assert!(!q.has_pending_arrival());
        q.push_at(0.0, EventKind::UnitDone { tokens: 1 });
        assert!(!q.has_pending_arrival());
        q.push_at(5.0, EventKind::Arrival(0));
        q.push_at(6.0, EventKind::Arrival(1));
        assert!(q.has_pending_arrival());
        q.pop_next(); // the unit completion
        assert!(q.has_pending_arrival());
        q.pop_next();
        assert!(q.has_pending_arrival());
        q.pop_next();
        assert!(!q.has_pending_arrival());
    }

    #[test]
    fn pop_order_is_deterministic_across_identical_push_sequences() {
        let build = || {
            let mut q = EventQueue::with_capacity(8);
            for (t, i) in [(0.25, 0), (0.25, 1), (0.1, 2), (0.75, 3), (0.1, 4)] {
                q.push_at(t, EventKind::Arrival(i));
            }
            let mut order = Vec::new();
            while let Some(e) = q.pop_next() {
                order.push((e.time, e.kind));
            }
            order
        };
        assert_eq!(build(), build());
        let order = build();
        assert_eq!(
            order.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![0.1, 0.1, 0.25, 0.25, 0.75]
        );
        // equal times resolved by push order
        assert_eq!(order[0].1, EventKind::Arrival(2));
        assert_eq!(order[1].1, EventKind::Arrival(4));
    }
}
