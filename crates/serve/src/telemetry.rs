//! Engine-side observability: pre-registered handles over a
//! [`::telemetry::Telemetry`] pipeline.
//!
//! [`EngineTelemetry`] owns one pipeline (metrics registry + span ring +
//! virtual-time timeline) and the integer handles of every series the
//! serving engine records. All registration — the only allocating metrics
//! operation — happens in [`EngineTelemetry::new`] or at session admission;
//! the per-token path (`EngineTelemetry::on_token`) is index arithmetic
//! plus a ring write, so attaching telemetry keeps the engine's
//! zero-allocation steady state (`tests/zero_alloc.rs`).
//!
//! Telemetry is **observation-only**: the engine writes into it and never
//! reads a value back, so an attached (or detached, or exporting) pipeline
//! cannot change a [`crate::report::ServeReport`] —
//! `tests/open_loop_determinism.rs` pins this bitwise.

use crate::admission::ShedReason;
use crate::report::FinishReason;
use crate::request::{Tier, TIERS};
use ::telemetry::registry::{LATENCY_BOUNDS_S, WIDTH_BOUNDS};
use ::telemetry::{
    CounterId, EventKind, GaugeId, HistogramId, MetricsRegistry, Telemetry, TelemetryConfig,
    TraceRing,
};

/// Marks ring events that are not tied to one session's stream.
const NO_STREAM: u32 = u32::MAX;

/// Every pre-registered handle the engine records through.
#[derive(Debug)]
struct Handles {
    tokens: CounterId,
    prefill_tokens: CounterId,
    decode_tokens: CounterId,
    tier_tokens: [CounterId; 3],
    arrivals: CounterId,
    admitted: CounterId,
    sheds: [CounterId; 4],
    preemptions: CounterId,
    resumes: CounterId,
    kv_swap_bytes: CounterId,
    kv_swap_seconds: CounterId,
    cache_hits: CounterId,
    cache_misses: CounterId,
    cache_evictions: CounterId,
    flash_bytes: CounterId,
    dram_bytes: CounterId,
    completions: CounterId,
    slo_met: CounterId,
    ttft: HistogramId,
    tbt: HistogramId,
    queue_delay: HistogramId,
    token_latency: HistogramId,
    lane_width: HistogramId,
    chunk_height: HistogramId,
    queue_depth: GaugeId,
    active_sessions: GaugeId,
    parked_sessions: GaugeId,
    virtual_time: GaugeId,
    pool_idle: GaugeId,
    pool_reuses: GaugeId,
    pool_builds: GaugeId,
    batch_rows: GaugeId,
    batch_passes: GaugeId,
    trace_dropped: GaugeId,
    kv_pages_in_use: GaugeId,
    kv_pages_high_water: GaugeId,
    prefix_hits: CounterId,
    prefix_forks: CounterId,
    kernel_dispatch: GaugeId,
    pack_seconds: CounterId,
    pack_builds: GaugeId,
    cancellations: CounterId,
    deadline_expirations: CounterId,
    failures: CounterId,
    retries: CounterId,
    degraded: CounterId,
    kv_pages_lost: CounterId,
    kv_refill_tokens: CounterId,
}

fn register(registry: &mut MetricsRegistry) -> Handles {
    let latency = LATENCY_BOUNDS_S.as_slice();
    let width = WIDTH_BOUNDS.as_slice();
    let tier_counter = |r: &mut MetricsRegistry, tier: Tier| {
        r.counter(
            &format!("serve_tokens_total{{tier=\"{tier}\"}}"),
            "Tokens served (prefill + decode)",
        )
    };
    let shed_counter = |r: &mut MetricsRegistry, reason: ShedReason| {
        r.counter(
            &format!("serve_shed_total{{reason=\"{reason}\"}}"),
            "Arrivals shed by admission control",
        )
    };
    Handles {
        tokens: registry.counter("serve_tokens_total", "Tokens served (prefill + decode)"),
        prefill_tokens: registry.counter("serve_prefill_tokens_total", "Prompt tokens served"),
        decode_tokens: registry.counter("serve_decode_tokens_total", "Generated tokens served"),
        tier_tokens: [
            tier_counter(registry, TIERS[0]),
            tier_counter(registry, TIERS[1]),
            tier_counter(registry, TIERS[2]),
        ],
        arrivals: registry.counter("serve_arrivals_total", "Requests offered to admission"),
        admitted: registry.counter("serve_admitted_total", "Requests admitted to the queue"),
        sheds: [
            shed_counter(registry, ShedReason::ALL[0]),
            shed_counter(registry, ShedReason::ALL[1]),
            shed_counter(registry, ShedReason::ALL[2]),
            shed_counter(registry, ShedReason::ALL[3]),
        ],
        preemptions: registry.counter("serve_preemptions_total", "Sessions preempted"),
        resumes: registry.counter("serve_resumes_total", "Parked sessions resumed"),
        kv_swap_bytes: registry.counter(
            "serve_kv_swap_bytes_total",
            "KV bytes swapped to/from Flash by preemption",
        ),
        kv_swap_seconds: registry.counter(
            "serve_kv_swap_seconds_total",
            "Virtual seconds spent swapping KV state",
        ),
        cache_hits: registry.counter("serve_cache_hits_total", "Shared-cache column hits"),
        cache_misses: registry.counter("serve_cache_misses_total", "Shared-cache column misses"),
        cache_evictions: registry.counter(
            "serve_cache_evictions_total",
            "Shared-cache columns evicted",
        ),
        flash_bytes: registry.counter("serve_flash_bytes_total", "Bytes read from Flash"),
        dram_bytes: registry.counter("serve_dram_bytes_total", "Bytes read from DRAM"),
        completions: registry.counter("serve_completions_total", "Requests served to completion"),
        slo_met: registry.counter("serve_slo_met_total", "Completions that met their SLO"),
        ttft: registry.histogram(
            "serve_ttft_seconds",
            "Time to first token (from arrival)",
            latency,
        ),
        tbt: registry.histogram("serve_tbt_seconds", "Mean time between tokens", latency),
        queue_delay: registry.histogram(
            "serve_queue_delay_seconds",
            "Arrival to first KV-slot grant",
            latency,
        ),
        token_latency: registry.histogram(
            "serve_token_latency_seconds",
            "Priced service time of one token",
            latency,
        ),
        lane_width: registry.histogram(
            "serve_lane_width",
            "Sessions per cross-session batch lane",
            width,
        ),
        chunk_height: registry.histogram(
            "serve_chunk_height",
            "Prompt tokens per prefill chunk",
            width,
        ),
        queue_depth: registry.gauge("serve_queue_depth", "Waiting requests"),
        active_sessions: registry.gauge("serve_active_sessions", "Sessions holding a KV slot"),
        parked_sessions: registry.gauge("serve_parked_sessions", "Preempted (parked) sessions"),
        virtual_time: registry.gauge("serve_virtual_time_seconds", "Virtual clock of the run"),
        pool_idle: registry.gauge("serve_pool_idle_states", "Idle decode states in the pool"),
        pool_reuses: registry.gauge("serve_pool_reuses", "Decode states served from the pool"),
        pool_builds: registry.gauge("serve_pool_builds", "Decode states built from scratch"),
        batch_rows: registry.gauge(
            "serve_batch_rows_computed",
            "Rows computed by fused passes (lifetime of the scratch)",
        ),
        batch_passes: registry.gauge(
            "serve_batch_fused_passes",
            "Fused forward passes (lifetime of the scratch)",
        ),
        trace_dropped: registry.gauge(
            "serve_trace_dropped_events",
            "Span events overwritten because the ring was full",
        ),
        kv_pages_in_use: registry.gauge(
            "serve_kv_pages_in_use",
            "Pages currently allocated from the paged KV pool",
        ),
        kv_pages_high_water: registry.gauge(
            "serve_kv_pages_high_water",
            "High-water mark of allocated KV pages",
        ),
        prefix_hits: registry.counter(
            "serve_prefix_hits_total",
            "Admissions that mapped an already-prefilled shared prefix",
        ),
        prefix_forks: registry.counter(
            "serve_prefix_forks_total",
            "Copy-on-write page forks under the paged KV pool",
        ),
        kernel_dispatch: {
            // Info-style gauge: the selected microkernel per op rides in the
            // labels, the value is a constant 1 (set at construction).
            let d = tensor::kernels::dispatch();
            registry.gauge(
                &format!(
                    "serve_kernel_dispatch_info{{arch=\"{}\",matvec=\"{}\",matvec_cols=\"{}\",matvec_batch=\"{}\",matmul=\"{}\"}}",
                    d.arch, d.matvec, d.matvec_cols, d.matvec_batch, d.matmul
                ),
                "Selected GEMM microkernel family per op (labels carry the names)",
            )
        },
        pack_seconds: registry.counter(
            "serve_pack_seconds_total",
            "Wall seconds spent packing weight panels (mirror builds)",
        ),
        pack_builds: registry.gauge(
            "serve_pack_builds",
            "Packed-panel mirror builds (lifetime of the scratch)",
        ),
        cancellations: registry.counter(
            "serve_cancelled_total",
            "Requests retired by client cancellation (hang-up or patience cap)",
        ),
        deadline_expirations: registry.counter(
            "serve_deadline_expired_total",
            "Requests retired because their wall-clock deadline passed",
        ),
        failures: registry.counter(
            "serve_failed_total",
            "Requests retired as failed (worker abort with retries exhausted)",
        ),
        retries: registry.counter(
            "serve_retries_total",
            "Aborted attempts re-offered through admission after backoff",
        ),
        degraded: registry.counter(
            "serve_degraded_total",
            "Admissions served with a degraded (cheaper) strategy",
        ),
        kv_pages_lost: registry.counter(
            "serve_kv_pages_lost_total",
            "KV pages invalidated by injected page-loss faults",
        ),
        kv_refill_tokens: registry.counter(
            "serve_kv_refill_tokens_total",
            "Tokens queued for re-prefill after KV page loss",
        ),
    }
}

/// The serving engine's attachable telemetry: one pipeline plus the
/// pre-registered handles of every engine series. Construct with
/// [`EngineTelemetry::new`] and attach via
/// [`crate::engine::ServeEngine::attach_telemetry`]; after the run, read or
/// export through [`EngineTelemetry::pipeline`] (e.g.
/// [`::telemetry::render_prometheus`]).
#[derive(Debug)]
pub struct EngineTelemetry {
    tel: Telemetry,
    h: Handles,
    /// `stream → per-strategy token counter`, grown at admission (the only
    /// allocating hot-loop-adjacent operation; admission is not per-token).
    stream_strategy: Vec<CounterId>,
}

impl EngineTelemetry {
    /// Creates a pipeline and registers every engine series. `const_labels`
    /// are baked into each series name (e.g. `cell="dense/fifo"` when many
    /// engines export into one exposition).
    pub fn new(config: TelemetryConfig, const_labels: &[(&str, &str)]) -> Self {
        let mut tel = Telemetry::new(config);
        tel.registry = MetricsRegistry::with_const_labels(const_labels);
        let h = register(&mut tel.registry);
        tel.registry.set(h.kernel_dispatch, 1.0);
        EngineTelemetry {
            tel,
            h,
            stream_strategy: Vec::new(),
        }
    }

    /// The underlying pipeline (registry, ring, timeline).
    pub fn pipeline(&self) -> &Telemetry {
        &self.tel
    }

    /// Mutable access to the underlying pipeline.
    pub fn pipeline_mut(&mut self) -> &mut Telemetry {
        &mut self.tel
    }

    /// The metrics registry (for value reads and Prometheus rendering).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.tel.registry
    }

    /// The span ring (for JSONL / chrome-trace rendering).
    pub fn ring(&self) -> &TraceRing {
        &self.tel.ring
    }

    /// The virtual-time timeline.
    pub fn timeline(&self) -> &::telemetry::Timeline {
        &self.tel.timeline
    }

    pub(crate) fn on_run_start(&mut self, now: f64) {
        self.tel.event(EventKind::RunStart, NO_STREAM, now, 0, 0.0);
    }

    /// Final snapshot of a run: gauges of the end state plus the `RunEnd`
    /// event (`a` = total schedule positions, `b` = makespan).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_run_end(
        &mut self,
        now: f64,
        steps: u64,
        active: usize,
        parked: usize,
        queue_depth: usize,
        pool: &lm::DecodeStatePool,
        batch_rows: u64,
        batch_passes: u64,
        pack_nanos: u64,
        pack_builds: u64,
    ) {
        let r = &mut self.tel.registry;
        r.set(self.h.active_sessions, active as f64);
        r.set(self.h.parked_sessions, parked as f64);
        r.set(self.h.queue_depth, queue_depth as f64);
        r.set(self.h.virtual_time, now);
        r.set(self.h.pool_idle, pool.idle() as f64);
        r.set(self.h.pool_reuses, pool.reuse_count() as f64);
        r.set(self.h.pool_builds, pool.build_count() as f64);
        r.set(self.h.batch_rows, batch_rows as f64);
        r.set(self.h.batch_passes, batch_passes as f64);
        r.add(self.h.pack_seconds, pack_nanos as f64 * 1e-9);
        r.set(self.h.pack_builds, pack_builds as f64);
        let dropped = self.tel.ring.dropped() as f64;
        self.tel.registry.set(self.h.trace_dropped, dropped);
        self.tel
            .event(EventKind::RunEnd, NO_STREAM, now, steps, now);
    }

    pub(crate) fn on_arrival(&mut self, verdict: Option<ShedReason>, queue_depth: usize, at: f64) {
        self.tel.registry.inc(self.h.arrivals);
        match verdict {
            None => {
                self.tel.registry.inc(self.h.admitted);
                self.tel
                    .registry
                    .set(self.h.queue_depth, queue_depth as f64);
                self.tel
                    .event(EventKind::Admit, NO_STREAM, at, queue_depth as u64, at);
            }
            Some(reason) => {
                self.tel.registry.inc(self.h.sheds[reason.index()]);
                self.tel
                    .event(EventKind::Shed, NO_STREAM, at, reason.index() as u64, at);
            }
        }
    }

    /// A queued request took a KV slot. Registers (idempotently) the
    /// request's per-strategy token counter and maps it to `stream`.
    pub(crate) fn on_slot_granted(&mut self, stream: usize, strategy_label: &str) {
        let id = self.tel.registry.counter(
            &format!("serve_tokens_total{{strategy=\"{strategy_label}\"}}"),
            "Tokens served (prefill + decode)",
        );
        if self.stream_strategy.len() <= stream {
            self.stream_strategy.resize(stream + 1, id);
        }
        self.stream_strategy[stream] = id;
    }

    pub(crate) fn on_preempt(&mut self, stream: usize, positions: usize, swap_s: f64, now: f64) {
        self.tel.registry.inc(self.h.preemptions);
        self.tel.registry.add(self.h.kv_swap_seconds, swap_s);
        self.tel.event(
            EventKind::Preempt,
            stream as u32,
            now,
            positions as u64,
            swap_s,
        );
    }

    pub(crate) fn on_resume(&mut self, stream: usize, positions: usize, swap_s: f64, now: f64) {
        self.tel.registry.inc(self.h.resumes);
        self.tel.registry.add(self.h.kv_swap_seconds, swap_s);
        self.tel.event(
            EventKind::Resume,
            stream as u32,
            now,
            positions as u64,
            swap_s,
        );
    }

    pub(crate) fn on_kv_swap_bytes(&mut self, bytes: f64) {
        self.tel.registry.add(self.h.kv_swap_bytes, bytes);
    }

    /// A prefix-sharing admission hit. Allocation-free (pre-registered
    /// counter).
    pub(crate) fn on_prefix_hit(&mut self) {
        self.tel.registry.inc(self.h.prefix_hits);
    }

    /// End-of-run snapshot of the paged KV pool: pages in use / high water
    /// become gauges, and the run's COW forks accumulate into the fork
    /// counter.
    pub(crate) fn on_paged_kv(&mut self, in_use: usize, high_water: usize, forks_this_run: u64) {
        let r = &mut self.tel.registry;
        r.set(self.h.kv_pages_in_use, in_use as f64);
        r.set(self.h.kv_pages_high_water, high_water as f64);
        r.add(self.h.prefix_forks, forks_this_run as f64);
    }

    /// One planned batch: a prefill chunk or a cross-session lane of `width`
    /// schedule positions.
    pub(crate) fn on_plan(&mut self, is_chunk: bool, width: usize, now: f64) {
        if is_chunk {
            self.tel.registry.observe(self.h.chunk_height, width as f64);
            self.tel
                .event(EventKind::PlanChunk, NO_STREAM, now, width as u64, 0.0);
        } else {
            self.tel.registry.observe(self.h.lane_width, width as f64);
            self.tel
                .event(EventKind::PlanLane, NO_STREAM, now, width as u64, 0.0);
        }
    }

    /// One served, priced and settled token. Allocation-free.
    #[inline]
    pub(crate) fn on_token(
        &mut self,
        stream: usize,
        tier: Tier,
        cost: &hwsim::TokenCost,
        was_prefill: bool,
        now: f64,
    ) {
        let r = &mut self.tel.registry;
        r.inc(self.h.tokens);
        r.inc(if was_prefill {
            self.h.prefill_tokens
        } else {
            self.h.decode_tokens
        });
        r.inc(self.h.tier_tokens[tier.index()]);
        if let Some(&id) = self.stream_strategy.get(stream) {
            r.inc(id);
        }
        r.add(self.h.cache_hits, cost.hits as f64);
        r.add(self.h.cache_misses, cost.misses as f64);
        r.add(self.h.cache_evictions, cost.evictions as f64);
        r.add(self.h.flash_bytes, cost.flash_bytes);
        r.add(self.h.dram_bytes, cost.dram_bytes);
        r.observe(self.h.token_latency, cost.latency_s);
        r.set(self.h.virtual_time, now);
        self.tel
            .timeline
            .observe_token(now, was_prefill, cost.hits as u64, cost.misses as u64);
        self.tel.event(
            EventKind::TokenSettle,
            stream as u32,
            now,
            ((cost.hits as u64) << 32) | (cost.misses as u64 & 0xffff_ffff),
            cost.latency_s,
        );
    }

    /// A closed-batch token (no virtual clock, no pricing): counters only,
    /// stamped at virtual time 0.
    #[inline]
    pub(crate) fn on_closed_token(&mut self, stream: usize, was_prefill: bool) {
        let r = &mut self.tel.registry;
        r.inc(self.h.tokens);
        r.inc(if was_prefill {
            self.h.prefill_tokens
        } else {
            self.h.decode_tokens
        });
        self.tel
            .event(EventKind::TokenSettle, stream as u32, 0.0, 0, 0.0);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_complete(
        &mut self,
        stream: usize,
        generated: usize,
        ttft_s: f64,
        tbt_mean_s: f64,
        queue_delay_s: f64,
        slo_met: bool,
        now: f64,
    ) {
        let r = &mut self.tel.registry;
        r.inc(self.h.completions);
        if slo_met {
            r.inc(self.h.slo_met);
        }
        r.observe(self.h.ttft, ttft_s);
        r.observe(self.h.tbt, tbt_mean_s);
        r.observe(self.h.queue_delay, queue_delay_s);
        self.tel.timeline.observe_completion(now, slo_met);
        self.tel.event(
            EventKind::Complete,
            stream as u32,
            now,
            generated as u64,
            now,
        );
    }

    /// A request ended for a non-[`FinishReason::Completed`] reason —
    /// whether it was withdrawn from the waiting queue, pulled out of a
    /// retry-backoff slot, or retired mid-service. Allocation-free
    /// (pre-registered counters).
    pub(crate) fn on_fault_finish(&mut self, finish: FinishReason, now: f64) {
        let (id, code) = match finish {
            FinishReason::Completed => return,
            FinishReason::Cancelled => (self.h.cancellations, 0),
            FinishReason::DeadlineExpired => (self.h.deadline_expirations, 1),
            FinishReason::Failed => (self.h.failures, 2),
        };
        self.tel.registry.inc(id);
        self.tel.event(EventKind::Fault, NO_STREAM, now, code, now);
    }

    /// An aborted attempt matured from its backoff slot and was re-offered
    /// to admission.
    pub(crate) fn on_retry(&mut self, now: f64) {
        self.tel.registry.inc(self.h.retries);
        self.tel.event(EventKind::Fault, NO_STREAM, now, 4, now);
    }

    /// An admission substituted a degraded (cheaper) strategy for the
    /// requested one.
    pub(crate) fn on_degrade(&mut self, stream: usize, now: f64) {
        self.tel.registry.inc(self.h.degraded);
        self.tel.event(EventKind::Fault, stream as u32, now, 5, now);
    }

    /// Injected KV page loss struck an active session: `pages` were
    /// invalidated and `tokens` queued for re-prefill.
    pub(crate) fn on_page_loss(&mut self, stream: usize, pages: usize, tokens: usize, now: f64) {
        self.tel.registry.add(self.h.kv_pages_lost, pages as f64);
        self.tel
            .registry
            .add(self.h.kv_refill_tokens, tokens as f64);
        self.tel.event(EventKind::Fault, stream as u32, now, 3, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_register_once_and_record() {
        let mut t = EngineTelemetry::new(TelemetryConfig::default().with_ring_capacity(16), &[]);
        let series_before = t.registry().len();
        t.on_run_start(0.0);
        t.on_arrival(None, 1, 0.0);
        t.on_arrival(Some(ShedReason::QueueFull), 1, 0.01);
        t.on_slot_granted(0, "dense");
        let cost = hwsim::TokenCost {
            dram_bytes: 10.0,
            flash_bytes: 4.0,
            latency_s: 0.002,
            hits: 3,
            misses: 1,
            evictions: 1,
        };
        t.on_token(0, Tier::Premium, &cost, true, 0.002);
        t.on_token(0, Tier::Premium, &cost, false, 0.004);
        t.on_complete(0, 1, 0.002, 0.002, 0.0, true, 0.004);

        let r = t.registry();
        // only the per-strategy counter was added after construction
        assert_eq!(r.len(), series_before + 1);
        assert_eq!(r.counter_value(t.h.tokens), 2.0);
        assert_eq!(r.counter_value(t.h.prefill_tokens), 1.0);
        assert_eq!(r.counter_value(t.h.tier_tokens[Tier::Premium.index()]), 2.0);
        assert_eq!(
            r.counter_value(t.h.sheds[ShedReason::QueueFull.index()]),
            1.0
        );
        assert_eq!(r.counter_value(t.h.cache_evictions), 2.0);
        assert_eq!(r.histogram_count(t.h.ttft), 1);
        assert_eq!(t.timeline().total_tokens(), 2);
        assert!(t.ring().len() >= 5);

        t.on_prefix_hit();
        t.on_paged_kv(5, 9, 3);
        let r = t.registry();
        assert_eq!(r.counter_value(t.h.prefix_hits), 1.0);
        assert_eq!(r.counter_value(t.h.prefix_forks), 3.0);
        assert_eq!(r.gauge_value(t.h.kv_pages_in_use), 5.0);
        assert_eq!(r.gauge_value(t.h.kv_pages_high_water), 9.0);
    }

    #[test]
    fn fault_hooks_record_into_preregistered_series() {
        let mut t = EngineTelemetry::new(TelemetryConfig::default().with_ring_capacity(16), &[]);
        let series_before = t.registry().len();
        t.on_fault_finish(FinishReason::Completed, 0.0);
        t.on_fault_finish(FinishReason::Cancelled, 0.1);
        t.on_fault_finish(FinishReason::DeadlineExpired, 0.2);
        t.on_fault_finish(FinishReason::Failed, 0.3);
        t.on_retry(0.4);
        t.on_degrade(2, 0.5);
        t.on_page_loss(1, 6, 48, 0.6);
        let r = t.registry();
        assert_eq!(r.len(), series_before, "fault hooks never register");
        assert_eq!(r.counter_value(t.h.cancellations), 1.0);
        assert_eq!(r.counter_value(t.h.deadline_expirations), 1.0);
        assert_eq!(r.counter_value(t.h.failures), 1.0);
        assert_eq!(r.counter_value(t.h.retries), 1.0);
        assert_eq!(r.counter_value(t.h.degraded), 1.0);
        assert_eq!(r.counter_value(t.h.kv_pages_lost), 6.0);
        assert_eq!(r.counter_value(t.h.kv_refill_tokens), 48.0);
        // `Completed` records nothing: 6 fault events landed in the ring
        assert_eq!(
            t.ring()
                .iter()
                .filter(|e| e.kind == EventKind::Fault)
                .count(),
            6
        );
    }

    #[test]
    fn const_labels_reach_every_series() {
        let t = EngineTelemetry::new(TelemetryConfig::default(), &[("cell", "a/b")]);
        let text = ::telemetry::render_prometheus(t.registry());
        ::telemetry::check_exposition(&text).unwrap();
        assert!(text.contains("serve_tokens_total{cell=\"a/b\"}"));
        assert!(text.contains("serve_shed_total{reason=\"queue-full\",cell=\"a/b\"}"));
    }

    #[test]
    fn kernel_dispatch_info_gauge_carries_selected_kernels() {
        let t = EngineTelemetry::new(TelemetryConfig::default(), &[]);
        let d = tensor::kernels::dispatch();
        let text = ::telemetry::render_prometheus(t.registry());
        ::telemetry::check_exposition(&text).unwrap();
        // the info gauge is 1 and its labels name the selected microkernels
        assert!(text.contains(&format!(
            "serve_kernel_dispatch_info{{arch=\"{}\",matvec=\"{}\"",
            d.arch, d.matvec
        )));
        assert!(text.contains("serve_pack_seconds_total"));
        assert!(text.contains("serve_pack_builds"));
        assert_eq!(t.registry().gauge_value(t.h.kernel_dispatch), 1.0);
    }
}
