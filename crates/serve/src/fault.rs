//! Deterministic fault injection and lifecycle-hardening policies.
//!
//! Real fleets are defined by how they fail: clients hang up, deadlines
//! expire, workers die mid-decode, memory gets reclaimed underneath a
//! session, and stragglers stretch a lane's service time. This module makes
//! those failures *first-class and reproducible*: a [`FaultPlan`] is a
//! seeded description of a fault schedule, and a [`FaultInjector`] expands
//! it into typed events on the engine's [`EventQueue`] —
//! the same `(time, seq)` heap that orders arrivals and service
//! completions. Because every draw comes from one `StdRng` seeded by
//! `FaultPlan::seed`, and the expansion touches nothing else, a chaos run
//! is exactly as deterministic as a fault-free one: the event order is a
//! pure function of `(model, config, requests, plan)` and any schedule
//! replays bitwise (see DESIGN.md §17).
//!
//! The fault taxonomy:
//!
//! * **Client cancel** ([`EventKind::CancelAt`]) — the user hangs up. The
//!   session retires as [`FinishReason::Cancelled`](crate::FinishReason)
//!   and is *not* retried (there is nobody left to answer).
//! * **Deadline expiry** ([`EventKind::DeadlineAt`]) — a per-request wall
//!   budget from arrival runs out, either from the request's own
//!   `deadline_s` or injected by the plan. Retires as `DeadlineExpired`.
//! * **Abort** ([`EventKind::AbortAt`]) — a transient worker failure kills
//!   the session. The work is retryable: with a [`RetryPolicy`] the engine
//!   re-offers the request through admission after virtual-time exponential
//!   backoff; once attempts are exhausted it retires as `Failed`.
//! * **KV page loss** ([`EventKind::PageLossAt`]) — a paged-KV page is
//!   invalidated. The deterministic victim rewinds to its last whole page
//!   boundary (never below its shared prefix) and re-prefills the lost
//!   suffix; outputs are unchanged (recomputed KV is bitwise identical),
//!   only timing shifts.
//! * **Slow lane** ([`EventKind::SlowLane`]) — a straggler window during
//!   which every dispatched unit's latency is multiplied by
//!   [`SlowLaneWindow::factor`].
//!
//! [`RetryPolicy`] and [`DegradePolicy`] are not faults but the hardening
//! levers evaluated against them: bounded retry with exponential backoff,
//! and graceful strategy degradation along the spec-declared fallback chain
//! ([`StrategySpec::degraded`](dip_core::spec::StrategySpec::degraded))
//! instead of shedding under queue pressure.

use crate::error::{Result, ServeError};
use crate::event::{EventKind, EventQueue};
use crate::request::GenRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A straggler window: between `start_s` and `start_s + duration_s` every
/// dispatched unit's latency is multiplied by `factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowLaneWindow {
    /// Virtual-time start of the window (seconds).
    pub start_s: f64,
    /// Window length (seconds).
    pub duration_s: f64,
    /// Latency multiplier applied while the window is open (> 0; values
    /// above 1 model a straggler, below 1 a burst of headroom).
    pub factor: f64,
}

/// A seeded, replayable fault schedule.
///
/// Rates are per-request probabilities in `[0, 1]`; windows bound the
/// offset after a request's arrival at which its fault fires. Page loss is
/// a Poisson process with mean gap [`FaultPlan::page_loss_every_s`] over
/// `[0, page_loss_horizon_s]`. All draws come from one RNG seeded by
/// [`FaultPlan::seed`], so the expanded schedule is a pure function of the
/// plan and the arrival vector.
///
/// An empty plan ([`FaultPlan::none`]) expands to zero events and the
/// engine's report is bitwise identical to a run without a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG (independent of the engine RNG).
    pub seed: u64,
    /// Per-request probability that the client cancels.
    pub cancel_rate: f64,
    /// A drawn cancel fires uniformly within this many seconds of arrival.
    pub cancel_window_s: f64,
    /// Per-request probability of an injected deadline.
    pub deadline_rate: f64,
    /// An injected deadline expires uniformly within this many seconds of
    /// arrival.
    pub deadline_window_s: f64,
    /// Per-request probability of a transient worker abort.
    pub abort_rate: f64,
    /// A drawn abort fires uniformly within this many seconds of arrival.
    pub abort_window_s: f64,
    /// Mean gap between paged-KV page-loss events (seconds; 0 disables).
    pub page_loss_every_s: f64,
    /// Horizon over which page-loss events are drawn (seconds).
    pub page_loss_horizon_s: f64,
    /// Optional straggler window.
    pub slow_lane: Option<SlowLaneWindow>,
}

impl FaultPlan {
    /// The empty plan: no faults, expands to zero events.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            cancel_rate: 0.0,
            cancel_window_s: 0.0,
            deadline_rate: 0.0,
            deadline_window_s: 0.0,
            abort_rate: 0.0,
            abort_window_s: 0.0,
            page_loss_every_s: 0.0,
            page_loss_horizon_s: 0.0,
            slow_lane: None,
        }
    }

    /// Whether the plan can produce any fault event at all.
    pub fn is_empty(&self) -> bool {
        self.cancel_rate == 0.0
            && self.deadline_rate == 0.0
            && self.abort_rate == 0.0
            && self.page_loss_every_s == 0.0
            && self.slow_lane.is_none()
    }

    /// Whether the plan can inject page-loss events (which require the
    /// engine to run with paged KV).
    pub fn wants_page_loss(&self) -> bool {
        self.page_loss_every_s > 0.0 && self.page_loss_horizon_s > 0.0
    }

    /// Validates rates, windows and the slow-lane factor.
    pub fn validate(&self) -> Result<()> {
        let prob = |name: &'static str, v: f64| -> Result<()> {
            if !(0.0..=1.0).contains(&v) {
                return Err(ServeError::InvalidConfig {
                    field: name,
                    reason: format!("must be a probability in [0, 1], got {v}"),
                });
            }
            Ok(())
        };
        let span = |name: &'static str, v: f64| -> Result<()> {
            if !v.is_finite() || v < 0.0 {
                return Err(ServeError::InvalidConfig {
                    field: name,
                    reason: format!("must be finite and >= 0, got {v}"),
                });
            }
            Ok(())
        };
        prob("fault_plan.cancel_rate", self.cancel_rate)?;
        prob("fault_plan.deadline_rate", self.deadline_rate)?;
        prob("fault_plan.abort_rate", self.abort_rate)?;
        span("fault_plan.cancel_window_s", self.cancel_window_s)?;
        span("fault_plan.deadline_window_s", self.deadline_window_s)?;
        span("fault_plan.abort_window_s", self.abort_window_s)?;
        span("fault_plan.page_loss_every_s", self.page_loss_every_s)?;
        span("fault_plan.page_loss_horizon_s", self.page_loss_horizon_s)?;
        if self.deadline_rate > 0.0 && self.deadline_window_s == 0.0 {
            return Err(ServeError::InvalidConfig {
                field: "fault_plan.deadline_window_s",
                reason: "must be > 0 when deadline_rate > 0 (a zero-width \
                         deadline expires every drawn request at arrival)"
                    .into(),
            });
        }
        if self.page_loss_every_s > 0.0 && self.page_loss_horizon_s == 0.0 {
            return Err(ServeError::InvalidConfig {
                field: "fault_plan.page_loss_horizon_s",
                reason: "must be > 0 when page_loss_every_s > 0".into(),
            });
        }
        if let Some(w) = &self.slow_lane {
            span("fault_plan.slow_lane.start_s", w.start_s)?;
            if !w.duration_s.is_finite() || w.duration_s <= 0.0 {
                return Err(ServeError::InvalidConfig {
                    field: "fault_plan.slow_lane.duration_s",
                    reason: format!("must be finite and > 0, got {}", w.duration_s),
                });
            }
            if !w.factor.is_finite() || w.factor <= 0.0 {
                return Err(ServeError::InvalidConfig {
                    field: "fault_plan.slow_lane.factor",
                    reason: format!("must be finite and > 0, got {}", w.factor),
                });
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Bounded retry with virtual-time exponential backoff.
///
/// A retryable failure (worker abort) is re-offered through admission
/// `backoff_base_s * 2^(attempt - 1)` seconds after the failure, up to
/// `max_attempts` total attempts (the first service counts as attempt 1).
/// Re-offers run the full admission decision chain — a saturated system
/// may shed a retry like any arrival — but are not counted as new
/// arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed per request, including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt (seconds); doubles per attempt.
    pub backoff_base_s: f64,
}

impl RetryPolicy {
    /// Validates the attempt bound and backoff base.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(ServeError::InvalidConfig {
                field: "retry.max_attempts",
                reason: "must be >= 1 (the first attempt counts)".into(),
            });
        }
        if !self.backoff_base_s.is_finite() || self.backoff_base_s < 0.0 {
            return Err(ServeError::InvalidConfig {
                field: "retry.backoff_base_s",
                reason: format!("must be finite and >= 0, got {}", self.backoff_base_s),
            });
        }
        Ok(())
    }

    /// Backoff delay before re-offering a request that has already been
    /// served `attempt` times (so `attempt >= 1`).
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        self.backoff_base_s * f64::from(1u32 << (attempt - 1).min(20))
    }
}

/// Graceful degradation under queue pressure: instead of letting the
/// admission queue grow (or shedding), downgrade an admitted request's
/// strategy along the spec-declared fallback chain
/// ([`StrategySpec::degraded`](dip_core::spec::StrategySpec::degraded)) —
/// one step per `queue_depth_threshold` requests already waiting, capped at
/// `max_steps`. Degraded sessions are counted per tier in the report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradePolicy {
    /// Queue depth per degradation step (>= 1): a request admitted with
    /// `k * queue_depth_threshold` requests already queued degrades `k`
    /// steps (capped).
    pub queue_depth_threshold: usize,
    /// Maximum fallback-chain steps per request (>= 1).
    pub max_steps: usize,
}

impl DegradePolicy {
    /// Validates the threshold and step cap.
    pub fn validate(&self) -> Result<()> {
        if self.queue_depth_threshold == 0 {
            return Err(ServeError::InvalidConfig {
                field: "degrade.queue_depth_threshold",
                reason: "must be >= 1".into(),
            });
        }
        if self.max_steps == 0 {
            return Err(ServeError::InvalidConfig {
                field: "degrade.max_steps",
                reason: "must be >= 1 (a zero-step policy is `None`)".into(),
            });
        }
        Ok(())
    }

    /// Fallback-chain steps to take for a request admitted with
    /// `queue_depth` requests already waiting.
    pub fn steps_for_depth(&self, queue_depth: usize) -> usize {
        (queue_depth / self.queue_depth_threshold).min(self.max_steps)
    }
}

/// Expands a [`FaultPlan`] into events on the engine's queue.
///
/// The expansion is performed once, before the run's first event pops, and
/// draws from a private RNG — it never touches the engine's sampling RNG,
/// so token outputs are unchanged by the mere presence of a plan. Draw
/// order is fixed (per-request gates in arrival order, then page losses,
/// then the slow-lane window), making the schedule a pure function of
/// `(plan, arrivals)`.
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// An injector seeded from the plan.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(plan.seed),
        }
    }

    /// Draws the plan's fault schedule over `arrivals` and pushes it onto
    /// `events`. Returns the number of events scheduled. An empty plan
    /// pushes nothing (and draws nothing), so the queue — and with it the
    /// run — is bitwise identical to a plan-free run.
    pub fn schedule(
        &mut self,
        plan: &FaultPlan,
        arrivals: &[GenRequest],
        events: &mut EventQueue,
    ) -> usize {
        let mut scheduled = 0;
        for request in arrivals {
            if plan.cancel_rate > 0.0 && self.rng.gen_bool(plan.cancel_rate) {
                let offset = self.rng.gen::<f64>() * plan.cancel_window_s;
                events.push_at(
                    request.arrival_s + offset,
                    EventKind::CancelAt {
                        request: request.id,
                    },
                );
                scheduled += 1;
            }
            if plan.abort_rate > 0.0 && self.rng.gen_bool(plan.abort_rate) {
                let offset = self.rng.gen::<f64>() * plan.abort_window_s;
                events.push_at(
                    request.arrival_s + offset,
                    EventKind::AbortAt {
                        request: request.id,
                    },
                );
                scheduled += 1;
            }
            if plan.deadline_rate > 0.0 && self.rng.gen_bool(plan.deadline_rate) {
                // Uniform over the *upper half* of the window: an injected
                // deadline should be tight, not instantly expired.
                let offset = (0.5 + 0.5 * self.rng.gen::<f64>()) * plan.deadline_window_s;
                events.push_at(
                    request.arrival_s + offset,
                    EventKind::DeadlineAt {
                        request: request.id,
                    },
                );
                scheduled += 1;
            }
        }
        if plan.wants_page_loss() {
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival gaps: a Poisson process with
                // mean gap `page_loss_every_s`.
                let u: f64 = self.rng.gen();
                t += -(1.0 - u).ln() * plan.page_loss_every_s;
                if !t.is_finite() || t > plan.page_loss_horizon_s {
                    break;
                }
                let draw: u64 = self.rng.gen();
                events.push_at(t, EventKind::PageLossAt { draw });
                scheduled += 1;
            }
        }
        if let Some(w) = &plan.slow_lane {
            events.push_at(w.start_s, EventKind::SlowLane { on: true });
            events.push_at(w.start_s + w.duration_s, EventKind::SlowLane { on: false });
            scheduled += 2;
        }
        scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::spec::StrategySpec;

    fn requests(n: usize) -> Vec<GenRequest> {
        (0..n)
            .map(|i| {
                GenRequest::new(i as u64, vec![1, 2, 3], 4, StrategySpec::Dense).at(i as f64 * 0.5)
            })
            .collect()
    }

    fn chaos_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            cancel_rate: 0.3,
            cancel_window_s: 2.0,
            deadline_rate: 0.2,
            deadline_window_s: 3.0,
            abort_rate: 0.25,
            abort_window_s: 2.5,
            page_loss_every_s: 1.0,
            page_loss_horizon_s: 8.0,
            slow_lane: Some(SlowLaneWindow {
                start_s: 1.0,
                duration_s: 2.0,
                factor: 3.0,
            }),
        }
    }

    fn drain(events: &mut EventQueue) -> Vec<(f64, EventKind)> {
        let mut out = Vec::new();
        while let Some(e) = events.pop_next() {
            out.push((e.time, e.kind));
        }
        out
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        plan.validate().unwrap();
        let mut events = EventQueue::with_capacity(8);
        let n = FaultInjector::new(&plan).schedule(&plan, &requests(16), &mut events);
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn same_seed_replays_the_exact_schedule() {
        let plan = chaos_plan(42);
        plan.validate().unwrap();
        let build = || {
            let mut events = EventQueue::with_capacity(64);
            FaultInjector::new(&plan).schedule(&plan, &requests(32), &mut events);
            drain(&mut events)
        };
        let a = build();
        let b = build();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        // same-seed bitwise: compare times exactly
        for ((ta, ka), (tb, kb)) in a.iter().zip(&b) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn different_seeds_draw_different_schedules() {
        let a_plan = chaos_plan(1);
        let b_plan = chaos_plan(2);
        let schedule = |plan: &FaultPlan| {
            let mut events = EventQueue::with_capacity(64);
            FaultInjector::new(plan).schedule(plan, &requests(32), &mut events);
            drain(&mut events)
        };
        assert_ne!(schedule(&a_plan), schedule(&b_plan));
    }

    #[test]
    fn fault_events_never_count_as_arrivals() {
        let plan = chaos_plan(7);
        let mut events = EventQueue::with_capacity(64);
        let n = FaultInjector::new(&plan).schedule(&plan, &requests(32), &mut events);
        assert!(n > 0);
        assert_eq!(events.len(), n);
        assert!(!events.has_pending_arrival());
    }

    #[test]
    fn slow_lane_opens_and_closes() {
        let plan = FaultPlan {
            slow_lane: Some(SlowLaneWindow {
                start_s: 2.0,
                duration_s: 1.5,
                factor: 4.0,
            }),
            ..FaultPlan::none()
        };
        assert!(!plan.is_empty());
        let mut events = EventQueue::with_capacity(4);
        FaultInjector::new(&plan).schedule(&plan, &[], &mut events);
        let order = drain(&mut events);
        assert_eq!(
            order,
            vec![
                (2.0, EventKind::SlowLane { on: true }),
                (3.5, EventKind::SlowLane { on: false }),
            ]
        );
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let bad_rate = FaultPlan {
            cancel_rate: 1.5,
            ..FaultPlan::none()
        };
        assert!(bad_rate.validate().is_err());
        let bad_window = FaultPlan {
            deadline_rate: 0.5,
            deadline_window_s: 0.0,
            ..FaultPlan::none()
        };
        assert!(bad_window.validate().is_err());
        let bad_horizon = FaultPlan {
            page_loss_every_s: 1.0,
            page_loss_horizon_s: 0.0,
            ..FaultPlan::none()
        };
        assert!(bad_horizon.validate().is_err());
        let bad_factor = FaultPlan {
            slow_lane: Some(SlowLaneWindow {
                start_s: 0.0,
                duration_s: 1.0,
                factor: 0.0,
            }),
            ..FaultPlan::none()
        };
        assert!(bad_factor.validate().is_err());
        assert!(RetryPolicy {
            max_attempts: 0,
            backoff_base_s: 0.1
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            max_attempts: 3,
            backoff_base_s: f64::NAN
        }
        .validate()
        .is_err());
        assert!(DegradePolicy {
            queue_depth_threshold: 0,
            max_steps: 2
        }
        .validate()
        .is_err());
        assert!(DegradePolicy {
            queue_depth_threshold: 4,
            max_steps: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let retry = RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 0.25,
        };
        retry.validate().unwrap();
        assert_eq!(retry.backoff_s(1), 0.25);
        assert_eq!(retry.backoff_s(2), 0.5);
        assert_eq!(retry.backoff_s(3), 1.0);
    }

    #[test]
    fn degrade_steps_scale_with_queue_depth() {
        let degrade = DegradePolicy {
            queue_depth_threshold: 4,
            max_steps: 2,
        };
        degrade.validate().unwrap();
        assert_eq!(degrade.steps_for_depth(0), 0);
        assert_eq!(degrade.steps_for_depth(3), 0);
        assert_eq!(degrade.steps_for_depth(4), 1);
        assert_eq!(degrade.steps_for_depth(9), 2);
        assert_eq!(degrade.steps_for_depth(100), 2);
    }

    #[test]
    fn page_loss_draws_cover_the_horizon() {
        let plan = FaultPlan {
            seed: 5,
            page_loss_every_s: 0.5,
            page_loss_horizon_s: 10.0,
            ..FaultPlan::none()
        };
        plan.validate().unwrap();
        let mut events = EventQueue::with_capacity(64);
        let n = FaultInjector::new(&plan).schedule(&plan, &[], &mut events);
        assert!(
            n >= 5,
            "mean gap 0.5s over 10s should draw many events, got {n}"
        );
        let order = drain(&mut events);
        let mut last = 0.0;
        for (t, kind) in order {
            assert!(t > last && t <= plan.page_loss_horizon_s);
            assert!(matches!(kind, EventKind::PageLossAt { .. }));
            last = t;
        }
    }
}
