//! Generation requests: what a user session asks the engine to do.

use crate::strategy::StrategySpec;
use serde::{Deserialize, Serialize};

/// One user's generation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenRequest {
    /// Caller-chosen request id, echoed in the report.
    pub id: u64,
    /// Prompt token ids (must be non-empty and within the model vocabulary).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate after the prompt.
    pub max_new_tokens: usize,
    /// Sampling temperature (0 = greedy).
    pub temperature: f32,
    /// The sparsity strategy spec this request's MLP forward passes run
    /// with (any strategy of the `dip_core::spec` family).
    pub strategy: StrategySpec,
}

impl GenRequest {
    /// Creates a request with greedy sampling.
    pub fn new(id: u64, prompt: Vec<u32>, max_new_tokens: usize, strategy: StrategySpec) -> Self {
        GenRequest {
            id,
            prompt,
            max_new_tokens,
            temperature: 0.0,
            strategy,
        }
    }

    /// Returns a copy with the given sampling temperature.
    pub fn with_temperature(mut self, temperature: f32) -> Self {
        self.temperature = temperature;
        self
    }

    /// Total tokens this request will push through the model (prompt prefill
    /// plus generated tokens) — the scheduler's notion of request length.
    pub fn total_tokens(&self) -> usize {
        self.prompt.len() + self.max_new_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_length() {
        let r = GenRequest::new(3, vec![1, 2, 3], 10, StrategySpec::Dense).with_temperature(0.7);
        assert_eq!(r.id, 3);
        assert_eq!(r.total_tokens(), 13);
        assert!((r.temperature - 0.7).abs() < 1e-6);
        assert_eq!(r.strategy, StrategySpec::Dense);
    }
}
