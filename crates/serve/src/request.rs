//! Generation requests: what a user session asks the engine to do.

use crate::strategy::StrategySpec;
use serde::{Deserialize, Serialize};

/// Priority tier of a request, ordered `Batch < Standard < Premium`.
///
/// Tiers drive the open-loop machinery: per-tier admission quotas
/// ([`crate::admission::AdmissionConfig`]), strict-priority service and
/// preemption under [`crate::scheduler::SchedulerPolicy::PriorityPreemptive`],
/// and per-tier SLO attainment in the report.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Tier {
    /// Throughput-oriented background work (lowest priority).
    Batch,
    /// The default interactive tier.
    #[default]
    Standard,
    /// Latency-sensitive premium traffic (highest priority).
    Premium,
}

/// Every tier, in ascending priority order.
pub const TIERS: [Tier; 3] = [Tier::Batch, Tier::Standard, Tier::Premium];

impl Tier {
    /// Index into per-tier arrays (`Batch = 0 … Premium = 2`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses the lowercase tier name used in workload JSON files.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "batch" => Some(Tier::Batch),
            "standard" => Some(Tier::Standard),
            "premium" => Some(Tier::Premium),
            _ => None,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tier::Batch => "batch",
            Tier::Standard => "standard",
            Tier::Premium => "premium",
        };
        f.write_str(s)
    }
}

/// A request's latency service-level objective.
///
/// Both bounds default to `+∞` ("no objective"), so a request without an SLO
/// always attains it. Attainment is judged on two user-visible latencies:
/// time to first token (from *arrival*, so queueing and shed-retry delays
/// count) and the mean time between subsequent tokens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloTarget {
    /// Maximum time from arrival to the first generated token, seconds.
    pub ttft_s: f64,
    /// Maximum mean time between generated tokens, seconds.
    pub tbt_s: f64,
}

impl SloTarget {
    /// An SLO bounding TTFT and mean TBT.
    pub fn new(ttft_s: f64, tbt_s: f64) -> Self {
        SloTarget { ttft_s, tbt_s }
    }

    /// The "no objective" SLO (always attained).
    pub fn none() -> Self {
        SloTarget {
            ttft_s: f64::INFINITY,
            tbt_s: f64::INFINITY,
        }
    }

    /// Whether observed latencies meet the objective.
    pub fn met(&self, ttft_s: f64, mean_tbt_s: f64) -> bool {
        ttft_s <= self.ttft_s && mean_tbt_s <= self.tbt_s
    }
}

impl Default for SloTarget {
    fn default() -> Self {
        SloTarget::none()
    }
}

/// One user's generation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenRequest {
    /// Caller-chosen request id, echoed in the report.
    pub id: u64,
    /// Prompt token ids (must be non-empty and within the model vocabulary).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate after the prompt.
    pub max_new_tokens: usize,
    /// Sampling temperature (0 = greedy).
    pub temperature: f32,
    /// The sparsity strategy spec this request's MLP forward passes run
    /// with (any strategy of the `dip_core::spec` family).
    pub strategy: StrategySpec,
    /// Arrival time in seconds on the run's virtual clock. Closed-batch runs
    /// ignore it (every request is present at t = 0); the open-loop driver
    /// ingests requests as its clock passes their arrival.
    pub arrival_s: f64,
    /// Priority tier (admission quotas, preemptive scheduling, reporting).
    pub tier: Tier,
    /// Latency objective judged in the report ([`SloTarget::none`] = no
    /// objective).
    pub slo: SloTarget,
    /// How many leading prompt tokens are a *shared prefix* (e.g. a
    /// template's system prompt) that other requests carry verbatim. Zero
    /// (the default) means nothing is shared. Under a paged KV pool with
    /// prefix sharing enabled, the engine maps already-prefilled prefix
    /// pages copy-on-write instead of re-prefilling them.
    pub shared_prefix_len: usize,
    /// Wall-clock budget from arrival (seconds). If the request has not
    /// completed within this budget on the virtual clock, the open-loop
    /// engine retires it as
    /// [`FinishReason::DeadlineExpired`](crate::FinishReason). `+∞` (the
    /// default) means no deadline.
    pub deadline_s: f64,
    /// Client patience in generated tokens: the client hangs up after
    /// receiving this many tokens, capping generation below
    /// `max_new_tokens`. A capped request retires as
    /// [`FinishReason::Cancelled`](crate::FinishReason). `usize::MAX` (the
    /// default) means the client waits for the full answer.
    pub cancel_after_tokens: usize,
}

impl GenRequest {
    /// Creates a request with greedy sampling, arriving at t = 0 on the
    /// standard tier with no latency objective.
    pub fn new(id: u64, prompt: Vec<u32>, max_new_tokens: usize, strategy: StrategySpec) -> Self {
        GenRequest {
            id,
            prompt,
            max_new_tokens,
            temperature: 0.0,
            strategy,
            arrival_s: 0.0,
            tier: Tier::Standard,
            slo: SloTarget::none(),
            shared_prefix_len: 0,
            deadline_s: f64::INFINITY,
            cancel_after_tokens: usize::MAX,
        }
    }

    /// Returns a copy with the given sampling temperature.
    pub fn with_temperature(mut self, temperature: f32) -> Self {
        self.temperature = temperature;
        self
    }

    /// Returns a copy arriving at the given virtual-clock time.
    pub fn at(mut self, arrival_s: f64) -> Self {
        self.arrival_s = arrival_s;
        self
    }

    /// Returns a copy on the given priority tier.
    pub fn with_tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// Returns a copy with the given latency objective.
    pub fn with_slo(mut self, slo: SloTarget) -> Self {
        self.slo = slo;
        self
    }

    /// Returns a copy declaring the first `len` prompt tokens a shared
    /// prefix (clamped to the prompt length at use sites, never here).
    pub fn with_shared_prefix(mut self, len: usize) -> Self {
        self.shared_prefix_len = len;
        self
    }

    /// Returns a copy with a wall-clock deadline (seconds from arrival).
    pub fn with_deadline_s(mut self, deadline_s: f64) -> Self {
        self.deadline_s = deadline_s;
        self
    }

    /// Returns a copy whose client hangs up after `tokens` generated
    /// tokens.
    pub fn with_cancel_after_tokens(mut self, tokens: usize) -> Self {
        self.cancel_after_tokens = tokens;
        self
    }

    /// Total tokens this request will push through the model (prompt prefill
    /// plus generated tokens) — the scheduler's notion of request length.
    pub fn total_tokens(&self) -> usize {
        self.prompt.len() + self.max_new_tokens
    }

    /// Generation budget after client patience: `max_new_tokens` clamped by
    /// [`GenRequest::cancel_after_tokens`].
    pub fn effective_new_tokens(&self) -> usize {
        self.max_new_tokens.min(self.cancel_after_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_length() {
        let r = GenRequest::new(3, vec![1, 2, 3], 10, StrategySpec::Dense).with_temperature(0.7);
        assert_eq!(r.id, 3);
        assert_eq!(r.total_tokens(), 13);
        assert!((r.temperature - 0.7).abs() < 1e-6);
        assert_eq!(r.strategy, StrategySpec::Dense);
        assert_eq!(r.arrival_s, 0.0);
        assert_eq!(r.tier, Tier::Standard);
        assert!(r.slo.met(1e9, 1e9), "default SLO is unbounded");
    }

    #[test]
    fn open_loop_builders() {
        let r = GenRequest::new(1, vec![1], 4, StrategySpec::Dense)
            .at(2.5)
            .with_tier(Tier::Premium)
            .with_slo(SloTarget::new(0.5, 0.05));
        assert_eq!(r.arrival_s, 2.5);
        assert_eq!(r.tier, Tier::Premium);
        assert_eq!(r.shared_prefix_len, 0, "nothing shared by default");
        let r = r.with_shared_prefix(1);
        assert_eq!(r.shared_prefix_len, 1);
        assert_eq!(r.deadline_s, f64::INFINITY, "no deadline by default");
        assert_eq!(r.cancel_after_tokens, usize::MAX);
        assert_eq!(r.effective_new_tokens(), 4);
        let r = r.with_deadline_s(3.0).with_cancel_after_tokens(2);
        assert_eq!(r.deadline_s, 3.0);
        assert_eq!(r.effective_new_tokens(), 2);
        assert!(r.slo.met(0.5, 0.05));
        assert!(!r.slo.met(0.51, 0.01));
        assert!(!r.slo.met(0.1, 0.06));
    }

    #[test]
    fn tiers_are_ordered_and_parseable() {
        assert!(Tier::Batch < Tier::Standard && Tier::Standard < Tier::Premium);
        assert_eq!(Tier::default(), Tier::Standard);
        for (i, tier) in TIERS.iter().enumerate() {
            assert_eq!(tier.index(), i);
            assert_eq!(Tier::parse(&tier.to_string()), Some(*tier));
        }
        assert_eq!(Tier::parse("gold"), None);
    }
}
