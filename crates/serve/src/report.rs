//! Serving-run reports: per-request stats and fleet-level aggregates.

use crate::request::Tier;
use crate::scheduler::SchedulerPolicy;
use hwsim::EvictionPolicy;
use serde::{Deserialize, Serialize};

/// How a request's lifecycle ended.
///
/// Every request that holds (or ever held) a session retires with exactly
/// one reason; together with admission sheds and queue withdrawals these
/// partition the arrivals — the chaos suite's conservation invariant
/// (DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FinishReason {
    /// The request generated its full token budget.
    #[default]
    Completed,
    /// The client cancelled (injected [`EventKind::CancelAt`] or the
    /// request's own `cancel_after_tokens` patience ran out).
    ///
    /// [`EventKind::CancelAt`]: crate::event::EventKind::CancelAt
    Cancelled,
    /// The request's wall-clock deadline expired before completion.
    DeadlineExpired,
    /// A transient worker abort killed the session and the retry budget
    /// (if any) was exhausted.
    Failed,
}

impl std::fmt::Display for FinishReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FinishReason::Completed => "completed",
            FinishReason::Cancelled => "cancelled",
            FinishReason::DeadlineExpired => "deadline_expired",
            FinishReason::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// Statistics of one completed request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Caller-chosen request id.
    pub id: u64,
    /// Stream index in the shared-cache replay (submission order).
    pub stream: usize,
    /// Strategy label the request ran under.
    pub strategy: String,
    /// Priority tier of the request.
    pub tier: Tier,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Number of generated tokens.
    pub generated_tokens: usize,
    /// The generated token ids themselves (greedy decode makes them a pure
    /// function of model + prompt + strategy; golden-trace and
    /// preemption-correctness suites pin them).
    pub generated: Vec<u32>,
    /// Engine step at which the request was admitted to a KV slot.
    pub admitted_step: usize,
    /// Arrival time on the run's virtual clock (0 for closed batches).
    pub arrival_s: f64,
    /// Time from arrival to first holding a KV slot (0 for closed batches,
    /// where every request is pre-materialized).
    pub queue_delay_s: f64,
    /// Wall-clock completion of the first *generated* token, in seconds from
    /// the start of the run (0 when nothing was generated).
    pub first_token_s: f64,
    /// Time from *arrival* to the first generated token.
    pub ttft_s: f64,
    /// Mean time between generated tokens (0 with fewer than one generated
    /// token); preemption stalls count against it.
    pub tbt_mean_s: f64,
    /// How many times the session was preempted and parked.
    pub preemptions: usize,
    /// Whether the request's latency objective was attained (always true
    /// for the default unbounded [`crate::request::SloTarget`]).
    pub slo_met: bool,
    /// Wall-clock completion of the request.
    pub completion_s: f64,
    /// Service time this request consumed on the memory bus.
    pub service_s: f64,
    /// Generated tokens per second of end-to-end latency.
    pub throughput_tps: f64,
    /// Shared-cache hit rate of this request's weight accesses.
    pub hit_rate: f64,
    /// Bytes this request read from Flash.
    pub flash_bytes: f64,
    /// Bytes this request read from DRAM.
    pub dram_bytes: f64,
    /// How the request's lifecycle ended ([`FinishReason::Completed`] for
    /// every request of a fault-free run).
    pub finish: FinishReason,
    /// Whether admission downgraded this request's strategy along the
    /// fallback chain under queue pressure (a [`crate::DegradePolicy`]).
    pub degraded: bool,
    /// Service attempts this request consumed (1 without retries).
    pub attempts: u32,
}

/// Latency percentiles of one open-loop metric (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of an unsorted sample (see [`percentile`]).
    pub fn of(values: &[f64]) -> Self {
        Percentiles {
            p50_s: percentile(values, 0.50),
            p95_s: percentile(values, 0.95),
            p99_s: percentile(values, 0.99),
        }
    }
}

/// Open-loop outcomes of one priority tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierStats {
    /// The tier.
    pub tier: Tier,
    /// Arrivals on this tier.
    pub arrived: usize,
    /// Arrivals accepted into the waiting queue.
    pub admitted: usize,
    /// Arrivals shed at admission.
    pub shed: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests cancelled by the client (injected or patience-capped),
    /// including cancellations that struck while still queued.
    pub cancelled: usize,
    /// Requests whose deadline expired, including expiries while queued.
    pub expired: usize,
    /// Requests that exhausted their retry budget after worker aborts.
    pub failed: usize,
    /// Sessions admitted with a degraded strategy on this tier.
    pub degraded: usize,
    /// Preemptions suffered by this tier's sessions.
    pub preemptions: usize,
    /// Time-to-first-token percentiles over completed requests.
    pub ttft: Percentiles,
    /// Queue-delay percentiles over completed requests.
    pub queue_delay: Percentiles,
    /// Fraction of *arrived* requests that completed within their SLO (a
    /// shed request counts as missed, so shedding cannot launder attainment;
    /// cancelled/expired/failed requests count as missed too).
    pub slo_attainment: f64,
}

/// Open-loop outcomes of one strategy spec (by label).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyClassStats {
    /// Strategy label ([`crate::strategy::StrategySpec::label`]).
    pub strategy: String,
    /// Requests served to completion.
    pub completed: usize,
    /// Tokens generated by this class.
    pub generated_tokens: usize,
    /// Time-to-first-token percentiles over completed requests.
    pub ttft: Percentiles,
    /// Shared-cache hit rate of this class's weight accesses.
    pub hit_rate: f64,
    /// Fraction of completed requests that met their SLO.
    pub slo_attainment: f64,
}

/// Aggregates that only an open-loop run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopStats {
    /// Requests that arrived over the run.
    pub arrived: usize,
    /// Requests accepted into the waiting queue.
    pub admitted: usize,
    /// Requests shed at admission (total).
    pub shed: usize,
    /// Requests shed by the token-bucket rate limit.
    pub shed_rate_limited: usize,
    /// Requests shed by a per-tier quota.
    pub shed_tier_quota: usize,
    /// Requests shed by the bounded queue.
    pub shed_queue_full: usize,
    /// Requests shed because their KV page footprint exceeds the paged pool.
    pub shed_memory: usize,
    /// Requests served to completion. Without faults this equals `admitted`
    /// at drain; with faults every arrival ends exactly one way, so at
    /// drain `arrived = shed + completed + cancelled + deadline_expired +
    /// failed` (the chaos suite's conservation invariant). `admitted` is
    /// attempt-level: each successful retry re-admission counts again.
    pub completed: usize,
    /// Requests retired as [`FinishReason::Cancelled`], including client
    /// cancellations that withdrew a still-queued request.
    pub cancelled: usize,
    /// Requests retired as [`FinishReason::DeadlineExpired`], including
    /// expiries while still queued.
    pub deadline_expired: usize,
    /// Requests retired as [`FinishReason::Failed`] (retry budget
    /// exhausted).
    pub failed: usize,
    /// Worker aborts that were re-offered through admission with backoff.
    pub retries: usize,
    /// Sessions admitted with a strategy degraded along the fallback chain.
    pub degraded_sessions: usize,
    /// Paged-KV pages invalidated by injected page-loss faults (counted
    /// across layers).
    pub kv_pages_lost: usize,
    /// Prompt/generated tokens re-prefilled to rebuild lost KV pages
    /// (included in the report's `total_prefill_tokens`).
    pub kv_refill_tokens: usize,
    /// Sessions preempted (parked at a token boundary).
    pub preemptions: usize,
    /// Parked sessions resumed.
    pub resumes: usize,
    /// Virtual-clock seconds spent swapping parked KV states to Flash and
    /// back (the DRAM layout budgets KV for `max_concurrent` slots only, so
    /// preemption pays to move the victim's context out of DRAM).
    pub kv_swap_s: f64,
    /// Bytes of KV state swapped to and from Flash by preemption. Always
    /// `kv_spill_bytes + kv_reload_bytes`.
    pub kv_swap_bytes: f64,
    /// Bytes of KV state spilled DRAM→Flash when preemptions parked
    /// sessions. Each park/resume cycle moves a session's bytes exactly
    /// once in each direction, so over a drained run this equals
    /// [`OpenLoopStats::kv_reload_bytes`].
    pub kv_spill_bytes: f64,
    /// Bytes of KV state reloaded Flash→DRAM when parked sessions resumed.
    pub kv_reload_bytes: f64,
    /// Time-to-first-token percentiles over completed requests.
    pub ttft: Percentiles,
    /// Time-between-tokens percentiles over every decode gap of the run.
    pub tbt: Percentiles,
    /// Queue-delay (arrival → KV slot) percentiles over completed requests.
    pub queue_delay: Percentiles,
    /// Fraction of *arrived* requests that completed within their SLO.
    pub slo_attainment: f64,
    /// Per-tier breakdown, ascending tier order.
    pub tiers: Vec<TierStats>,
    /// Per-strategy breakdown, in order of first appearance.
    pub strategies: Vec<StrategyClassStats>,
}

/// Paged-KV pool outcomes of one run (present when the engine serves from a
/// [`lm::KvPagePool`] instead of flat per-slot caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PagedKvStats {
    /// Positions per page.
    pub page_size: usize,
    /// Total pages in the pool (across layers and sessions).
    pub pool_pages: usize,
    /// High-water mark of allocated pages over the run.
    pub pages_high_water: usize,
    /// Pages still allocated at drain (shared-prefix registry pages; the
    /// registry is cleared at the start of each run, so this is what the
    /// run itself pinned).
    pub pages_at_end: usize,
    /// Copy-on-write page forks performed during the run.
    pub cow_forks: u64,
    /// Admissions that mapped an already-prefilled shared prefix.
    pub prefix_hits: usize,
    /// Prefix-eligible admissions that found no registered prefix.
    pub prefix_misses: usize,
    /// Shared prefixes registered for later arrivals.
    pub prefix_registrations: usize,
    /// Prompt tokens never prefilled because a shared prefix was mapped.
    pub prefix_tokens_saved: usize,
}

/// Aggregate report of one serving run.
///
/// Reports are **bitwise deterministic**: every field (each f64 bit) is a
/// pure function of the model, config, and request stream. Both execution
/// modes produce identical reports ([`ExecutionMode::Batched`] is the
/// default; `Sequential` is the token-at-a-time oracle —
/// `tests/batched_equivalence.rs` holds the contract), and attaching
/// telemetry ([`ServeEngine::attach_telemetry`]) changes no report bit:
/// the engine's hooks are write-only, so metrics, trace rings and
/// timeline windows observe the run without participating in it. The
/// telemetry timeline's per-window token sums equal
/// `total_prefill_tokens + total_generated_tokens` exactly.
///
/// [`ExecutionMode::Batched`]: crate::ExecutionMode::Batched
/// [`ServeEngine::attach_telemetry`]: crate::ServeEngine::attach_telemetry
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Model name.
    pub model: String,
    /// Scheduling policy of the run.
    pub scheduler: SchedulerPolicy,
    /// Shared-cache eviction policy.
    pub eviction: EvictionPolicy,
    /// KV-cache slots (maximum concurrent sessions).
    pub max_concurrent: usize,
    /// Per-request statistics, in submission order.
    pub requests: Vec<RequestStats>,
    /// Total prompt tokens prefilled across requests.
    pub total_prefill_tokens: usize,
    /// Total tokens generated across requests.
    pub total_generated_tokens: usize,
    /// Wall-clock length of the run in seconds.
    pub makespan_s: f64,
    /// Generated tokens per second of wall-clock time, across all requests.
    pub aggregate_tps: f64,
    /// Median end-to-end request latency (seconds).
    pub latency_p50_s: f64,
    /// 95th-percentile end-to-end request latency (seconds).
    pub latency_p95_s: f64,
    /// 99th-percentile end-to-end request latency (seconds).
    pub latency_p99_s: f64,
    /// Mean wall-clock time to each request's first generated token.
    pub mean_first_token_s: f64,
    /// Hit rate of the shared DRAM column cache over the whole run.
    pub cache_hit_rate: f64,
    /// Fraction of the MLP weights the shared cache can hold.
    pub cache_fraction: f64,
    /// Jain fairness index over per-request service times.
    pub fairness: f64,
    /// Mean MLP weight density of the replayed traffic.
    pub mean_density: f64,
    /// Total bytes read from Flash.
    pub flash_bytes: f64,
    /// Total bytes read from DRAM.
    pub dram_bytes: f64,
    /// Open-loop aggregates (`None` for closed-batch runs).
    pub open_loop: Option<OpenLoopStats>,
    /// Paged-KV pool outcomes (`None` when serving from flat caches).
    pub paged_kv: Option<PagedKvStats>,
}

impl ServeReport {
    /// Renders a short human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} | {} requests, {} slots, {}/{} | {:.2} tok/s | p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms | hit rate {:.1}% | fairness {:.3}",
            self.model,
            self.requests.len(),
            self.max_concurrent,
            self.scheduler,
            self.eviction,
            self.aggregate_tps,
            1e3 * self.latency_p50_s,
            1e3 * self.latency_p95_s,
            1e3 * self.latency_p99_s,
            100.0 * self.cache_hit_rate,
            self.fairness,
        );
        if let Some(ol) = &self.open_loop {
            s.push_str(&format!(
                " | open-loop: {} arrived, {} shed, {} preemptions, TTFT p95 {:.1} ms, SLO {:.1}%",
                ol.arrived,
                ol.shed,
                ol.preemptions,
                1e3 * ol.ttft.p95_s,
                100.0 * ol.slo_attainment,
            ));
            if ol.cancelled + ol.deadline_expired + ol.failed + ol.retries > 0 {
                s.push_str(&format!(
                    " | faults: {} cancelled, {} expired, {} failed, {} retries",
                    ol.cancelled, ol.deadline_expired, ol.failed, ol.retries,
                ));
            }
            if ol.degraded_sessions > 0 {
                s.push_str(&format!(" | {} degraded sessions", ol.degraded_sessions));
            }
        }
        if let Some(pk) = &self.paged_kv {
            s.push_str(&format!(
                " | paged KV: {}/{} pages high-water, {} prefix hits, {} tokens saved",
                pk.pages_high_water, pk.pool_pages, pk.prefix_hits, pk.prefix_tokens_saved,
            ));
        }
        s
    }
}

/// Nearest-rank percentile of an unsorted sample; `q` is clamped to
/// `[0, 1]`. Canonical implementation lives in [`::telemetry::stats`] so
/// the bench/report writers and this crate agree on one definition; this
/// re-export keeps `serve::report::percentile` (and `serve::percentile`)
/// working.
pub use ::telemetry::percentile;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 0.99), 5.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn percentile_of_empty_sample_is_defined() {
        // The documented empty-slice contract: 0.0 at every quantile, no
        // index panic.
        for q in [-1.0, 0.0, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(percentile(&[], q), 0.0);
        }
    }

    #[test]
    fn percentile_of_single_element_is_that_element() {
        for q in [-1.0, 0.0, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(percentile(&[7.5], q), 7.5);
        }
    }

    #[test]
    fn percentile_tolerates_non_finite_samples() {
        // total_cmp sorts NaN last and infinities at the extremes: the
        // median of a poisoned sample is still a defined value.
        let v = vec![2.0, f64::NAN, 1.0, f64::INFINITY, f64::NEG_INFINITY];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let v: Vec<f64> = (0..100).map(|i| (i * 37 % 101) as f64).collect();
        let p50 = percentile(&v, 0.5);
        let p95 = percentile(&v, 0.95);
        let p99 = percentile(&v, 0.99);
        assert!(p50 <= p95 && p95 <= p99);
    }
}
