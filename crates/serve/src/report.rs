//! Serving-run reports: per-request stats and fleet-level aggregates.

use crate::scheduler::SchedulerPolicy;
use hwsim::EvictionPolicy;
use serde::{Deserialize, Serialize};

/// Statistics of one completed request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Caller-chosen request id.
    pub id: u64,
    /// Stream index in the shared-cache replay (submission order).
    pub stream: usize,
    /// Strategy label the request ran under.
    pub strategy: String,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Number of generated tokens.
    pub generated_tokens: usize,
    /// Engine step at which the request was admitted to a KV slot.
    pub admitted_step: usize,
    /// Wall-clock completion of the first *generated* token, in seconds from
    /// the start of the run (0 when nothing was generated).
    pub first_token_s: f64,
    /// Wall-clock completion of the request.
    pub completion_s: f64,
    /// Service time this request consumed on the memory bus.
    pub service_s: f64,
    /// Generated tokens per second of end-to-end latency.
    pub throughput_tps: f64,
    /// Shared-cache hit rate of this request's weight accesses.
    pub hit_rate: f64,
    /// Bytes this request read from Flash.
    pub flash_bytes: f64,
    /// Bytes this request read from DRAM.
    pub dram_bytes: f64,
}

/// Aggregate report of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Model name.
    pub model: String,
    /// Scheduling policy of the run.
    pub scheduler: SchedulerPolicy,
    /// Shared-cache eviction policy.
    pub eviction: EvictionPolicy,
    /// KV-cache slots (maximum concurrent sessions).
    pub max_concurrent: usize,
    /// Per-request statistics, in submission order.
    pub requests: Vec<RequestStats>,
    /// Total prompt tokens prefilled across requests.
    pub total_prefill_tokens: usize,
    /// Total tokens generated across requests.
    pub total_generated_tokens: usize,
    /// Wall-clock length of the run in seconds.
    pub makespan_s: f64,
    /// Generated tokens per second of wall-clock time, across all requests.
    pub aggregate_tps: f64,
    /// Median end-to-end request latency (seconds).
    pub latency_p50_s: f64,
    /// 95th-percentile end-to-end request latency (seconds).
    pub latency_p95_s: f64,
    /// 99th-percentile end-to-end request latency (seconds).
    pub latency_p99_s: f64,
    /// Mean wall-clock time to each request's first generated token.
    pub mean_first_token_s: f64,
    /// Hit rate of the shared DRAM column cache over the whole run.
    pub cache_hit_rate: f64,
    /// Fraction of the MLP weights the shared cache can hold.
    pub cache_fraction: f64,
    /// Jain fairness index over per-request service times.
    pub fairness: f64,
    /// Mean MLP weight density of the replayed traffic.
    pub mean_density: f64,
    /// Total bytes read from Flash.
    pub flash_bytes: f64,
    /// Total bytes read from DRAM.
    pub dram_bytes: f64,
}

impl ServeReport {
    /// Renders a short human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} | {} requests, {} slots, {}/{} | {:.2} tok/s | p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms | hit rate {:.1}% | fairness {:.3}",
            self.model,
            self.requests.len(),
            self.max_concurrent,
            self.scheduler,
            self.eviction,
            self.aggregate_tps,
            1e3 * self.latency_p50_s,
            1e3 * self.latency_p95_s,
            1e3 * self.latency_p99_s,
            100.0 * self.cache_hit_rate,
            self.fairness,
        )
    }
}

/// Nearest-rank percentile of an unsorted sample; `q` is clamped to
/// `[0, 1]`.
///
/// Every input is total-ordered (`f64::total_cmp`), so the function never
/// panics: an **empty sample returns `0.0`** by definition (there is no
/// latency to report, and reports render the run as idle rather than
/// crashing), a single-element sample returns that element for every `q`,
/// and NaNs sort last instead of aborting the sort.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 0.99), 5.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn percentile_of_empty_sample_is_defined() {
        // The documented empty-slice contract: 0.0 at every quantile, no
        // index panic.
        for q in [-1.0, 0.0, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(percentile(&[], q), 0.0);
        }
    }

    #[test]
    fn percentile_of_single_element_is_that_element() {
        for q in [-1.0, 0.0, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(percentile(&[7.5], q), 7.5);
        }
    }

    #[test]
    fn percentile_tolerates_non_finite_samples() {
        // total_cmp sorts NaN last and infinities at the extremes: the
        // median of a poisoned sample is still a defined value.
        let v = vec![2.0, f64::NAN, 1.0, f64::INFINITY, f64::NEG_INFINITY];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let v: Vec<f64> = (0..100).map(|i| (i * 37 % 101) as f64).collect();
        let p50 = percentile(&v, 0.5);
        let p95 = percentile(&v, 0.95);
        let p99 = percentile(&v, 0.99);
        assert!(p50 <= p95 && p95 <= p99);
    }
}
