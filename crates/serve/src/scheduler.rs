//! Continuous-batching schedulers.
//!
//! The engine serves one token per step (the memory bus is the serial
//! bottleneck resource — see `hwsim::concurrent`), admitting a waiting
//! request whenever a KV-cache slot frees up. The scheduling policy decides
//! two things: which waiting request is admitted next, and which *active*
//! session's token is served next.
//!
//! * [`SchedulerPolicy::Fifo`] — admit in arrival order; serve the active
//!   session that has waited longest since its last token
//!   (least-recently-served, i.e. fair round-robin under continuous
//!   batching).
//! * [`SchedulerPolicy::ShortestRemainingFirst`] — admit the shortest
//!   waiting request first and always serve the active session with the
//!   fewest remaining tokens. Short interactive requests overtake long
//!   batch jobs, trading fairness for lower median latency. Ties on the
//!   remaining budget break deterministically by request id, so a run's
//!   schedule is a pure function of its request set.

use crate::request::GenRequest;
use crate::session::Session;
use serde::{Deserialize, Serialize};

/// Which continuous-batching policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedulerPolicy {
    /// First-in-first-out admission, least-recently-served token order.
    #[default]
    Fifo,
    /// Shortest-remaining-first admission and token order.
    ShortestRemainingFirst,
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::ShortestRemainingFirst => "srf",
        };
        f.write_str(s)
    }
}

impl SchedulerPolicy {
    /// Index (into `waiting`) of the request to admit next, or `None` when
    /// the queue is empty.
    pub fn next_admission(&self, waiting: &[GenRequest]) -> Option<usize> {
        match self {
            SchedulerPolicy::Fifo => {
                if waiting.is_empty() {
                    None
                } else {
                    Some(0)
                }
            }
            SchedulerPolicy::ShortestRemainingFirst => waiting
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.total_tokens(), r.id))
                .map(|(i, _)| i),
        }
    }

    /// Index (into `active`) of the session whose token is served next, or
    /// `None` when nothing is active.
    pub fn next_service(&self, active: &[Session]) -> Option<usize> {
        match self {
            SchedulerPolicy::Fifo => active
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.last_served_step, s.stream))
                .map(|(i, _)| i),
            SchedulerPolicy::ShortestRemainingFirst => active
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.remaining_tokens(), s.request.id))
                .map(|(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategySpec;
    use lm::mlp::DenseMlp;
    use lm::{build_synthetic, ModelConfig};

    fn request(id: u64, prompt_len: usize, new_tokens: usize) -> GenRequest {
        GenRequest::new(id, vec![1; prompt_len], new_tokens, StrategySpec::Dense)
    }

    fn session(stream: usize, prompt_len: usize, new_tokens: usize) -> Session {
        let model = build_synthetic(&ModelConfig::tiny(), 1).unwrap();
        Session::new(
            stream,
            request(stream as u64, prompt_len, new_tokens),
            0,
            model.new_decode_state(),
            Box::new(DenseMlp),
        )
    }

    #[test]
    fn fifo_admits_in_arrival_order() {
        let waiting = vec![request(0, 4, 30), request(1, 1, 1)];
        assert_eq!(SchedulerPolicy::Fifo.next_admission(&waiting), Some(0));
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_admission(&waiting),
            Some(1)
        );
        assert_eq!(SchedulerPolicy::Fifo.next_admission(&[]), None);
    }

    #[test]
    fn fifo_serves_least_recently_served() {
        let mut a = session(0, 2, 4);
        let mut b = session(1, 2, 4);
        a.last_served_step = 10;
        b.last_served_step = 3;
        let active = vec![a, b];
        assert_eq!(SchedulerPolicy::Fifo.next_service(&active), Some(1));
    }

    #[test]
    fn srf_serves_fewest_remaining() {
        let short = session(0, 1, 2);
        let long = session(1, 1, 40);
        let active = vec![long, short];
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_service(&active),
            Some(1)
        );
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_service(&[]),
            None
        );
    }

    fn session_with_id(id: u64, stream: usize, new_tokens: usize) -> Session {
        let model = build_synthetic(&ModelConfig::tiny(), 1).unwrap();
        Session::new(
            stream,
            request(id, 1, new_tokens),
            0,
            model.new_decode_state(),
            Box::new(DenseMlp),
        )
    }

    #[test]
    fn srf_breaks_remaining_budget_ties_by_request_id() {
        // Four sessions with identical remaining budgets; ids deliberately
        // out of order relative to stream (admission) order. The winner must
        // be the smallest *request id*, not the smallest stream index or the
        // position in the vector.
        let active = vec![
            session_with_id(7, 0, 5),
            session_with_id(3, 1, 5),
            session_with_id(9, 2, 5),
            session_with_id(3, 3, 5), /* duplicate id: stable on first */
        ];
        let pick = SchedulerPolicy::ShortestRemainingFirst.next_service(&active);
        assert_eq!(pick, Some(1), "id 3 wins the tie");

        // Deterministic across repeated evaluations of the same state.
        for _ in 0..10 {
            assert_eq!(
                SchedulerPolicy::ShortestRemainingFirst.next_service(&active),
                pick
            );
        }

        // The same tie among *waiting* requests also resolves by id.
        let waiting = vec![request(5, 1, 4), request(2, 1, 4), request(8, 1, 4)];
        for _ in 0..10 {
            assert_eq!(
                SchedulerPolicy::ShortestRemainingFirst.next_admission(&waiting),
                Some(1),
                "id 2 wins the admission tie"
            );
        }
    }

    #[test]
    fn srf_tie_break_is_stable_across_runs() {
        // End-to-end determinism: serving the same tied fleet twice yields
        // the same completion order (a pure function of the request set).
        use crate::{GenRequest, ServeConfig, ServeEngine};
        let run = || {
            let config = ModelConfig::tiny();
            let model = build_synthetic(&config, 13).unwrap();
            let layout = crate::layout::layout_for_serving(
                &config,
                [lm::SliceAxis::Input; 3],
                4.0,
                2,
                config.max_seq_len,
            );
            let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.6) as u64;
            let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
            let mut engine = ServeEngine::new(
                model,
                ServeConfig::new(device)
                    .with_max_concurrent(2)
                    .with_scheduler(SchedulerPolicy::ShortestRemainingFirst),
            )
            .unwrap();
            // equal budgets everywhere: ordering is decided purely by id
            let requests: Vec<GenRequest> = [4u64, 1, 3, 2]
                .into_iter()
                .map(|id| GenRequest::new(id, vec![1, 2], 4, StrategySpec::Dense))
                .collect();
            let report = engine.run(requests).unwrap();
            report
                .requests
                .iter()
                .map(|r| (r.id, r.completion_s))
                .collect::<Vec<_>>()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "tied SRF schedules must be reproducible");
        // with everything tied, completion order follows request id
        let mut by_completion = first.clone();
        by_completion.sort_by(|a, b| a.1.total_cmp(&b.1));
        let ids: Vec<u64> = by_completion.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerPolicy::Fifo.to_string(), "fifo");
        assert_eq!(SchedulerPolicy::ShortestRemainingFirst.to_string(), "srf");
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Fifo);
    }
}
