//! Continuous-batching schedulers.
//!
//! The engine serves one token per step (the memory bus is the serial
//! bottleneck resource — see `hwsim::concurrent`), admitting a waiting
//! request whenever a KV-cache slot frees up. The scheduling policy decides
//! two things: which waiting request is admitted next, and which *active*
//! session's token is served next.
//!
//! * [`SchedulerPolicy::Fifo`] — admit in arrival order; serve the active
//!   session that has waited longest since its last token
//!   (least-recently-served, i.e. fair round-robin under continuous
//!   batching).
//! * [`SchedulerPolicy::ShortestRemainingFirst`] — admit the shortest
//!   waiting request first and always serve the active session with the
//!   fewest remaining tokens. Short interactive requests overtake long
//!   batch jobs, trading fairness for lower median latency.

use crate::request::GenRequest;
use crate::session::Session;
use serde::{Deserialize, Serialize};

/// Which continuous-batching policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedulerPolicy {
    /// First-in-first-out admission, least-recently-served token order.
    #[default]
    Fifo,
    /// Shortest-remaining-first admission and token order.
    ShortestRemainingFirst,
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::ShortestRemainingFirst => "srf",
        };
        f.write_str(s)
    }
}

impl SchedulerPolicy {
    /// Index (into `waiting`) of the request to admit next, or `None` when
    /// the queue is empty.
    pub fn next_admission(&self, waiting: &[GenRequest]) -> Option<usize> {
        match self {
            SchedulerPolicy::Fifo => {
                if waiting.is_empty() {
                    None
                } else {
                    Some(0)
                }
            }
            SchedulerPolicy::ShortestRemainingFirst => waiting
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (r.total_tokens(), *i))
                .map(|(i, _)| i),
        }
    }

    /// Index (into `active`) of the session whose token is served next, or
    /// `None` when nothing is active.
    pub fn next_service(&self, active: &[Session]) -> Option<usize> {
        match self {
            SchedulerPolicy::Fifo => active
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.last_served_step, s.stream))
                .map(|(i, _)| i),
            SchedulerPolicy::ShortestRemainingFirst => active
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.remaining_tokens(), s.stream))
                .map(|(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::SparsityPolicy;
    use lm::mlp::DenseMlp;
    use lm::{build_synthetic, ModelConfig};

    fn request(id: u64, prompt_len: usize, new_tokens: usize) -> GenRequest {
        GenRequest::new(id, vec![1; prompt_len], new_tokens, SparsityPolicy::Dense)
    }

    fn session(stream: usize, prompt_len: usize, new_tokens: usize) -> Session {
        let model = build_synthetic(&ModelConfig::tiny(), 1).unwrap();
        Session::new(
            stream,
            request(stream as u64, prompt_len, new_tokens),
            0,
            model.new_decode_state(),
            Box::new(DenseMlp),
        )
    }

    #[test]
    fn fifo_admits_in_arrival_order() {
        let waiting = vec![request(0, 4, 30), request(1, 1, 1)];
        assert_eq!(SchedulerPolicy::Fifo.next_admission(&waiting), Some(0));
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_admission(&waiting),
            Some(1)
        );
        assert_eq!(SchedulerPolicy::Fifo.next_admission(&[]), None);
    }

    #[test]
    fn fifo_serves_least_recently_served() {
        let mut a = session(0, 2, 4);
        let mut b = session(1, 2, 4);
        a.last_served_step = 10;
        b.last_served_step = 3;
        let active = vec![a, b];
        assert_eq!(SchedulerPolicy::Fifo.next_service(&active), Some(1));
    }

    #[test]
    fn srf_serves_fewest_remaining() {
        let short = session(0, 1, 2);
        let long = session(1, 1, 40);
        let active = vec![long, short];
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_service(&active),
            Some(1)
        );
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_service(&[]),
            None
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerPolicy::Fifo.to_string(), "fifo");
        assert_eq!(SchedulerPolicy::ShortestRemainingFirst.to_string(), "srf");
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Fifo);
    }
}
