//! Continuous-batching schedulers.
//!
//! The engine serves one token per step (the memory bus is the serial
//! bottleneck resource — see `hwsim::concurrent`), admitting a waiting
//! request whenever a KV-cache slot frees up. The scheduling policy decides
//! two things: which waiting request is admitted next, and which *active*
//! session's token is served next.
//!
//! * [`SchedulerPolicy::Fifo`] — admit in arrival order; serve the active
//!   session that has waited longest since its last token
//!   (least-recently-served, i.e. fair round-robin under continuous
//!   batching).
//! * [`SchedulerPolicy::ShortestRemainingFirst`] — admit the shortest
//!   waiting request first and always serve the active session with the
//!   fewest remaining tokens. Short interactive requests overtake long
//!   batch jobs, trading fairness for lower median latency. Ties on the
//!   remaining budget break deterministically by request id, so a run's
//!   schedule is a pure function of its request set.
//! * [`SchedulerPolicy::PriorityPreemptive`] — strict priority across
//!   [`Tier`]s for both admission and service, least-recently-served within
//!   a tier (so equal-tier sessions round-robin and none starves). Under the
//!   open-loop driver this policy may additionally **preempt**: when a
//!   waiting request outranks the lowest-tier active session and no KV slot
//!   is free, that session is parked at a token boundary
//!   ([`SchedulerPolicy::preemption_victim`]) and resumed later with its KV
//!   state intact.

use crate::request::{GenRequest, Tier};
use crate::session::Session;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;

/// A schedulable unit waiting for a KV slot under the open-loop driver: a
/// request in the admission queue, or a parked (preempted) session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionCandidate {
    /// Index into the waiting queue.
    Queued(usize),
    /// Index into the parked-session set.
    Parked(usize),
}

/// Which continuous-batching policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedulerPolicy {
    /// First-in-first-out admission, least-recently-served token order.
    #[default]
    Fifo,
    /// Shortest-remaining-first admission and token order.
    ShortestRemainingFirst,
    /// Strict [`Tier`] priority with round-robin within a tier; preemptive
    /// under the open-loop driver.
    PriorityPreemptive,
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::ShortestRemainingFirst => "srf",
            SchedulerPolicy::PriorityPreemptive => "priority",
        };
        f.write_str(s)
    }
}

impl SchedulerPolicy {
    /// Index (into `waiting`) of the request to admit next, or `None` when
    /// the queue is empty.
    pub fn next_admission(&self, waiting: &[GenRequest]) -> Option<usize> {
        match self {
            SchedulerPolicy::Fifo => {
                if waiting.is_empty() {
                    None
                } else {
                    Some(0)
                }
            }
            SchedulerPolicy::ShortestRemainingFirst => waiting
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.total_tokens(), r.id))
                .map(|(i, _)| i),
            SchedulerPolicy::PriorityPreemptive => waiting
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| Self::priority_rank(r))
                .map(|(i, _)| i),
        }
    }

    /// The priority-admission ordering key: highest tier first; within a
    /// tier the smallest id (ids are assigned in arrival order by the
    /// workload generator, so this is FIFO within the tier). Shared by
    /// [`SchedulerPolicy::next_admission`] and
    /// [`SchedulerPolicy::next_candidate`], so queued requests and parked
    /// sessions can never be ranked by diverging keys.
    fn priority_rank(request: &GenRequest) -> (Reverse<Tier>, u64) {
        (Reverse(request.tier), request.id)
    }

    /// Picks the next admission among the waiting queue *and* the parked
    /// (preempted) session set — the open-loop driver's version of
    /// [`SchedulerPolicy::next_admission`].
    ///
    /// Parked sessions only exist under
    /// [`SchedulerPolicy::PriorityPreemptive`], where one shared ordering
    /// key (`priority_rank`) ranks both pools — a parked session competes
    /// for its slot back exactly like a queued request of its tier. Under
    /// the non-preemptive policies the parked set is empty and the policy's
    /// own admission order applies.
    pub fn next_candidate(
        &self,
        waiting: &[GenRequest],
        parked: &[Session],
    ) -> Option<AdmissionCandidate> {
        let queued = self.next_admission(waiting).map(AdmissionCandidate::Queued);
        let best_parked = parked
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| Self::priority_rank(&s.request))
            .map(|(i, _)| i);
        match (queued, best_parked) {
            (queued, None) => queued,
            (None, Some(p)) => Some(AdmissionCandidate::Parked(p)),
            (Some(AdmissionCandidate::Queued(q)), Some(p)) => {
                if Self::priority_rank(&parked[p].request) <= Self::priority_rank(&waiting[q]) {
                    Some(AdmissionCandidate::Parked(p))
                } else {
                    Some(AdmissionCandidate::Queued(q))
                }
            }
            (Some(AdmissionCandidate::Parked(_)), Some(_)) => {
                unreachable!("next_admission returns queue indices")
            }
        }
    }

    /// Index (into `active`) of the session whose token is served next, or
    /// `None` when nothing is active.
    pub fn next_service(&self, active: &[Session]) -> Option<usize> {
        self.next_service_where(active, |_| true)
    }

    /// Like [`SchedulerPolicy::next_service`], restricted to sessions
    /// satisfying `keep` — the policy's own ordering applied to a subset.
    ///
    /// The event-driven engine core uses this to time-slice a long prefill:
    /// once a prefill run exhausts its chunk budget, the next pick is drawn
    /// from the decode-phase sessions only, so the same policy keys decide
    /// *which* decoding session gets the yielded slot.
    pub fn next_service_where(
        &self,
        active: &[Session],
        keep: impl Fn(&Session) -> bool,
    ) -> Option<usize> {
        let kept = active.iter().enumerate().filter(|(_, s)| keep(s));
        match self {
            SchedulerPolicy::Fifo => kept
                .min_by_key(|(_, s)| (s.last_served_step, s.stream))
                .map(|(i, _)| i),
            SchedulerPolicy::ShortestRemainingFirst => kept
                .min_by_key(|(_, s)| (s.remaining_tokens(), s.request.id))
                .map(|(i, _)| i),
            // strict priority across tiers, least-recently-served within a
            // tier — equal-tier sessions round-robin, so no active session
            // starves while its tier is the highest present
            SchedulerPolicy::PriorityPreemptive => kept
                .min_by_key(|(_, s)| (Reverse(s.request.tier), s.last_served_step, s.stream))
                .map(|(i, _)| i),
        }
    }

    /// Index (into `active`) of the session to preempt so that a waiting
    /// request of `candidate_tier` can take its KV slot, or `None` when no
    /// active session is strictly below that tier (or the policy never
    /// preempts).
    ///
    /// The victim is the *lowest*-tier active session; ties prefer the one
    /// with the most remaining tokens (least sunk progress per displaced
    /// token), then the largest request id — fully deterministic.
    pub fn preemption_victim(&self, active: &[Session], candidate_tier: Tier) -> Option<usize> {
        if *self != SchedulerPolicy::PriorityPreemptive {
            return None;
        }
        active
            .iter()
            .enumerate()
            .filter(|(_, s)| s.request.tier < candidate_tier)
            .min_by_key(|(_, s)| {
                (
                    s.request.tier,
                    Reverse(s.remaining_tokens()),
                    Reverse(s.request.id),
                )
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategySpec;
    use lm::mlp::DenseMlp;
    use lm::{build_synthetic, ModelConfig};

    fn request(id: u64, prompt_len: usize, new_tokens: usize) -> GenRequest {
        GenRequest::new(id, vec![1; prompt_len], new_tokens, StrategySpec::Dense)
    }

    fn session(stream: usize, prompt_len: usize, new_tokens: usize) -> Session {
        let model = build_synthetic(&ModelConfig::tiny(), 1).unwrap();
        Session::new(
            stream,
            request(stream as u64, prompt_len, new_tokens),
            0,
            model.new_decode_state(),
            Box::new(DenseMlp),
        )
    }

    #[test]
    fn fifo_admits_in_arrival_order() {
        let waiting = vec![request(0, 4, 30), request(1, 1, 1)];
        assert_eq!(SchedulerPolicy::Fifo.next_admission(&waiting), Some(0));
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_admission(&waiting),
            Some(1)
        );
        assert_eq!(SchedulerPolicy::Fifo.next_admission(&[]), None);
    }

    #[test]
    fn fifo_serves_least_recently_served() {
        let mut a = session(0, 2, 4);
        let mut b = session(1, 2, 4);
        a.last_served_step = 10;
        b.last_served_step = 3;
        let active = vec![a, b];
        assert_eq!(SchedulerPolicy::Fifo.next_service(&active), Some(1));
    }

    #[test]
    fn srf_serves_fewest_remaining() {
        let short = session(0, 1, 2);
        let long = session(1, 1, 40);
        let active = vec![long, short];
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_service(&active),
            Some(1)
        );
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_service(&[]),
            None
        );
    }

    fn session_with_id(id: u64, stream: usize, new_tokens: usize) -> Session {
        let model = build_synthetic(&ModelConfig::tiny(), 1).unwrap();
        Session::new(
            stream,
            request(id, 1, new_tokens),
            0,
            model.new_decode_state(),
            Box::new(DenseMlp),
        )
    }

    #[test]
    fn srf_breaks_remaining_budget_ties_by_request_id() {
        // Four sessions with identical remaining budgets; ids deliberately
        // out of order relative to stream (admission) order. The winner must
        // be the smallest *request id*, not the smallest stream index or the
        // position in the vector.
        let active = vec![
            session_with_id(7, 0, 5),
            session_with_id(3, 1, 5),
            session_with_id(9, 2, 5),
            session_with_id(3, 3, 5), /* duplicate id: stable on first */
        ];
        let pick = SchedulerPolicy::ShortestRemainingFirst.next_service(&active);
        assert_eq!(pick, Some(1), "id 3 wins the tie");

        // Deterministic across repeated evaluations of the same state.
        for _ in 0..10 {
            assert_eq!(
                SchedulerPolicy::ShortestRemainingFirst.next_service(&active),
                pick
            );
        }

        // The same tie among *waiting* requests also resolves by id.
        let waiting = vec![request(5, 1, 4), request(2, 1, 4), request(8, 1, 4)];
        for _ in 0..10 {
            assert_eq!(
                SchedulerPolicy::ShortestRemainingFirst.next_admission(&waiting),
                Some(1),
                "id 2 wins the admission tie"
            );
        }
    }

    #[test]
    fn srf_tie_break_is_stable_across_runs() {
        // End-to-end determinism: serving the same tied fleet twice yields
        // the same completion order (a pure function of the request set).
        use crate::{GenRequest, ServeConfig, ServeEngine};
        let run = || {
            let config = ModelConfig::tiny();
            let model = build_synthetic(&config, 13).unwrap();
            let layout = crate::layout::layout_for_serving(
                &config,
                [lm::SliceAxis::Input; 3],
                4.0,
                2,
                config.max_seq_len,
            );
            let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.6) as u64;
            let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
            let mut engine = ServeEngine::new(
                model,
                ServeConfig::new(device)
                    .with_max_concurrent(2)
                    .with_scheduler(SchedulerPolicy::ShortestRemainingFirst),
            )
            .unwrap();
            // equal budgets everywhere: ordering is decided purely by id
            let requests: Vec<GenRequest> = [4u64, 1, 3, 2]
                .into_iter()
                .map(|id| GenRequest::new(id, vec![1, 2], 4, StrategySpec::Dense))
                .collect();
            let report = engine.run(requests).unwrap();
            report
                .requests
                .iter()
                .map(|r| (r.id, r.completion_s))
                .collect::<Vec<_>>()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "tied SRF schedules must be reproducible");
        // with everything tied, completion order follows request id
        let mut by_completion = first.clone();
        by_completion.sort_by(|a, b| a.1.total_cmp(&b.1));
        let ids: Vec<u64> = by_completion.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn priority_admission_prefers_higher_tiers_then_ids() {
        let waiting = vec![
            request(4, 1, 4).with_tier(Tier::Standard),
            request(2, 1, 4).with_tier(Tier::Premium),
            request(1, 1, 4).with_tier(Tier::Batch),
            request(3, 1, 4).with_tier(Tier::Premium),
        ];
        assert_eq!(
            SchedulerPolicy::PriorityPreemptive.next_admission(&waiting),
            Some(1),
            "premium id 2 outranks premium id 3 and everything below"
        );
        assert_eq!(
            SchedulerPolicy::PriorityPreemptive.next_admission(&[]),
            None
        );
    }

    #[test]
    fn priority_service_is_strict_across_tiers_and_round_robin_within() {
        let mut batch = session(0, 1, 4);
        batch.request.tier = Tier::Batch;
        batch.last_served_step = 0;
        let mut premium_a = session(1, 1, 4);
        premium_a.request.tier = Tier::Premium;
        premium_a.last_served_step = 9;
        let mut premium_b = session(2, 1, 4);
        premium_b.request.tier = Tier::Premium;
        premium_b.last_served_step = 4;
        let active = vec![batch, premium_a, premium_b];
        // premium wins over batch even though batch waited longer; within
        // premium the least recently served session is next
        assert_eq!(
            SchedulerPolicy::PriorityPreemptive.next_service(&active),
            Some(2)
        );
    }

    #[test]
    fn filtered_service_applies_the_policy_keys_to_the_subset() {
        let mut batch = session(0, 1, 40);
        batch.request.tier = Tier::Batch;
        batch.last_served_step = 0;
        let mut premium = session(1, 1, 4);
        premium.request.tier = Tier::Premium;
        premium.last_served_step = 9;
        let mut standard = session(2, 1, 8);
        standard.request.tier = Tier::Standard;
        standard.last_served_step = 4;
        let active = vec![batch, premium, standard];

        for policy in [
            SchedulerPolicy::Fifo,
            SchedulerPolicy::ShortestRemainingFirst,
            SchedulerPolicy::PriorityPreemptive,
        ] {
            // an always-true filter is exactly next_service
            assert_eq!(
                policy.next_service_where(&active, |_| true),
                policy.next_service(&active)
            );
            // excluding the unrestricted winner re-ranks among the rest
            let winner = policy.next_service(&active).unwrap();
            let second = policy
                .next_service_where(&active, |s| s.stream != active[winner].stream)
                .unwrap();
            assert_ne!(second, winner);
            // an empty subset yields nothing
            assert_eq!(policy.next_service_where(&active, |_| false), None);
        }
        // the policy keys apply within the subset: among {batch, standard},
        // priority picks standard (higher tier), FIFO picks batch (least
        // recently served), SRF picks standard (fewer remaining)
        let not_premium = |s: &Session| s.request.tier != Tier::Premium;
        assert_eq!(
            SchedulerPolicy::PriorityPreemptive.next_service_where(&active, not_premium),
            Some(2)
        );
        assert_eq!(
            SchedulerPolicy::Fifo.next_service_where(&active, not_premium),
            Some(0)
        );
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.next_service_where(&active, not_premium),
            Some(2)
        );
    }

    #[test]
    fn preemption_victim_is_the_lowest_tier_below_the_candidate() {
        let mut batch_long = session(0, 1, 40);
        batch_long.request.tier = Tier::Batch;
        let mut batch_short = session(1, 1, 2);
        batch_short.request.tier = Tier::Batch;
        let mut standard = session(2, 1, 4);
        standard.request.tier = Tier::Standard;
        let active = vec![standard, batch_short, batch_long];

        let policy = SchedulerPolicy::PriorityPreemptive;
        // a premium arrival evicts the batch session with the most remaining
        assert_eq!(policy.preemption_victim(&active, Tier::Premium), Some(2));
        // a standard arrival may only displace batch work
        assert_eq!(policy.preemption_victim(&active, Tier::Standard), Some(2));
        // nothing below batch exists
        assert_eq!(policy.preemption_victim(&active, Tier::Batch), None);
        // non-preemptive policies never name a victim
        assert_eq!(
            SchedulerPolicy::Fifo.preemption_victim(&active, Tier::Premium),
            None
        );
        assert_eq!(
            SchedulerPolicy::ShortestRemainingFirst.preemption_victim(&active, Tier::Premium),
            None
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerPolicy::Fifo.to_string(), "fifo");
        assert_eq!(SchedulerPolicy::ShortestRemainingFirst.to_string(), "srf");
        assert_eq!(SchedulerPolicy::PriorityPreemptive.to_string(), "priority");
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Fifo);
    }
}
