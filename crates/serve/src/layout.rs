//! Bridging the model configuration and per-token access records to the
//! hardware simulator's multi-tenant memory layout.
//!
//! Mirrors the single-stream conversion in `experiments::convert` with one
//! serving-specific difference: the statically pinned DRAM region holds one
//! KV cache *per concurrent session slot*, not one — admitting more
//! concurrent users shrinks the DRAM left for the shared weight cache, which
//! is exactly the contention axis the serving scenario studies.

use hwsim::{AccessSet, BlockAccess, LinearLayout, MlpBlockLayout, ModelLayout, TokenAccess};
use lm::{ColumnAccess, MlpAccessRecord, ModelConfig, SliceAxis};

/// Bytes of the statically pinned portion for a serving deployment:
/// non-MLP weights at `bits_per_weight` plus `kv_slots` KV caches of
/// `kv_tokens` context each (FP16, as in the paper's accounting).
///
/// `kv_tokens` is the deployment's per-session context budget — serving
/// engines bound it well below the model's maximum so KV slots do not
/// swallow the DRAM that the shared weight cache needs.
pub fn static_bytes_multi_session(
    config: &ModelConfig,
    bits_per_weight: f64,
    kv_slots: usize,
    kv_tokens: usize,
) -> u64 {
    let static_params = (config.total_params() - config.total_mlp_params()) as f64;
    let kv_fraction = (kv_tokens.min(config.max_seq_len)) as f64 / config.max_seq_len as f64;
    let kv_bytes = config.kv_cache_bytes() * kv_fraction * kv_slots as f64;
    (static_params * bits_per_weight / 8.0 + kv_bytes).ceil() as u64
}

/// Column structure of one linear layer when sliced along `axis`: input-axis
/// slices are weight columns (one per input dimension), output-axis slices
/// are weight rows. Shared with `experiments::convert`.
pub fn linear_layout_for_axis(
    axis: SliceAxis,
    in_dim: usize,
    out_dim: usize,
    bits_per_weight: f64,
) -> LinearLayout {
    let (n_columns, rows_per_column) = match axis {
        SliceAxis::Input => (in_dim, out_dim),
        SliceAxis::Output => (out_dim, in_dim),
    };
    LinearLayout {
        n_columns,
        bytes_per_column: ((rows_per_column as f64) * bits_per_weight / 8.0).ceil() as u64,
    }
}

/// Builds the shared memory layout of a serving deployment, given the
/// resolved per-matrix slicing axes (`[up, gate, down]`, see
/// [`crate::strategy::resolve_axes`]).
pub fn layout_for_serving(
    config: &ModelConfig,
    axes: [SliceAxis; 3],
    bits_per_weight: f64,
    kv_slots: usize,
    kv_tokens: usize,
) -> ModelLayout {
    let d_model = config.d_model;
    let d_ff = config.d_ff;
    let block = MlpBlockLayout {
        up: linear_layout_for_axis(axes[0], d_model, d_ff, bits_per_weight),
        gate: linear_layout_for_axis(axes[1], d_model, d_ff, bits_per_weight),
        down: linear_layout_for_axis(axes[2], d_ff, d_model, bits_per_weight),
    };
    ModelLayout {
        name: format!("{}-serve", config.name),
        bits_per_weight,
        static_bytes: static_bytes_multi_session(config, bits_per_weight, kv_slots, kv_tokens),
        blocks: vec![block; config.n_layers],
    }
}

fn to_access_set(access: &ColumnAccess) -> AccessSet {
    match access {
        ColumnAccess::All => AccessSet::All,
        ColumnAccess::Subset(v) => AccessSet::Subset(v.clone()),
    }
}

/// Converts one token's per-layer access records into a simulator trace token.
pub fn to_token_access(records: &[MlpAccessRecord]) -> TokenAccess {
    TokenAccess {
        blocks: records
            .iter()
            .map(|r| BlockAccess {
                up: to_access_set(&r.up.slices),
                gate: to_access_set(&r.gate.slices),
                down: to_access_set(&r.down.slices),
            })
            .collect(),
    }
}

fn scratch_access_set(buf: &lm::AccessBuf) -> AccessSet {
    match buf.subset() {
        None => AccessSet::All,
        Some(v) => AccessSet::Subset(v.to_vec()),
    }
}

/// Converts one row of a batch scratch's `[layer][row]` access records into
/// a simulator trace token — the batched counterpart of
/// [`to_token_access_scratch`], producing identical tokens for identical
/// accesses.
pub fn to_token_access_batch_row(
    accesses: &[Vec<lm::MlpAccessScratch>],
    row: usize,
) -> TokenAccess {
    TokenAccess {
        blocks: accesses
            .iter()
            .map(|layer| {
                let a = &layer[row];
                BlockAccess {
                    up: scratch_access_set(&a.up),
                    gate: scratch_access_set(&a.gate),
                    down: scratch_access_set(&a.down),
                }
            })
            .collect(),
    }
}

/// Converts the decode scratch's per-layer access records into a simulator
/// trace token (the only allocation a served token makes: the trace itself
/// must own its indices).
pub fn to_token_access_scratch(accesses: &[lm::MlpAccessScratch]) -> TokenAccess {
    TokenAccess {
        blocks: accesses
            .iter()
            .map(|a| BlockAccess {
                up: scratch_access_set(&a.up),
                gate: scratch_access_set(&a.gate),
                down: scratch_access_set(&a.down),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_slots_scale_static_bytes() {
        let config = ModelConfig::tiny();
        let full = config.max_seq_len;
        let one = static_bytes_multi_session(&config, 4.0, 1, full);
        let eight = static_bytes_multi_session(&config, 4.0, 8, full);
        let kv = config.kv_cache_bytes() as u64;
        assert_eq!(eight - one, 7 * kv);
    }

    #[test]
    fn kv_budget_shrinks_static_bytes() {
        let config = ModelConfig::tiny();
        let full = static_bytes_multi_session(&config, 4.0, 4, config.max_seq_len);
        let half = static_bytes_multi_session(&config, 4.0, 4, config.max_seq_len / 2);
        let kv = config.kv_cache_bytes();
        assert_eq!(full - half, (kv * 4.0 / 2.0).ceil() as u64);
        // budgets beyond the model maximum are clamped
        let over = static_bytes_multi_session(&config, 4.0, 4, config.max_seq_len * 10);
        assert_eq!(over, full);
    }

    #[test]
    fn layout_follows_resolved_axes() {
        let config = ModelConfig::tiny();
        let full = config.max_seq_len;
        let input_axes = [SliceAxis::Input; 3];
        let layout = layout_for_serving(&config, input_axes, 4.0, 2, full);
        assert_eq!(layout.blocks[0].up.n_columns, config.d_model);
        assert_eq!(layout.blocks[0].down.n_columns, config.d_ff);
        assert_eq!(layout.n_blocks(), config.n_layers);

        let cats_axes = [SliceAxis::Output, SliceAxis::Input, SliceAxis::Input];
        let cats_layout = layout_for_serving(&config, cats_axes, 4.0, 2, full);
        assert_eq!(cats_layout.blocks[0].up.n_columns, config.d_ff);
        // same total MLP bytes regardless of slicing axis
        assert_eq!(layout.mlp_bytes(), cats_layout.mlp_bytes());
    }

    #[test]
    fn dense_records_convert_to_all() {
        let token = to_token_access(&[MlpAccessRecord::dense()]);
        assert_eq!(token.blocks[0].up, AccessSet::All);
        assert_eq!(token.blocks[0].gate, AccessSet::All);
        assert_eq!(token.blocks[0].down, AccessSet::All);
    }
}
