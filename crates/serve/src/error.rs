//! Error type for the serving engine.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors produced while configuring or running the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Error from the language-model substrate.
    Lm(lm::LmError),
    /// Error from the sparsity core.
    Dip(dip_core::DipError),
    /// Error from the hardware simulator.
    Sim(hwsim::SimError),
    /// An engine configuration value was invalid.
    InvalidConfig {
        /// The configuration field at fault.
        field: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A submitted request cannot be served by this engine.
    InvalidRequest {
        /// The request id.
        id: u64,
        /// Explanation of what was wrong.
        reason: String,
    },
    /// Two admitted requests demand incompatible weight-slicing axes for the
    /// same matrix, so they cannot share one column cache.
    IncompatibleStrategies {
        /// Explanation of the axis conflict.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Lm(e) => write!(f, "model error: {e}"),
            ServeError::Dip(e) => write!(f, "sparsity error: {e}"),
            ServeError::Sim(e) => write!(f, "simulator error: {e}"),
            ServeError::InvalidConfig { field, reason } => {
                write!(f, "invalid serve config `{field}`: {reason}")
            }
            ServeError::InvalidRequest { id, reason } => {
                write!(f, "invalid request {id}: {reason}")
            }
            ServeError::IncompatibleStrategies { reason } => {
                write!(f, "incompatible strategies: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Lm(e) => Some(e),
            ServeError::Dip(e) => Some(e),
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lm::LmError> for ServeError {
    fn from(e: lm::LmError) -> Self {
        ServeError::Lm(e)
    }
}

impl From<dip_core::DipError> for ServeError {
    fn from(e: dip_core::DipError) -> Self {
        ServeError::Dip(e)
    }
}

impl From<hwsim::SimError> for ServeError {
    fn from(e: hwsim::SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ServeError = lm::LmError::BadSequence { reason: "x".into() }.into();
        assert!(e.to_string().contains("model error"));
        assert!(std::error::Error::source(&e).is_some());
        let e: ServeError = hwsim::SimError::TraceOutOfRange { what: "w".into() }.into();
        assert!(e.to_string().contains("simulator"));
        let e: ServeError = dip_core::DipError::CalibrationMismatch { reason: "r".into() }.into();
        assert!(e.to_string().contains("sparsity"));
        let e = ServeError::InvalidRequest {
            id: 7,
            reason: "empty prompt".into(),
        };
        assert!(e.to_string().contains("7"));
        assert!(std::error::Error::source(&e).is_none());
        let e = ServeError::IncompatibleStrategies {
            reason: "axes".into(),
        };
        assert!(e.to_string().contains("axes"));
    }
}
