//! Per-request sparsity strategies and their engine-side instantiation.
//!
//! Requests name a [`SparsityPolicy`]; the engine turns it into a concrete
//! [`lm::MlpForward`] implementation from the `dip-core` crate. Two details
//! are serving-specific:
//!
//! * **Shared cache model for DIP-CA.** Cache-aware masking re-weights
//!   activation scores by "is this column currently in DRAM". In a
//!   multi-tenant engine the DRAM column cache is shared, so every DIP-CA
//!   session must consult (and update) *one* cache model rather than a
//!   private copy — otherwise each session optimises for a cache that does
//!   not exist. [`SharedStrategy`] wraps one `DipCacheAware` instance in a
//!   shared cell handed to every DIP-CA session of a run, and the engine
//!   additionally feeds *co-tenant* traffic (dense/DIP/other-γ sessions)
//!   into each shared model via [`StrategyFactory::observe_cross_traffic`],
//!   so the model tracks everything that flows through the physical cache.
//! * **Axis compatibility.** The DRAM cache holds weight *slices*; DIP-family
//!   methods slice `W_u`/`W_g` by input column while CATS slices them by
//!   output neuron. Slices along different axes cannot share one cache, so
//!   the engine checks [`SparsityPolicy::axis_requirements`] across all
//!   requests of a run before building the shared layout.

use crate::error::{Result, ServeError};
use dip_core::strategies::{CatsPruning, Dip, DipCacheAware};
use dip_core::{DensityAllocation, SparsityScheme};
use lm::mlp::DenseMlp;
use lm::{ActivationTrace, GluMlp, MlpForward, MlpForwardOutput, SliceAxis, TransformerModel};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// The sparsity strategy a request runs under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SparsityPolicy {
    /// Stream the dense model (every weight column, every token).
    Dense,
    /// Dynamic Input Pruning at a target overall MLP weight density.
    Dip {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
    },
    /// Cache-aware DIP: DIP whose selection is re-weighted by the *shared*
    /// DRAM cache state (one cache model per engine run).
    DipCacheAware {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
        /// Cache-aware penalty γ in `(0, 1]` (the paper uses 0.2).
        gamma: f32,
    },
    /// CATS threshold pruning at a target overall MLP weight density
    /// (requires a calibration trace; the engine calibrates lazily).
    Cats {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
    },
}

impl SparsityPolicy {
    /// Short label used in reports.
    pub fn label(&self) -> String {
        match self {
            SparsityPolicy::Dense => "dense".to_string(),
            SparsityPolicy::Dip { density } => format!("dip@{density:.2}"),
            SparsityPolicy::DipCacheAware { density, gamma } => {
                format!("dip-ca@{density:.2}(g={gamma})")
            }
            SparsityPolicy::Cats { density } => format!("cats@{density:.2}"),
        }
    }

    /// The weight-slicing axis each MLP matrix is loaded along
    /// (`[up, gate, down]`); `None` means dense access, which is compatible
    /// with any axis.
    pub fn axis_requirements(&self) -> [Option<SliceAxis>; 3] {
        match self {
            SparsityPolicy::Dense => [None, None, None],
            SparsityPolicy::Dip { .. } | SparsityPolicy::DipCacheAware { .. } => [
                Some(SliceAxis::Input),
                Some(SliceAxis::Input),
                Some(SliceAxis::Input),
            ],
            // CATS skips whole neurons: rows of W_u (output axis), dense gate,
            // columns of W_d (input axis).
            SparsityPolicy::Cats { .. } => [Some(SliceAxis::Output), None, Some(SliceAxis::Input)],
        }
    }

    /// Whether this policy needs a calibration trace.
    pub fn needs_calibration(&self) -> bool {
        matches!(self, SparsityPolicy::Cats { .. })
    }
}

/// One DIP-CA instance shared by several sessions (interior-mutable because
/// [`MlpForward::forward`] takes `&mut self` and sessions interleave).
#[derive(Clone)]
pub struct SharedStrategy {
    inner: Rc<RefCell<DipCacheAware>>,
}

impl SharedStrategy {
    /// Wraps a cache-aware strategy for shared use.
    pub fn new(strategy: DipCacheAware) -> Self {
        SharedStrategy {
            inner: Rc::new(RefCell::new(strategy)),
        }
    }

    /// Feeds a co-tenant's weight accesses into the shared cache model (see
    /// [`DipCacheAware::observe_access`]).
    pub fn observe_access(&self, layer: usize, input_cols: &[usize], glu_cols: &[usize]) {
        self.inner
            .borrow_mut()
            .observe_access(layer, input_cols, glu_cols);
    }
}

impl MlpForward for SharedStrategy {
    fn forward(&mut self, layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        self.inner.borrow_mut().forward(layer, mlp, x)
    }

    fn name(&self) -> String {
        format!("shared({})", self.inner.borrow().name())
    }

    fn reset(&mut self) {
        self.inner.borrow_mut().reset();
    }
}

/// Builds concrete strategies for one engine run, sharing the DIP-CA cache
/// model across sessions with identical (density, γ).
pub struct StrategyFactory {
    allocation: DensityAllocation,
    shared_dip_ca: Vec<((u32, u32), SharedStrategy)>,
    calibrated_cats: Vec<(u32, CatsPruning)>,
}

fn key(v: f32) -> u32 {
    (v * 10_000.0).round() as u32
}

/// The cache-sharing key of a DIP-CA policy; `None` for every other policy.
pub(crate) fn dip_ca_key(policy: SparsityPolicy) -> Option<(u32, u32)> {
    match policy {
        SparsityPolicy::DipCacheAware { density, gamma } => Some((key(density), key(gamma))),
        _ => None,
    }
}

impl StrategyFactory {
    /// Creates a factory using the balanced density-allocation model.
    pub fn new() -> Self {
        StrategyFactory {
            allocation: DensityAllocation::balanced(),
            shared_dip_ca: Vec::new(),
            calibrated_cats: Vec::new(),
        }
    }

    /// Instantiates the strategy for one session.
    ///
    /// `capacities` sizes DIP-CA's shared cache model (one entry per layer,
    /// from the same DRAM allocation the simulator uses) and `calibration`
    /// provides the CATS thresholds' calibration trace.
    ///
    /// # Errors
    ///
    /// Propagates strategy construction/calibration errors; requesting CATS
    /// without a calibration trace is an [`ServeError::InvalidConfig`].
    pub fn instantiate(
        &mut self,
        policy: SparsityPolicy,
        model: &TransformerModel,
        capacities: &[hwsim::BlockCacheCapacity],
        calibration: Option<&ActivationTrace>,
    ) -> Result<Box<dyn MlpForward>> {
        match policy {
            SparsityPolicy::Dense => Ok(Box::new(DenseMlp)),
            SparsityPolicy::Dip { density } => {
                let (input_d, glu_d) = self.allocation.split(density)?;
                Ok(Box::new(Dip::new(input_d, glu_d)?))
            }
            SparsityPolicy::DipCacheAware { density, gamma } => {
                let k = dip_ca_key(policy).expect("policy is DIP-CA");
                if let Some((_, shared)) = self.shared_dip_ca.iter().find(|(kk, _)| *kk == k) {
                    return Ok(Box::new(shared.clone()));
                }
                let (input_d, glu_d) = self.allocation.split(density)?;
                let strategy = DipCacheAware::new(
                    input_d,
                    glu_d,
                    gamma,
                    model.config.d_model,
                    model.config.d_ff,
                    capacities.to_vec(),
                )?;
                let shared = SharedStrategy::new(strategy);
                self.shared_dip_ca.push((k, shared.clone()));
                Ok(Box::new(shared))
            }
            SparsityPolicy::Cats { density } => {
                // thresholds depend only on (model, density); calibrate once
                // per density and clone for each session
                let k = key(density);
                if let Some((_, cats)) = self.calibrated_cats.iter().find(|(kk, _)| *kk == k) {
                    return Ok(Box::new(cats.clone()));
                }
                let calibration = calibration.ok_or(ServeError::InvalidConfig {
                    field: "calibration",
                    reason: "CATS requires a calibration trace".to_string(),
                })?;
                let neuron_density =
                    SparsityScheme::TwoOfThree.activation_density_for_target(density)?;
                let cats = CatsPruning::calibrate(model, calibration, neuron_density)?;
                self.calibrated_cats.push((k, cats.clone()));
                Ok(Box::new(cats))
            }
        }
    }

    /// Feeds one served token's weight accesses into every shared DIP-CA
    /// cache model except the one that produced it (`served`) — its own
    /// forward pass already updated itself. This keeps each cache-aware mask
    /// consistent with the *shared* DRAM cache that all tenants' traffic
    /// flows through.
    ///
    /// Axis note: mixes of DIP-CA with output-axis strategies (CATS) are
    /// rejected by [`resolve_axes`] before any token is served, so the `up`
    /// and `down` records seen here are always input-axis (or dense `All`).
    pub fn observe_cross_traffic(
        &self,
        served: Option<(u32, u32)>,
        records: &[lm::MlpAccessRecord],
        d_model: usize,
        d_ff: usize,
    ) {
        if self.shared_dip_ca.iter().all(|(k, _)| served == Some(*k)) {
            return;
        }
        // materialise the per-layer column indices once, not once per model
        let per_layer: Vec<(Vec<usize>, Vec<usize>)> = records
            .iter()
            .map(|rec| {
                (
                    rec.up.slices.indices(d_model),
                    rec.down.slices.indices(d_ff),
                )
            })
            .collect();
        for (k, shared) in &self.shared_dip_ca {
            if served == Some(*k) {
                continue;
            }
            for (layer, (input_cols, glu_cols)) in per_layer.iter().enumerate() {
                shared.observe_access(layer, input_cols, glu_cols);
            }
        }
    }
}

impl Default for StrategyFactory {
    fn default() -> Self {
        StrategyFactory::new()
    }
}

/// Checks that every request's axis demands agree per matrix, returning the
/// resolved axes (`[up, gate, down]`, defaulting to the input axis wherever
/// every request is dense).
///
/// # Errors
///
/// Returns [`ServeError::IncompatibleStrategies`] on a conflict.
pub fn resolve_axes(policies: &[SparsityPolicy]) -> Result<[SliceAxis; 3]> {
    let names = ["up", "gate", "down"];
    let mut resolved: [Option<SliceAxis>; 3] = [None, None, None];
    for p in policies {
        for (i, need) in p.axis_requirements().iter().enumerate() {
            match (resolved[i], *need) {
                (_, None) => {}
                (None, Some(a)) => resolved[i] = Some(a),
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => {
                    return Err(ServeError::IncompatibleStrategies {
                        reason: format!(
                            "matrix `{}` is sliced along {a:?} by one request and {b:?} by `{}`; \
                             slices along different axes cannot share one column cache",
                            names[i],
                            p.label()
                        ),
                    });
                }
            }
        }
    }
    Ok([
        resolved[0].unwrap_or(SliceAxis::Input),
        resolved[1].unwrap_or(SliceAxis::Input),
        resolved[2].unwrap_or(SliceAxis::Input),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, ModelConfig};

    fn capacities(config: &ModelConfig) -> Vec<hwsim::BlockCacheCapacity> {
        (0..config.n_layers)
            .map(|_| hwsim::BlockCacheCapacity {
                up: config.d_model / 2,
                gate: config.d_model / 2,
                down: config.d_ff / 2,
            })
            .collect()
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            SparsityPolicy::Dense,
            SparsityPolicy::Dip { density: 0.5 },
            SparsityPolicy::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
            SparsityPolicy::Cats { density: 0.5 },
        ]
        .iter()
        .map(SparsityPolicy::label)
        .collect();
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn axis_resolution_accepts_dip_family_and_dense() {
        let axes = resolve_axes(&[
            SparsityPolicy::Dense,
            SparsityPolicy::Dip { density: 0.5 },
            SparsityPolicy::DipCacheAware {
                density: 0.4,
                gamma: 0.2,
            },
        ])
        .unwrap();
        assert_eq!(axes, [SliceAxis::Input; 3]);
    }

    #[test]
    fn axis_resolution_accepts_cats_with_dense_only() {
        let axes =
            resolve_axes(&[SparsityPolicy::Cats { density: 0.5 }, SparsityPolicy::Dense]).unwrap();
        assert_eq!(axes[0], SliceAxis::Output);
        assert_eq!(axes[1], SliceAxis::Input);
        assert_eq!(axes[2], SliceAxis::Input);
    }

    #[test]
    fn axis_resolution_rejects_cats_plus_dip() {
        let err = resolve_axes(&[
            SparsityPolicy::Dip { density: 0.5 },
            SparsityPolicy::Cats { density: 0.5 },
        ])
        .unwrap_err();
        assert!(matches!(err, ServeError::IncompatibleStrategies { .. }));
    }

    #[test]
    fn factory_shares_dip_ca_instances() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let caps = capacities(&config);
        let mut factory = StrategyFactory::new();
        let policy = SparsityPolicy::DipCacheAware {
            density: 0.5,
            gamma: 0.2,
        };
        let mut a = factory.instantiate(policy, &model, &caps, None).unwrap();
        let mut b = factory.instantiate(policy, &model, &caps, None).unwrap();
        assert_eq!(factory.shared_dip_ca.len(), 1);
        assert!(a.name().starts_with("shared("));

        // the two handles share cache state: a's accesses influence b's view.
        let x = vec![0.3f32; config.d_model];
        let mlp = &model.layers[0].mlp;
        let first = a.forward(0, mlp, &x).unwrap();
        let second = b.forward(0, mlp, &x).unwrap();
        assert_eq!(
            first.access, second.access,
            "warm shared cache keeps the selection stable"
        );

        // a different gamma gets its own instance
        let other = SparsityPolicy::DipCacheAware {
            density: 0.5,
            gamma: 0.9,
        };
        factory.instantiate(other, &model, &caps, None).unwrap();
        assert_eq!(factory.shared_dip_ca.len(), 2);
    }

    #[test]
    fn cross_traffic_observation_reaches_other_models_only() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let caps = capacities(&config);
        let policy = SparsityPolicy::DipCacheAware {
            density: 0.5,
            gamma: 0.2,
        };
        let k = dip_ca_key(policy).unwrap();
        // near-uniform input so the cache-aware bias dominates the selection
        let x: Vec<f32> = (0..config.d_model).map(|i| 0.5 + 1e-4 * i as f32).collect();
        let mlp = &model.layers[0].mlp;
        // a dense co-tenant token: every input column, every glu column
        let dense_records: Vec<lm::MlpAccessRecord> = (0..config.n_layers)
            .map(|_| lm::MlpAccessRecord {
                up: lm::MatrixAccess::input((0..config.d_model / 3).collect()),
                gate: lm::MatrixAccess::input((0..config.d_model / 3).collect()),
                down: lm::MatrixAccess::input((0..config.d_ff / 3).collect()),
            })
            .collect();

        let run_with = |served: Option<(u32, u32)>| {
            let mut factory = StrategyFactory::new();
            let mut strategy = factory.instantiate(policy, &model, &caps, None).unwrap();
            for _ in 0..8 {
                factory.observe_cross_traffic(served, &dense_records, config.d_model, config.d_ff);
            }
            strategy.forward(0, mlp, &x).unwrap().access
        };

        // traffic attributed to the model itself is not double-counted...
        let own = run_with(Some(k));
        // ...but a co-tenant's traffic shifts the cache-aware selection
        let foreign = run_with(None);
        assert_ne!(
            own, foreign,
            "co-tenant traffic must reach the shared model"
        );
    }

    #[test]
    fn cats_without_calibration_is_rejected() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let mut factory = StrategyFactory::new();
        let result = factory.instantiate(SparsityPolicy::Cats { density: 0.5 }, &model, &[], None);
        assert!(matches!(result, Err(ServeError::InvalidConfig { .. })));
    }

    #[test]
    fn cats_calibration_is_memoized_per_density() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let seqs = lm::eval::standard_eval_corpus(&model, 2, 12, 1).unwrap();
        let trace = lm::trace::collect_activation_trace(&model, &seqs).unwrap();
        let mut factory = StrategyFactory::new();
        let policy = SparsityPolicy::Cats { density: 0.5 };
        factory
            .instantiate(policy, &model, &[], Some(&trace))
            .unwrap();
        assert_eq!(factory.calibrated_cats.len(), 1);
        // same density: the cached thresholds are reused (works even without
        // a calibration trace because no recalibration happens)
        factory.instantiate(policy, &model, &[], None).unwrap();
        assert_eq!(factory.calibrated_cats.len(), 1);
        // a different density calibrates again
        factory
            .instantiate(
                SparsityPolicy::Cats { density: 0.7 },
                &model,
                &[],
                Some(&trace),
            )
            .unwrap();
        assert_eq!(factory.calibrated_cats.len(), 2);
    }

    #[test]
    fn dense_and_dip_instantiate() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let mut factory = StrategyFactory::new();
        let mut dense = factory
            .instantiate(SparsityPolicy::Dense, &model, &[], None)
            .unwrap();
        assert_eq!(dense.name(), "dense");
        let mut dip = factory
            .instantiate(SparsityPolicy::Dip { density: 0.5 }, &model, &[], None)
            .unwrap();
        let x = vec![0.2f32; config.d_model];
        let mlp = &model.layers[0].mlp;
        assert!(dense.forward(0, mlp, &x).is_ok());
        assert!(dip.forward(0, mlp, &x).is_ok());
    }
}
