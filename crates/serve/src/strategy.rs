//! Engine-side strategy instantiation on top of the shared declarative
//! strategy API ([`dip_core::spec`]).
//!
//! Requests name a [`StrategySpec`]; the engine turns it into a concrete
//! [`lm::MlpForward`] implementation through one
//! [`dip_core::spec::StrategyRegistry`] per run, which owns the details that
//! used to be serving-specific re-implementations:
//!
//! * **Shared cache model for DIP-CA.** Cache-aware masking re-weights
//!   activation scores by "is this column currently in DRAM". In a
//!   multi-tenant engine the DRAM column cache is shared, so every DIP-CA
//!   session with the same `(density, γ)` gets the *same*
//!   [`dip_core::spec::SharedMlpForward`] cell, and the engine feeds
//!   *co-tenant* traffic (dense/DIP/other-γ sessions) into each shared model
//!   via [`StrategyFactory::observe_cross_traffic`].
//! * **Axis compatibility.** The DRAM cache holds weight *slices*; specs
//!   declare which axis they slice each matrix along
//!   ([`StrategySpec::axis_requirements`]), and [`resolve_axes`] rejects
//!   mixes that cannot share one column cache before any token is served.
//! * **Calibration and training hooks.** CATS thresholds are calibrated and
//!   DejaVu predictors trained lazily from the engine's calibration trace,
//!   memoized per configuration by the registry.
//!
//! Specs that require an offline *weight transform* (SparseGPT static
//! pruning, LoRA fusing — [`StrategySpec::weight_transform`]) are rejected:
//! a per-request strategy cannot rewrite the model that every other tenant
//! is concurrently decoding with. Those methods run in the single-stream
//! experiment workbench, which owns its model.

use crate::error::{Result, ServeError};
use dip_core::spec::{BuildEnv, StrategyRegistry};
use lm::{ActivationTrace, MlpForward, SliceAxis, TransformerModel};

pub use dip_core::spec::{NmPattern, PredictorSpec, SharedMlpForward, StrategySpec};

/// Builds concrete strategies for one engine run (a thin serving adapter
/// over [`StrategyRegistry`]).
pub struct StrategyFactory {
    registry: StrategyRegistry,
}

impl StrategyFactory {
    /// Creates a factory using the balanced density-allocation model.
    pub fn new() -> Self {
        StrategyFactory {
            registry: StrategyRegistry::new(),
        }
    }

    /// Instantiates the strategy for one session.
    ///
    /// `capacities` sizes DIP-CA's shared cache model (one entry per layer,
    /// from the same DRAM allocation the simulator uses) and `calibration`
    /// provides the trace behind CATS thresholds and predictor training.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for weight-transforming specs
    /// and propagates strategy construction/calibration errors (requesting a
    /// calibration-requiring spec without a trace included).
    pub fn instantiate(
        &mut self,
        spec: &StrategySpec,
        model: &TransformerModel,
        capacities: &[hwsim::BlockCacheCapacity],
        calibration: Option<&ActivationTrace>,
    ) -> Result<Box<dyn MlpForward>> {
        if spec.weight_transform().is_some() {
            return Err(ServeError::InvalidConfig {
                field: "strategy",
                reason: format!(
                    "`{}` requires an offline weight transform and cannot run \
                     per-request against the shared serving model",
                    spec.label()
                ),
            });
        }
        let env = BuildEnv {
            model,
            calibration,
            capacities: Some(capacities),
        };
        Ok(self.registry.build(spec, &env)?.strategy)
    }

    /// Feeds one served token's weight accesses into every shared DIP-CA
    /// cache model except the one that produced it (`served`, the serving
    /// session's [`StrategySpec::shared_cache_key`]). See
    /// [`StrategyRegistry::observe_cross_traffic`].
    pub fn observe_cross_traffic(
        &self,
        served: Option<(u32, u32)>,
        records: &[lm::MlpAccessRecord],
        d_model: usize,
        d_ff: usize,
    ) {
        self.registry
            .observe_cross_traffic(served, records, d_model, d_ff);
    }

    /// Allocation-free cross-traffic observation of one row of a batched
    /// step, in batch (= schedule) order. See
    /// [`StrategyRegistry::observe_cross_traffic_batch_row`].
    pub fn observe_cross_traffic_batch_row(
        &mut self,
        served: Option<(u32, u32)>,
        accesses: &[Vec<lm::MlpAccessScratch>],
        row: usize,
        d_model: usize,
        d_ff: usize,
    ) {
        self.registry
            .observe_cross_traffic_batch_row(served, accesses, row, d_model, d_ff);
    }

    /// Allocation-free [`StrategyFactory::observe_cross_traffic`] fed from
    /// the engine's decode scratch. See
    /// [`StrategyRegistry::observe_cross_traffic_scratch`].
    pub fn observe_cross_traffic_scratch(
        &mut self,
        served: Option<(u32, u32)>,
        accesses: &[lm::MlpAccessScratch],
        d_model: usize,
        d_ff: usize,
    ) {
        self.registry
            .observe_cross_traffic_scratch(served, accesses, d_model, d_ff);
    }

    /// Number of distinct shared DIP-CA cells built so far (diagnostics).
    pub fn shared_cell_count(&self) -> usize {
        self.registry.shared_cell_count()
    }
}

impl Default for StrategyFactory {
    fn default() -> Self {
        StrategyFactory::new()
    }
}

/// Checks that every request's axis demands agree per matrix, returning the
/// resolved axes (`[up, gate, down]`, defaulting to the input axis wherever
/// every request is dense). Delegates to [`dip_core::spec::resolve_axes`].
///
/// # Errors
///
/// Returns [`ServeError::IncompatibleStrategies`] on a conflict.
pub fn resolve_axes(specs: &[StrategySpec]) -> Result<[SliceAxis; 3]> {
    dip_core::spec::resolve_axes(specs).map_err(|e| match e {
        dip_core::DipError::IncompatibleSpecs { reason } => {
            ServeError::IncompatibleStrategies { reason }
        }
        other => ServeError::Dip(other),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, ModelConfig};

    fn capacities(config: &ModelConfig) -> Vec<hwsim::BlockCacheCapacity> {
        (0..config.n_layers)
            .map(|_| hwsim::BlockCacheCapacity {
                up: config.d_model / 2,
                gate: config.d_model / 2,
                down: config.d_ff / 2,
            })
            .collect()
    }

    #[test]
    fn axis_resolution_maps_conflicts_to_serve_errors() {
        let axes = resolve_axes(&[
            StrategySpec::Dense,
            StrategySpec::Dip { density: 0.5 },
            StrategySpec::DipCacheAware {
                density: 0.4,
                gamma: 0.2,
            },
        ])
        .unwrap();
        assert_eq!(axes, [SliceAxis::Input; 3]);

        let err = resolve_axes(&[
            StrategySpec::Dip { density: 0.5 },
            StrategySpec::Cats { density: 0.5 },
        ])
        .unwrap_err();
        assert!(matches!(err, ServeError::IncompatibleStrategies { .. }));
    }

    #[test]
    fn factory_shares_dip_ca_instances() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let caps = capacities(&config);
        let mut factory = StrategyFactory::new();
        let spec = StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.2,
        };
        let mut a = factory.instantiate(&spec, &model, &caps, None).unwrap();
        let mut b = factory.instantiate(&spec, &model, &caps, None).unwrap();
        assert_eq!(factory.shared_cell_count(), 1);
        assert!(a.name().starts_with("shared("));

        // the two handles share cache state: a's accesses influence b's view.
        let x = vec![0.3f32; config.d_model];
        let mlp = &model.layers[0].mlp;
        let first = a.forward(0, mlp, &x).unwrap();
        let second = b.forward(0, mlp, &x).unwrap();
        assert_eq!(
            first.access, second.access,
            "warm shared cache keeps the selection stable"
        );

        let other = StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.9,
        };
        factory.instantiate(&other, &model, &caps, None).unwrap();
        assert_eq!(factory.shared_cell_count(), 2);
    }

    #[test]
    fn weight_transforming_specs_are_rejected() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let mut factory = StrategyFactory::new();
        for spec in [
            StrategySpec::SparseGpt {
                density: 0.5,
                pattern: NmPattern::NofM { n: 2, m: 4 },
            },
            StrategySpec::DipLora {
                density: 0.5,
                rank: 8,
            },
            StrategySpec::CatsLora {
                density: 0.5,
                rank: 8,
            },
        ] {
            let result = factory.instantiate(&spec, &model, &[], None);
            assert!(
                matches!(
                    result,
                    Err(ServeError::InvalidConfig {
                        field: "strategy",
                        ..
                    })
                ),
                "{} must be rejected",
                spec.label()
            );
        }
    }

    #[test]
    fn cats_without_calibration_is_rejected() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let mut factory = StrategyFactory::new();
        let result = factory.instantiate(&StrategySpec::Cats { density: 0.5 }, &model, &[], None);
        assert!(matches!(
            result,
            Err(ServeError::Dip(dip_core::DipError::InvalidParameter {
                name: "calibration",
                ..
            }))
        ));
    }

    #[test]
    fn non_dip_family_specs_instantiate_for_serving() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 5).unwrap();
        let seqs = lm::eval::standard_eval_corpus(&model, 2, 12, 1).unwrap();
        let trace = lm::trace::collect_activation_trace(&model, &seqs).unwrap();
        let mut factory = StrategyFactory::new();
        let x = vec![0.2f32; config.d_model];
        let mlp = &model.layers[0].mlp;
        for spec in [
            StrategySpec::Dense,
            StrategySpec::GluPruning { density: 0.75 },
            StrategySpec::GatePruning { density: 0.5 },
            StrategySpec::UpPruning { density: 0.5 },
            StrategySpec::Cats { density: 0.5 },
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec {
                    hidden: Some(16),
                    epochs: Some(1),
                },
            },
            StrategySpec::Dip { density: 0.5 },
        ] {
            let mut strategy = factory
                .instantiate(&spec, &model, &[], Some(&trace))
                .unwrap();
            assert!(strategy.forward(0, mlp, &x).is_ok(), "{}", spec.label());
        }
    }
}
