//! One admitted user session: decode state, strategy and access bookkeeping.

use crate::error::Result;
use crate::layout::to_token_access_scratch;
use crate::report::FinishReason;
use crate::request::GenRequest;
use hwsim::{AccessTrace, TokenAccess};
use lm::model::sample_from_logits;
use lm::{DecodeScratch, DecodeState, MlpForward, TransformerModel};
use rand::rngs::StdRng;

/// Lifecycle phase of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Prompt tokens are still being prefilled.
    Prefill,
    /// New tokens are being generated.
    Decode,
    /// All requested tokens have been produced.
    Finished,
}

/// What the engine's batch planner decided for one schedule position (see
/// `Session::plan_token`).
#[derive(Debug, Clone, Copy)]
pub struct PlannedToken {
    /// The token fed to the model at this position.
    pub token: u32,
    /// Whether the position served a prompt (prefill) token.
    pub was_prefill: bool,
    /// Whether this position served the *last* prompt token (its completion
    /// makes the first generated token available).
    pub prefill_ended: bool,
}

/// A request that has been admitted and holds a KV-cache slot.
pub struct Session {
    /// Stream index used in the shared-cache replay (submission order).
    pub stream: usize,
    /// The request being served.
    pub request: GenRequest,
    /// Engine step at which the session was admitted.
    pub admitted_step: usize,
    /// Per-layer KV caches + position (from the engine's state pool).
    pub state: DecodeState,
    /// The MLP strategy instance for this session.
    pub strategy: Box<dyn MlpForward>,
    /// Tokens generated so far.
    pub generated: Vec<u32>,
    /// Weight-access trace of every served token (prefill + decode).
    pub trace: AccessTrace,
    /// Step at which this session was last served (scheduler bookkeeping for
    /// least-recently-served token ordering).
    pub last_served_step: usize,
    /// Global schedule position of the last prefill forward pass — the step
    /// whose completion makes the first generated token available.
    last_prefill_position: Option<usize>,
    next_prompt_idx: usize,
    last_logits: Vec<f32>,
    /// Pages of the paged KV pool this session's admission committed (the
    /// engine's conservative memory accounting; 0 under flat backing).
    pub(crate) kv_pages_committed: usize,
    /// Prompt tokens skipped at admission because a shared prefix was
    /// already prefilled (see [`Session::skip_prefilled_prefix`]).
    pub(crate) prefix_skipped: usize,
    /// `Some(len)` while this session owes the engine a shared-prefix
    /// registration once its decode position reaches `len`.
    pub(crate) pending_prefix_register: Option<usize>,
    /// Generation budget: `max_new_tokens` clamped by the client's
    /// `cancel_after_tokens` patience.
    token_budget: usize,
    /// Tokens lost to a KV page-loss fault, queued for re-prefill (the
    /// recomputed KV is bitwise identical, so outputs are unchanged — only
    /// timing shifts). Served before any new prompt/decode work.
    replay: Vec<u32>,
    /// Progress cursor into `replay`.
    replay_idx: usize,
    /// How the session's lifecycle ended (meaningful once retired;
    /// [`FinishReason::Completed`] by default).
    pub(crate) finish: FinishReason,
    /// Whether admission downgraded this session's strategy along the
    /// fallback chain.
    pub(crate) degraded: bool,
    /// Service attempts this request has consumed, including this one.
    pub(crate) attempts: u32,
}

impl Session {
    /// Creates a session around an acquired decode state and strategy.
    pub fn new(
        stream: usize,
        request: GenRequest,
        admitted_step: usize,
        state: DecodeState,
        strategy: Box<dyn MlpForward>,
    ) -> Self {
        let token_budget = request.effective_new_tokens();
        Session {
            stream,
            request,
            admitted_step,
            state,
            strategy,
            generated: Vec::new(),
            trace: AccessTrace::new(),
            last_served_step: admitted_step,
            last_prefill_position: None,
            next_prompt_idx: 0,
            last_logits: Vec::new(),
            kv_pages_committed: 0,
            prefix_skipped: 0,
            pending_prefix_register: None,
            token_budget,
            replay: Vec::new(),
            replay_idx: 0,
            finish: FinishReason::Completed,
            degraded: false,
            attempts: 1,
        }
    }

    /// Generation budget after client patience (`max_new_tokens` clamped by
    /// `cancel_after_tokens`).
    pub fn token_budget(&self) -> usize {
        self.token_budget
    }

    /// Whether the client's patience caps generation below the requested
    /// budget — such a session retires as [`FinishReason::Cancelled`].
    pub(crate) fn token_capped(&self) -> bool {
        self.token_budget < self.request.max_new_tokens
    }

    /// Marks the first `len` prompt tokens as already prefilled: the engine
    /// mapped a shared prefix's KV pages into this session's paged state, so
    /// the prompt cursor starts past them and they are never planned,
    /// served or priced. Callers must keep `len < prompt.len()` (the last
    /// prompt token always runs, so its logits exist to sample from) and
    /// must have advanced `state.pos` to match.
    pub(crate) fn skip_prefilled_prefix(&mut self, len: usize) {
        debug_assert!(self.next_prompt_idx == 0, "skip only at admission");
        debug_assert!(len < self.request.prompt.len());
        self.next_prompt_idx = len;
        self.prefix_skipped = len;
    }

    /// Prompt tokens this session never served because a shared prefix was
    /// already prefilled.
    pub fn prefix_tokens_skipped(&self) -> usize {
        self.prefix_skipped
    }

    /// Current lifecycle phase. A pending page-loss replay counts as
    /// prefill: the lost suffix must be recomputed before any new token.
    pub fn phase(&self) -> SessionPhase {
        if self.replay_idx < self.replay.len() || self.next_prompt_idx < self.request.prompt.len() {
            SessionPhase::Prefill
        } else if self.generated.len() < self.token_budget {
            SessionPhase::Decode
        } else {
            SessionPhase::Finished
        }
    }

    /// Tokens still to be served (replay + prefill + decode).
    pub fn remaining_tokens(&self) -> usize {
        (self.replay.len() - self.replay_idx)
            + (self.request.prompt.len() - self.next_prompt_idx)
            + (self.token_budget - self.generated.len())
    }

    /// Prompt-phase tokens still to be served (page-loss replay plus
    /// unserved prompt): what the engine chunks as prefill work.
    pub(crate) fn prompt_remaining(&self) -> usize {
        (self.replay.len() - self.replay_idx) + (self.request.prompt.len() - self.next_prompt_idx)
    }

    /// Rewinds the session to context length `new_pos` after a KV page-loss
    /// fault, truncating every layer's cache and queueing the lost tokens
    /// for re-prefill. `new_pos` must lie in `[prefix_skipped, state.pos]`
    /// — the caller picks the victim's last whole page boundary, never
    /// below the adopted shared prefix (re-filling private copies of
    /// adopted prefix pages would exceed the admission page commitment).
    ///
    /// Re-feeding the same tokens into the truncated cache recomputes
    /// bitwise-identical KV entries, so generated outputs are unchanged;
    /// the fault costs time, not correctness. Returns the number of
    /// context tokens newly lost (`old_pos - new_pos`).
    pub(crate) fn rewind_for_refill(&mut self, new_pos: usize) -> usize {
        let old_pos = self.state.pos;
        debug_assert!(new_pos >= self.prefix_skipped && new_pos <= old_pos);
        for layer in &mut self.state.kv {
            layer.truncate(new_pos);
        }
        self.state.pos = new_pos;
        if self.generated.is_empty() {
            // Still prefilling (or exactly at prompt end with nothing
            // sampled): rewind the prompt cursor and let the ordinary
            // prefill machinery re-serve the tail, re-establishing the
            // last-prefill schedule position.
            self.replay.clear();
            self.replay_idx = 0;
            self.next_prompt_idx = new_pos;
            self.last_prefill_position = None;
        } else {
            // Decoding: the full context is prompt + generated. Queue every
            // token not currently in the cache (including any replay still
            // pending from an earlier loss) for recomputation.
            let full = self.request.prompt.len() + self.generated.len();
            self.replay.clear();
            self.replay_idx = 0;
            for i in new_pos..full {
                let t = if i < self.request.prompt.len() {
                    self.request.prompt[i]
                } else {
                    self.generated[i - self.request.prompt.len()]
                };
                self.replay.push(t);
            }
        }
        old_pos - new_pos
    }

    /// Decides (and commits to) the next token this session serves at
    /// schedule position `step`: the next prompt token during prefill, a
    /// token sampled from the last logits during decode. All scheduling
    /// bookkeeping happens here — prompt cursor, generated list, the
    /// last-prefill schedule position — so the batch planner can make
    /// scheduler-faithful decisions *before* any forward pass runs, in
    /// exactly the order (including RNG draws) the sequential engine would.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub(crate) fn plan_token(&mut self, rng: &mut StdRng, step: usize) -> Result<PlannedToken> {
        debug_assert!(self.phase() != SessionPhase::Finished);
        if self.replay_idx < self.replay.len() {
            // Page-loss refill: re-feed a known token (no RNG draw — the
            // engine's sampling stream is untouched by replay).
            let token = self.replay[self.replay_idx];
            self.replay_idx += 1;
            if self.replay_idx == self.replay.len() {
                self.replay.clear();
                self.replay_idx = 0;
            }
            return Ok(PlannedToken {
                token,
                was_prefill: true,
                // never re-signals TTFT: the first token was already
                // produced before the fault (replay implies decode phase)
                prefill_ended: false,
            });
        }
        let was_prefill = self.next_prompt_idx < self.request.prompt.len();
        let token = if was_prefill {
            let t = self.request.prompt[self.next_prompt_idx];
            self.next_prompt_idx += 1;
            if self.next_prompt_idx == self.request.prompt.len() {
                self.last_prefill_position = Some(step);
            }
            t
        } else {
            let t = sample_from_logits(&self.last_logits, self.request.temperature, rng)?;
            self.generated.push(t);
            t
        };
        Ok(PlannedToken {
            token,
            was_prefill,
            prefill_ended: was_prefill && self.next_prompt_idx == self.request.prompt.len(),
        })
    }

    /// Completes one served token: records its weight accesses into the
    /// session trace and, when given, the logits it produced. `None` logits
    /// are the interior rows of a prefill chunk — the sequential path
    /// computes those logits and immediately overwrites them, so not
    /// storing them changes no observable value.
    pub(crate) fn finish_row(&mut self, access: TokenAccess, logits: Option<&[f32]>) {
        self.trace.push(access);
        if let Some(logits) = logits {
            self.last_logits.clear();
            self.last_logits.extend_from_slice(logits);
        }
    }

    /// Serves one token (the next prompt token during prefill, a sampled
    /// continuation during decode), recording its weight accesses and its
    /// position `step` in the global schedule. The engine-owned `scratch`
    /// provides every decode buffer; after the call its
    /// [`DecodeScratch::accesses`] hold the served token's per-layer access
    /// records for the engine to propagate to co-tenant cache models.
    ///
    /// Returns the planning flags of the served token (what phase it was,
    /// whether it completed the prompt).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass and sampling errors.
    pub fn step(
        &mut self,
        model: &TransformerModel,
        rng: &mut StdRng,
        step: usize,
        scratch: &mut DecodeScratch,
    ) -> Result<PlannedToken> {
        let planned = self.plan_token(rng, step)?;
        model.forward_token_into(
            planned.token,
            &mut self.state,
            self.strategy.as_mut(),
            scratch,
        )?;
        self.finish_row(
            to_token_access_scratch(&scratch.accesses),
            Some(&scratch.logits),
        );
        Ok(planned)
    }

    /// Schedule position whose completion makes the first generated token
    /// available: the *last prefill* forward pass — its logits are what the
    /// first new token is sampled from. `None` when nothing was generated.
    pub fn first_token_position(&self) -> Option<usize> {
        if self.generated.is_empty() {
            None
        } else {
            self.last_prefill_position
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategySpec;
    use lm::mlp::DenseMlp;
    use lm::{build_synthetic, ModelConfig};
    use rand::SeedableRng;

    #[test]
    fn session_walks_through_prefill_then_decode() {
        let model = build_synthetic(&ModelConfig::tiny(), 4).unwrap();
        let request = GenRequest::new(1, vec![1, 2], 3, StrategySpec::Dense);
        let mut session = Session::new(0, request, 0, model.new_decode_state(), Box::new(DenseMlp));
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = DecodeScratch::for_model(&model);

        assert_eq!(session.phase(), SessionPhase::Prefill);
        assert_eq!(session.remaining_tokens(), 5);
        assert!(session.first_token_position().is_none());

        for step in 0..5 {
            session
                .step(&model, &mut rng, step * 2, &mut scratch)
                .unwrap();
        }
        assert_eq!(session.phase(), SessionPhase::Finished);
        assert_eq!(session.remaining_tokens(), 0);
        assert_eq!(session.generated.len(), 3);
        assert_eq!(session.trace.n_tokens(), 5);
        // the first generated token is sampled from the logits of the second
        // (last) prompt forward, scheduled at position 2
        assert_eq!(session.first_token_position(), Some(2));
        assert!(session.generated.iter().all(|t| (*t as usize) < 64));
    }

    #[test]
    fn client_patience_caps_the_token_budget() {
        let model = build_synthetic(&ModelConfig::tiny(), 4).unwrap();
        let request =
            GenRequest::new(1, vec![1, 2], 5, StrategySpec::Dense).with_cancel_after_tokens(2);
        let mut session = Session::new(0, request, 0, model.new_decode_state(), Box::new(DenseMlp));
        assert_eq!(session.token_budget(), 2);
        assert!(session.token_capped());
        assert_eq!(session.remaining_tokens(), 4);
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = DecodeScratch::for_model(&model);
        for step in 0..4 {
            session.step(&model, &mut rng, step, &mut scratch).unwrap();
        }
        assert_eq!(session.phase(), SessionPhase::Finished);
        assert_eq!(session.generated.len(), 2, "patience capped generation");
    }

    #[test]
    fn rewind_and_replay_reproduce_identical_outputs() {
        let model = build_synthetic(&ModelConfig::tiny(), 4).unwrap();
        let request = GenRequest::new(1, vec![1, 2, 3], 3, StrategySpec::Dense);

        // Reference: serve the request without faults.
        let mut a = Session::new(
            0,
            request.clone(),
            0,
            model.new_decode_state(),
            Box::new(DenseMlp),
        );
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut scratch = DecodeScratch::for_model(&model);
        for step in 0..6 {
            a.step(&model, &mut rng_a, step, &mut scratch).unwrap();
        }
        assert_eq!(a.phase(), SessionPhase::Finished);

        // Faulted: lose KV back to position 2 after the first decode token,
        // replay, and keep going. Outputs must match bitwise.
        let mut b = Session::new(0, request, 0, model.new_decode_state(), Box::new(DenseMlp));
        let mut rng_b = StdRng::seed_from_u64(7);
        for step in 0..4 {
            b.step(&model, &mut rng_b, step, &mut scratch).unwrap();
        }
        assert_eq!(b.generated.len(), 1);
        assert_eq!(b.state.pos, 4);
        let lost = b.rewind_for_refill(2);
        assert_eq!(lost, 2);
        assert_eq!(b.state.pos, 2);
        assert_eq!(b.phase(), SessionPhase::Prefill, "replay counts as prefill");
        assert_eq!(b.prompt_remaining(), 2);
        assert_eq!(b.remaining_tokens(), 4);
        let mut step = 4;
        while b.phase() != SessionPhase::Finished {
            let planned = b.step(&model, &mut rng_b, step, &mut scratch).unwrap();
            step += 1;
            assert!(
                !planned.prefill_ended,
                "replay never re-signals the first token"
            );
        }
        assert_eq!(a.generated, b.generated, "replay changes no output");
        assert_eq!(b.state.pos, a.state.pos);
    }

    #[test]
    fn mid_prefill_rewind_rewinds_the_prompt_cursor() {
        let model = build_synthetic(&ModelConfig::tiny(), 4).unwrap();
        let request = GenRequest::new(1, vec![1, 2, 3, 4], 2, StrategySpec::Dense);
        let mut session = Session::new(0, request, 0, model.new_decode_state(), Box::new(DenseMlp));
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = DecodeScratch::for_model(&model);
        for step in 0..3 {
            session.step(&model, &mut rng, step, &mut scratch).unwrap();
        }
        assert_eq!(session.state.pos, 3);
        let lost = session.rewind_for_refill(2);
        assert_eq!(lost, 1);
        assert_eq!(session.prompt_remaining(), 2, "prompt cursor rewound");
        assert_eq!(session.phase(), SessionPhase::Prefill);
        let mut step = 3;
        while session.phase() != SessionPhase::Finished {
            session.step(&model, &mut rng, step, &mut scratch).unwrap();
            step += 1;
        }
        assert_eq!(session.generated.len(), 2);
        // the re-served last prompt token re-established TTFT bookkeeping
        assert!(session.first_token_position().is_some());
    }

    #[test]
    fn prefix_skip_advances_the_prompt_cursor() {
        let model = build_synthetic(&ModelConfig::tiny(), 4).unwrap();
        let request = GenRequest::new(1, vec![1, 2, 3, 4], 2, StrategySpec::Dense);
        let mut session = Session::new(0, request, 0, model.new_decode_state(), Box::new(DenseMlp));
        assert_eq!(session.remaining_tokens(), 6);
        session.skip_prefilled_prefix(3);
        assert_eq!(session.phase(), SessionPhase::Prefill, "one token left");
        assert_eq!(session.remaining_tokens(), 3);
        assert_eq!(session.prompt_remaining(), 1);
        assert_eq!(session.prefix_tokens_skipped(), 3);
    }
}
