//! One admitted user session: decode state, strategy and access bookkeeping.

use crate::error::Result;
use crate::layout::to_token_access_scratch;
use crate::request::GenRequest;
use hwsim::{AccessTrace, TokenAccess};
use lm::model::sample_from_logits;
use lm::{DecodeScratch, DecodeState, MlpForward, TransformerModel};
use rand::rngs::StdRng;

/// Lifecycle phase of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Prompt tokens are still being prefilled.
    Prefill,
    /// New tokens are being generated.
    Decode,
    /// All requested tokens have been produced.
    Finished,
}

/// What the engine's batch planner decided for one schedule position (see
/// `Session::plan_token`).
#[derive(Debug, Clone, Copy)]
pub struct PlannedToken {
    /// The token fed to the model at this position.
    pub token: u32,
    /// Whether the position served a prompt (prefill) token.
    pub was_prefill: bool,
    /// Whether this position served the *last* prompt token (its completion
    /// makes the first generated token available).
    pub prefill_ended: bool,
}

/// A request that has been admitted and holds a KV-cache slot.
pub struct Session {
    /// Stream index used in the shared-cache replay (submission order).
    pub stream: usize,
    /// The request being served.
    pub request: GenRequest,
    /// Engine step at which the session was admitted.
    pub admitted_step: usize,
    /// Per-layer KV caches + position (from the engine's state pool).
    pub state: DecodeState,
    /// The MLP strategy instance for this session.
    pub strategy: Box<dyn MlpForward>,
    /// Tokens generated so far.
    pub generated: Vec<u32>,
    /// Weight-access trace of every served token (prefill + decode).
    pub trace: AccessTrace,
    /// Step at which this session was last served (scheduler bookkeeping for
    /// least-recently-served token ordering).
    pub last_served_step: usize,
    /// Global schedule position of the last prefill forward pass — the step
    /// whose completion makes the first generated token available.
    last_prefill_position: Option<usize>,
    next_prompt_idx: usize,
    last_logits: Vec<f32>,
    /// Pages of the paged KV pool this session's admission committed (the
    /// engine's conservative memory accounting; 0 under flat backing).
    pub(crate) kv_pages_committed: usize,
    /// Prompt tokens skipped at admission because a shared prefix was
    /// already prefilled (see [`Session::skip_prefilled_prefix`]).
    pub(crate) prefix_skipped: usize,
    /// `Some(len)` while this session owes the engine a shared-prefix
    /// registration once its decode position reaches `len`.
    pub(crate) pending_prefix_register: Option<usize>,
}

impl Session {
    /// Creates a session around an acquired decode state and strategy.
    pub fn new(
        stream: usize,
        request: GenRequest,
        admitted_step: usize,
        state: DecodeState,
        strategy: Box<dyn MlpForward>,
    ) -> Self {
        Session {
            stream,
            request,
            admitted_step,
            state,
            strategy,
            generated: Vec::new(),
            trace: AccessTrace::new(),
            last_served_step: admitted_step,
            last_prefill_position: None,
            next_prompt_idx: 0,
            last_logits: Vec::new(),
            kv_pages_committed: 0,
            prefix_skipped: 0,
            pending_prefix_register: None,
        }
    }

    /// Marks the first `len` prompt tokens as already prefilled: the engine
    /// mapped a shared prefix's KV pages into this session's paged state, so
    /// the prompt cursor starts past them and they are never planned,
    /// served or priced. Callers must keep `len < prompt.len()` (the last
    /// prompt token always runs, so its logits exist to sample from) and
    /// must have advanced `state.pos` to match.
    pub(crate) fn skip_prefilled_prefix(&mut self, len: usize) {
        debug_assert!(self.next_prompt_idx == 0, "skip only at admission");
        debug_assert!(len < self.request.prompt.len());
        self.next_prompt_idx = len;
        self.prefix_skipped = len;
    }

    /// Prompt tokens this session never served because a shared prefix was
    /// already prefilled.
    pub fn prefix_tokens_skipped(&self) -> usize {
        self.prefix_skipped
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> SessionPhase {
        if self.next_prompt_idx < self.request.prompt.len() {
            SessionPhase::Prefill
        } else if self.generated.len() < self.request.max_new_tokens {
            SessionPhase::Decode
        } else {
            SessionPhase::Finished
        }
    }

    /// Tokens still to be served (prefill + decode).
    pub fn remaining_tokens(&self) -> usize {
        (self.request.prompt.len() - self.next_prompt_idx)
            + (self.request.max_new_tokens - self.generated.len())
    }

    /// Prompt tokens still to be prefilled.
    pub(crate) fn prompt_remaining(&self) -> usize {
        self.request.prompt.len() - self.next_prompt_idx
    }

    /// Decides (and commits to) the next token this session serves at
    /// schedule position `step`: the next prompt token during prefill, a
    /// token sampled from the last logits during decode. All scheduling
    /// bookkeeping happens here — prompt cursor, generated list, the
    /// last-prefill schedule position — so the batch planner can make
    /// scheduler-faithful decisions *before* any forward pass runs, in
    /// exactly the order (including RNG draws) the sequential engine would.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub(crate) fn plan_token(&mut self, rng: &mut StdRng, step: usize) -> Result<PlannedToken> {
        debug_assert!(self.phase() != SessionPhase::Finished);
        let was_prefill = self.next_prompt_idx < self.request.prompt.len();
        let token = if was_prefill {
            let t = self.request.prompt[self.next_prompt_idx];
            self.next_prompt_idx += 1;
            if self.next_prompt_idx == self.request.prompt.len() {
                self.last_prefill_position = Some(step);
            }
            t
        } else {
            let t = sample_from_logits(&self.last_logits, self.request.temperature, rng)?;
            self.generated.push(t);
            t
        };
        Ok(PlannedToken {
            token,
            was_prefill,
            prefill_ended: was_prefill && self.next_prompt_idx == self.request.prompt.len(),
        })
    }

    /// Completes one served token: records its weight accesses into the
    /// session trace and, when given, the logits it produced. `None` logits
    /// are the interior rows of a prefill chunk — the sequential path
    /// computes those logits and immediately overwrites them, so not
    /// storing them changes no observable value.
    pub(crate) fn finish_row(&mut self, access: TokenAccess, logits: Option<&[f32]>) {
        self.trace.push(access);
        if let Some(logits) = logits {
            self.last_logits.clear();
            self.last_logits.extend_from_slice(logits);
        }
    }

    /// Serves one token (the next prompt token during prefill, a sampled
    /// continuation during decode), recording its weight accesses and its
    /// position `step` in the global schedule. The engine-owned `scratch`
    /// provides every decode buffer; after the call its
    /// [`DecodeScratch::accesses`] hold the served token's per-layer access
    /// records for the engine to propagate to co-tenant cache models.
    ///
    /// Returns the planning flags of the served token (what phase it was,
    /// whether it completed the prompt).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass and sampling errors.
    pub fn step(
        &mut self,
        model: &TransformerModel,
        rng: &mut StdRng,
        step: usize,
        scratch: &mut DecodeScratch,
    ) -> Result<PlannedToken> {
        let planned = self.plan_token(rng, step)?;
        model.forward_token_into(
            planned.token,
            &mut self.state,
            self.strategy.as_mut(),
            scratch,
        )?;
        self.finish_row(
            to_token_access_scratch(&scratch.accesses),
            Some(&scratch.logits),
        );
        Ok(planned)
    }

    /// Schedule position whose completion makes the first generated token
    /// available: the *last prefill* forward pass — its logits are what the
    /// first new token is sampled from. `None` when nothing was generated.
    pub fn first_token_position(&self) -> Option<usize> {
        if self.generated.is_empty() {
            None
        } else {
            self.last_prefill_position
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategySpec;
    use lm::mlp::DenseMlp;
    use lm::{build_synthetic, ModelConfig};
    use rand::SeedableRng;

    #[test]
    fn session_walks_through_prefill_then_decode() {
        let model = build_synthetic(&ModelConfig::tiny(), 4).unwrap();
        let request = GenRequest::new(1, vec![1, 2], 3, StrategySpec::Dense);
        let mut session = Session::new(0, request, 0, model.new_decode_state(), Box::new(DenseMlp));
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = DecodeScratch::for_model(&model);

        assert_eq!(session.phase(), SessionPhase::Prefill);
        assert_eq!(session.remaining_tokens(), 5);
        assert!(session.first_token_position().is_none());

        for step in 0..5 {
            session
                .step(&model, &mut rng, step * 2, &mut scratch)
                .unwrap();
        }
        assert_eq!(session.phase(), SessionPhase::Finished);
        assert_eq!(session.remaining_tokens(), 0);
        assert_eq!(session.generated.len(), 3);
        assert_eq!(session.trace.n_tokens(), 5);
        // the first generated token is sampled from the logits of the second
        // (last) prompt forward, scheduled at position 2
        assert_eq!(session.first_token_position(), Some(2));
        assert!(session.generated.iter().all(|t| (*t as usize) < 64));
    }

    #[test]
    fn prefix_skip_advances_the_prompt_cursor() {
        let model = build_synthetic(&ModelConfig::tiny(), 4).unwrap();
        let request = GenRequest::new(1, vec![1, 2, 3, 4], 2, StrategySpec::Dense);
        let mut session = Session::new(0, request, 0, model.new_decode_state(), Box::new(DenseMlp));
        assert_eq!(session.remaining_tokens(), 6);
        session.skip_prefilled_prefix(3);
        assert_eq!(session.phase(), SessionPhase::Prefill, "one token left");
        assert_eq!(session.remaining_tokens(), 3);
        assert_eq!(session.prompt_remaining(), 1);
        assert_eq!(session.prefix_tokens_skipped(), 3);
    }
}
