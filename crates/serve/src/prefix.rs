//! Shared-prefix caching over the paged KV pool.
//!
//! Fleets of assistant sessions overwhelmingly open with the same tokens —
//! a product's system prompt, a few-shot template — and under flat per-slot
//! KV caches every session re-prefills that prefix from scratch. With the
//! paged pool ([`lm::KvPagePool`]) the engine can do better: the first
//! session to prefill a declared shared prefix *registers* the pages that
//! hold it, and every later session arriving with the same `(strategy,
//! prefix tokens)` pair maps those pages
//! ([`lm::PagedKv::adopt_prefix`]) instead of recomputing them.
//!
//! Correctness boundaries:
//!
//! * Sharing is **page-aligned** ([`PrefixRegistry::shareable_len`]): only
//!   the prefix's whole pages are ever registered or adopted; each session
//!   re-prefills the sub-page remainder (at most `page_size - 1` tokens)
//!   itself. A retained partial tail page would still be appended to by
//!   the session that built it, forcing a copy-on-write fork that no
//!   admission commitment reserved — aligned sharing keeps the engine's
//!   page ledger exact: shared pages are full and immutable (the pool's
//!   refcounts still guard them), and every appendable page is private.
//!
//! * Only requests whose strategy has no shared-cache state are eligible
//!   ([`StrategySpec::shared_cache_key`] is `None`): for those, a position's
//!   KV entries are a pure function of the model and the token prefix, so
//!   mapped pages are bitwise identical to what re-prefilling would write.
//!   Cache-aware strategies (DIP-CA) mask MLP columns by *history-dependent*
//!   shared-cache state, so their KV contents are not reusable.
//! * The shared length is capped at `prompt_len - 1`: the last prompt token
//!   always runs a real forward pass, so the logits the first generated
//!   token samples from exist for every session.
//! * Entries are keyed by an FNV-1a hash of the prefix tokens; the stored
//!   tokens and strategy spec are compared on every lookup, so a hash
//!   collision can never map the wrong pages.
//!
//! The registry owns one page reference per mapped page (released on
//! [`PrefixRegistry::reset`] or drop), so registered prefixes survive the
//! sessions that built them.

use crate::request::GenRequest;
use crate::strategy::StrategySpec;
use lm::{pages_spanning, DecodeState, PageId, PagePoolHandle};

/// FNV-1a over the prefix token ids (little-endian bytes).
fn fnv1a(tokens: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in tokens {
        for b in t.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// One registered shared prefix: the exact tokens, the strategy they were
/// prefilled under, and the per-layer pages holding their KV entries.
struct PrefixEntry {
    hash: u64,
    strategy: StrategySpec,
    tokens: Vec<u32>,
    /// Per-layer page lists, each spanning `tokens.len()` positions; every
    /// page carries one registry-owned reference.
    pages: Vec<Vec<PageId>>,
}

/// The engine's shared-prefix registry (see the module docs).
pub struct PrefixRegistry {
    pool: PagePoolHandle,
    page_size: usize,
    entries: Vec<PrefixEntry>,
    hits: usize,
    misses: usize,
    tokens_saved: usize,
}

impl PrefixRegistry {
    /// An empty registry over the given pool.
    pub fn new(pool: &PagePoolHandle) -> Self {
        let page_size = pool.borrow().page_size();
        PrefixRegistry {
            pool: pool.clone(),
            page_size,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            tokens_saved: 0,
        }
    }

    /// The shareable prefix length of a request: the declared
    /// [`GenRequest::shared_prefix_len`] capped at `prompt_len - 1`, or
    /// `None` when the request declares no prefix or runs a strategy with
    /// shared-cache state (whose KV entries are history-dependent).
    pub fn eligible_len(request: &GenRequest) -> Option<usize> {
        if request.strategy.shared_cache_key().is_some() {
            return None;
        }
        let len = request
            .shared_prefix_len
            .min(request.prompt.len().saturating_sub(1));
        (len > 0).then_some(len)
    }

    /// The *page-aligned* shareable length of a request: its
    /// [`PrefixRegistry::eligible_len`] rounded down to whole pages, or
    /// `None` when no whole page remains. This is the length the engine
    /// registers, looks up and adopts — see the module docs for why only
    /// whole pages may be shared.
    pub fn shareable_len(&self, request: &GenRequest) -> Option<usize> {
        let len = Self::eligible_len(request)?;
        let aligned = (len / self.page_size) * self.page_size;
        (aligned > 0).then_some(aligned)
    }

    /// Looks up a registered prefix matching `(strategy, tokens)` exactly,
    /// returning the entry index. Does not touch the hit/miss counters —
    /// the engine plans admissions speculatively (a memory-blocked plan is
    /// recomputed later) and records the outcome only when a session is
    /// actually admitted, via [`PrefixRegistry::record_hit`] /
    /// [`PrefixRegistry::record_miss`].
    pub fn find(&self, strategy: &StrategySpec, tokens: &[u32]) -> Option<usize> {
        let hash = fnv1a(tokens);
        self.entries
            .iter()
            .position(|e| e.hash == hash && e.strategy == *strategy && e.tokens == tokens)
    }

    /// Records an admission that mapped a registered prefix of `len` tokens.
    pub fn record_hit(&mut self, len: usize) {
        self.hits += 1;
        self.tokens_saved += len;
    }

    /// Records an eligible admission that found no registered prefix.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// The prefix length (in positions) of entry `idx`.
    pub fn entry_len(&self, idx: usize) -> usize {
        self.entries[idx].tokens.len()
    }

    /// The per-layer page lists of entry `idx`.
    pub fn entry_pages(&self, idx: usize) -> &[Vec<PageId>] {
        &self.entries[idx].pages
    }

    /// Registers the first `len` positions of a prefilled paged state as a
    /// shared prefix, retaining one registry reference per mapped page.
    /// `len` must be a whole number of pages (the engine passes
    /// [`PrefixRegistry::shareable_len`]). Returns the number of pages
    /// retained (0 when an identical entry already exists — a race between
    /// two sessions prefilling the same template — or when the state is
    /// not paged).
    pub fn register(
        &mut self,
        strategy: &StrategySpec,
        tokens: &[u32],
        len: usize,
        state: &DecodeState,
    ) -> usize {
        debug_assert!(len <= tokens.len() && state.pos >= len);
        debug_assert!(
            len.is_multiple_of(self.page_size),
            "only whole pages may be shared (see shareable_len)"
        );
        let tokens = &tokens[..len];
        let hash = fnv1a(tokens);
        if self
            .entries
            .iter()
            .any(|e| e.hash == hash && e.strategy == *strategy && e.tokens == tokens)
        {
            return 0;
        }
        let n_pages = pages_spanning(len, self.page_size);
        let mut pages = Vec::with_capacity(state.kv.len());
        {
            let mut pool = self.pool.borrow_mut();
            for backing in &state.kv {
                let paged = backing.paged().expect("registering a paged state");
                let layer_pages = &paged.pages()[..n_pages];
                for &p in layer_pages {
                    pool.retain(p);
                }
                pages.push(layer_pages.to_vec());
            }
        }
        let retained = pages.iter().map(Vec::len).sum();
        self.entries.push(PrefixEntry {
            hash,
            strategy: *strategy,
            tokens: tokens.to_vec(),
            pages,
        });
        retained
    }

    /// Total pages the registry currently holds references to.
    pub fn pages_held(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.pages.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Registered prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no prefix is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Admissions that mapped a registered prefix.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Eligible admissions that found no registered prefix.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Prompt tokens never prefilled thanks to mapped prefixes.
    pub fn tokens_saved(&self) -> usize {
        self.tokens_saved
    }

    /// Releases every held page and forgets all entries and counters (the
    /// engine calls this at the start of each run, and under memory
    /// pressure when nothing else can free pages).
    pub fn reset(&mut self) {
        let mut pool = self.pool.borrow_mut();
        for entry in self.entries.drain(..) {
            for layer in &entry.pages {
                for &p in layer {
                    pool.release(p);
                }
            }
        }
        drop(pool);
        self.hits = 0;
        self.misses = 0;
        self.tokens_saved = 0;
    }
}

impl Drop for PrefixRegistry {
    fn drop(&mut self) {
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, KvPagePool, ModelConfig};

    fn prefilled_state(
        model: &lm::TransformerModel,
        pool: &PagePoolHandle,
        tokens: &[u32],
    ) -> DecodeState {
        let mut state = model.new_decode_state_paged(pool);
        let mut scratch = lm::DecodeScratch::for_model(model);
        let mut dense = lm::mlp::DenseMlp;
        for &t in tokens {
            model
                .forward_token_into(t, &mut state, &mut dense, &mut scratch)
                .unwrap();
        }
        state
    }

    #[test]
    fn register_then_lookup_maps_and_counts() {
        let model = build_synthetic(&ModelConfig::tiny(), 3).unwrap();
        let pool = KvPagePool::new_handle(256, 4);
        let tokens = [5u32, 6, 7, 8, 9];
        let state = prefilled_state(&model, &pool, &tokens);
        let in_use_before = pool.borrow().pages_in_use();

        let mut reg = PrefixRegistry::new(&pool);
        let spec = StrategySpec::Dense;
        // the shareable length is the eligible 4 (= prompt − 1 cap applies
        // to 5-token prompts elsewhere) rounded to whole 4-position pages
        let shared = 4usize;
        assert_eq!(reg.find(&spec, &tokens[..shared]), None, "miss first");
        reg.record_miss();
        let retained = reg.register(&spec, &tokens, shared, &state);
        assert_eq!(retained, model.config.n_layers * pages_spanning(shared, 4));
        assert_eq!(reg.pages_held(), retained);
        // registering the same prefix again is a no-op
        assert_eq!(reg.register(&spec, &tokens, shared, &state), 0);
        assert_eq!(reg.len(), 1);

        // the pages survive the prefilling session (the unshared tail page
        // is released with it)
        drop(state);
        assert_eq!(
            pool.borrow().pages_in_use(),
            in_use_before - model.config.n_layers
        );

        let hit = reg
            .find(&spec, &tokens[..shared])
            .expect("registered prefix hits");
        reg.record_hit(shared);
        assert_eq!(reg.entry_len(hit), shared);
        assert_eq!(reg.entry_pages(hit).len(), model.config.n_layers);
        assert_eq!(reg.hits(), 1);
        assert_eq!(reg.misses(), 1);
        assert_eq!(reg.tokens_saved(), shared);

        // a different strategy or different tokens never hits
        assert_eq!(
            reg.find(&StrategySpec::Dip { density: 0.5 }, &tokens[..shared]),
            None
        );
        assert_eq!(reg.find(&spec, &[5, 6, 7]), None);

        reg.reset();
        assert_eq!(pool.borrow().pages_in_use(), 0, "reset releases all pages");
        assert!(reg.is_empty());
    }

    #[test]
    fn shareable_len_rounds_down_to_whole_pages() {
        let pool = KvPagePool::new_handle(16, 4);
        let reg = PrefixRegistry::new(&pool);
        let req = |prefix: usize| {
            GenRequest::new(0, (0..20u32).collect(), 4, StrategySpec::Dense)
                .with_shared_prefix(prefix)
        };
        assert_eq!(reg.shareable_len(&req(12)), Some(12), "already aligned");
        assert_eq!(reg.shareable_len(&req(11)), Some(8), "partial page drops");
        assert_eq!(reg.shareable_len(&req(3)), None, "below one page");
        assert_eq!(reg.shareable_len(&req(0)), None, "nothing declared");
    }

    #[test]
    fn eligibility_caps_at_prompt_minus_one_and_excludes_cache_aware() {
        let dense = GenRequest::new(0, vec![1, 2, 3], 4, StrategySpec::Dense);
        assert_eq!(PrefixRegistry::eligible_len(&dense), None, "none declared");
        assert_eq!(
            PrefixRegistry::eligible_len(&dense.clone().with_shared_prefix(2)),
            Some(2)
        );
        assert_eq!(
            PrefixRegistry::eligible_len(&dense.clone().with_shared_prefix(99)),
            Some(2),
            "capped so the last prompt token still computes logits"
        );
        let ca = GenRequest::new(
            1,
            vec![1, 2, 3],
            4,
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
        )
        .with_shared_prefix(2);
        assert_eq!(
            PrefixRegistry::eligible_len(&ca),
            None,
            "cache-aware KV is history-dependent"
        );
    }
}
