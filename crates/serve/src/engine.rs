//! The serving engine: admission, continuous batching, shared-cache replay.
//!
//! [`ServeEngine::run`] drives a closed batch of [`GenRequest`]s (all queued
//! at t = 0) to completion:
//!
//! 1. **Admission.** Up to `max_concurrent` sessions hold a KV-cache slot;
//!    whenever a slot frees, the scheduler admits the next waiting request.
//!    Decode states are recycled through [`lm::DecodeStatePool`].
//! 2. **Token loop.** The schedule is token-granular — each schedule
//!    position serves one token of one session, and the simulated memory
//!    bus serialises positions — but *execution* is batched
//!    ([`ExecutionMode::Batched`], the default): the engine groups
//!    consecutive schedule positions into **batch lanes** (runs of distinct
//!    same-spec sessions, or one session's prompt chunk) and computes each
//!    lane in a single fused pass over the weights
//!    ([`lm::TransformerModel::forward_tokens_batch_into`] /
//!    [`lm::TransformerModel::forward_prompt_into`]). Lane formation
//!    re-asks the scheduler *per position* after committing each token's
//!    bookkeeping, so the schedule — and therefore every recorded access,
//!    RNG draw, trace and price — is **bitwise identical** to serving one
//!    token at a time; [`ExecutionMode::Sequential`] keeps the
//!    token-at-a-time path as the oracle (see
//!    `tests/batched_equivalence.rs` and DESIGN.md §11). Every served
//!    token's weight accesses are recorded into the session's
//!    [`hwsim::AccessTrace`], and the position's session into the global
//!    interleave order.
//! 3. **Pricing.** The per-session traces are replayed in that exact order
//!    through one *shared* DRAM column cache
//!    ([`hwsim::simulate_concurrent`]), which prices every token and yields
//!    wall-clock completion times under multi-tenant cache contention.
//!    Batched execution changes *how fast the host computes* the schedule,
//!    never the simulated cost of a token.
//!
//! The decode pass and the pricing pass are deliberately separate: model
//! execution decides *which* columns each token needs (for DIP-CA, guided by
//! the shared cache model), while the hardware replay decides what that
//! traffic *costs* on a given device.
//!
//! # Open loop: the event-driven core
//!
//! [`ServeEngine::run_open_loop_requests`] serves *timestamped* arrivals on
//! a virtual clock driven by a (time, seq)-keyed [`crate::event::EventQueue`]
//! instead of the closed batch above. Arrivals, prefill chunks, decode
//! rounds and preemption KV spills/reloads are all events on that clock;
//! under [`EngineCore::EventDriven`] (the default) long prefills are split
//! into [`ServeConfig::prefill_chunk_tokens`]-sized chunks with a decode
//! round between them, so one long prompt no longer holds every decoding
//! session's TBT hostage, and every park/resume pays its KV transfer through
//! the same [`hwsim::TokenPricer`] that prices tokens. [`EngineCore::StepLoop`]
//! preserves the legacy monolithic-prefill step loop for A/B comparison
//! (see DESIGN.md §16). The closed-loop [`ServeEngine::run`] path is
//! untouched by the core selection and stays bitwise identical to the
//! sequential oracle.
//!
//! # Observability
//!
//! The engine is instrumented end to end: attach an
//! [`crate::telemetry::EngineTelemetry`] pipeline via
//! [`ServeEngine::attach_telemetry`] and every run records token/shed/
//! preemption counters, TTFT/TBT/queue-delay histograms, batch-lane widths,
//! span events on a preallocated ring and a virtual-time timeline — all
//! through pre-registered handles, so the zero-allocation decode loop stays
//! allocation-free. Telemetry is write-only from the engine's side; attaching
//! any sink leaves the [`ServeReport`] bitwise identical
//! (`tests/open_loop_determinism.rs`).

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::error::{Result, ServeError};
use crate::event::{Event, EventKind as EngineEvent, EventQueue};
use crate::fault::RetryPolicy;
use crate::layout::{layout_for_serving, to_token_access_batch_row};
use crate::prefix::PrefixRegistry;
use crate::report::{
    percentile, FinishReason, OpenLoopStats, PagedKvStats, Percentiles, RequestStats, ServeReport,
    StrategyClassStats, TierStats,
};
use crate::request::{GenRequest, TIERS};
use crate::scheduler::{AdmissionCandidate, SchedulerPolicy};
use crate::session::{PlannedToken, Session, SessionPhase};
use crate::strategy::{resolve_axes, StrategyFactory, StrategySpec};
use crate::telemetry::EngineTelemetry;
use crate::workload::Workload;
use hwsim::{simulate_concurrent, AccessTrace, DeviceConfig, EvictionPolicy, TokenPricer};
use lm::mlp::DenseMlp;
use lm::{
    pages_spanning, ActivationTrace, BatchScratch, BatchStrategies, DecodeStatePool, KvPagePool,
    MlpForward, ModelConfig, PagePoolHandle, TransformerModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the engine computes the token-granular schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Fuse consecutive schedule positions into batch lanes (cross-session
    /// fused decode, chunked prefill) — one pass over the weights per lane.
    /// Bitwise identical to [`ExecutionMode::Sequential`] by construction.
    #[default]
    Batched,
    /// Serve one token at a time through the single-token path. Kept as the
    /// equivalence oracle for `tests/batched_equivalence.rs` and for
    /// honest before/after benchmarking.
    Sequential,
}

/// Which scheduling core drives the open-loop virtual clock.
///
/// Both cores run on the same event queue ([`crate::event::EventQueue`]):
/// arrivals, spill/reload completions and service-unit settlements are
/// ordered events on one clock either way. They differ in exactly one
/// rule — whether a long prefill may monopolize the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineCore {
    /// Time-slice prefill: after [`ServeConfig::prefill_chunk_tokens`]
    /// consecutive prefill tokens of one stream, the scheduler's pick is
    /// restricted to decode-phase sessions for one round (each currently
    /// decoding session is served once) before the prefill may continue.
    /// This bounds every decoding session's inter-token gap by roughly one
    /// chunk plus one decode round, killing the head-of-line TBT spikes a
    /// long prompt otherwise causes.
    #[default]
    EventDriven,
    /// The legacy synchronous rule: the scheduler's unrestricted pick,
    /// which serves an entire prefill before any decode token under
    /// priority scheduling. Kept as the honest before/after baseline for
    /// the TBT-p99 stall gate (`perf_report --event-out`).
    StepLoop,
}

/// Upper bound on a prefill chunk (bounds the batch scratch: logits and
/// activations scale with the chunk height).
const MAX_PREFILL_CHUNK: usize = 64;

/// Paged KV memory configuration (see DESIGN.md §14).
///
/// Instead of one flat full-context KV cache per slot, every session's KV
/// backing becomes a page table over one engine-wide [`lm::KvPagePool`] of
/// `pool_pages` fixed-size pages. Admission then gates on *pages*, not
/// slots: a fleet of thousands of short sessions fits the same fixed memory
/// budget that eight full-context slots would pin. With `prefix_sharing`,
/// sessions arriving with a declared shared prompt prefix
/// ([`GenRequest::shared_prefix_len`]) map already-prefilled pages
/// copy-on-write instead of re-prefilling them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedKvConfig {
    /// KV positions per page.
    pub page_size: usize,
    /// Total pages in the engine-wide pool — the fleet's hard KV memory cap.
    pub pool_pages: usize,
    /// Map registered shared prefixes copy-on-write at admission.
    pub prefix_sharing: bool,
}

/// Configuration of a serving deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// KV-cache slots: the maximum number of concurrently active sessions.
    /// Each slot pins one full-context KV cache in DRAM.
    pub max_concurrent: usize,
    /// Continuous-batching scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Eviction policy of the shared DRAM column cache.
    pub eviction: EvictionPolicy,
    /// The simulated device the deployment runs on.
    pub device: DeviceConfig,
    /// Weight precision in bits (4.0 = INT4, the paper's serving setup).
    pub bits_per_weight: f64,
    /// Per-session context budget in tokens (`None` = the model's full
    /// `max_seq_len`). Each KV slot pins this much context in DRAM, so
    /// bounding it frees DRAM for the shared weight cache.
    pub kv_budget_tokens: Option<usize>,
    /// Seed for sampling temperature > 0 requests.
    pub seed: u64,
    /// Admission policy of open-loop runs (ignored by closed batches).
    pub admission: AdmissionConfig,
    /// Batched-lane or sequential (oracle) execution of the schedule.
    pub execution: ExecutionMode,
    /// Back sessions with a paged KV pool instead of flat per-slot caches
    /// (`None` = flat, the default).
    pub paged_kv: Option<PagedKvConfig>,
    /// Which open-loop scheduling core drives the virtual clock (closed
    /// batches always use the unrestricted pick).
    pub engine_core: EngineCore,
    /// Prefill-slice budget of [`EngineCore::EventDriven`]: consecutive
    /// prefill tokens one stream may take before decoding sessions get a
    /// round. Clamped to the engine's chunk bound (64) at use.
    pub prefill_chunk_tokens: usize,
    /// Deterministic fault-injection plan for open-loop runs (`None` = no
    /// injected faults; closed batches reject a plan at run time).
    pub fault_plan: Option<crate::fault::FaultPlan>,
    /// Retry policy for worker-aborted attempts: re-offer through admission
    /// after exponential backoff on the virtual clock (`None` = an abort
    /// fails the request immediately).
    pub retry: Option<crate::fault::RetryPolicy>,
    /// Graceful strategy degradation under queue pressure: substitute
    /// cheaper specs along [`StrategySpec::degraded`] at admission instead
    /// of letting the queue shed (`None` = always serve as requested).
    pub degrade: Option<crate::fault::DegradePolicy>,
    /// Set by [`ServeConfig::with_prefix_sharing`] so [`ServeConfig::validate`]
    /// can reject prefix sharing without a paged pool as a typed error
    /// (the flag itself is consumed through `paged_kv.prefix_sharing`).
    pub(crate) prefix_sharing_requested: bool,
}

impl ServeConfig {
    /// A default serving configuration on the given device: 8 slots, FIFO
    /// continuous batching, LFU shared cache, INT4 weights, default
    /// admission policy.
    pub fn new(device: DeviceConfig) -> Self {
        ServeConfig {
            max_concurrent: 8,
            scheduler: SchedulerPolicy::Fifo,
            eviction: EvictionPolicy::Lfu,
            device,
            bits_per_weight: 4.0,
            kv_budget_tokens: None,
            seed: 0x5e42,
            admission: AdmissionConfig::default(),
            execution: ExecutionMode::default(),
            paged_kv: None,
            engine_core: EngineCore::default(),
            prefill_chunk_tokens: 16,
            fault_plan: None,
            retry: None,
            degrade: None,
            prefix_sharing_requested: false,
        }
    }

    /// Returns a copy injecting the given deterministic fault plan into
    /// open-loop runs (see [`crate::fault::FaultPlan`]).
    pub fn with_fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Returns a copy that re-offers worker-aborted attempts through
    /// admission under the given retry policy.
    pub fn with_retry(mut self, retry: crate::fault::RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Returns a copy that degrades strategies along
    /// [`StrategySpec::degraded`] under queue pressure instead of serving
    /// every request as requested.
    pub fn with_degrade(mut self, degrade: crate::fault::DegradePolicy) -> Self {
        self.degrade = Some(degrade);
        self
    }

    /// Returns a copy with the given open-loop scheduling core.
    pub fn with_engine_core(mut self, core: EngineCore) -> Self {
        self.engine_core = core;
        self
    }

    /// Returns a copy with the given prefill-slice budget (tokens of one
    /// stream's prefill served consecutively before decoding sessions get a
    /// round; only [`EngineCore::EventDriven`] slices).
    pub fn with_prefill_chunk(mut self, tokens: usize) -> Self {
        self.prefill_chunk_tokens = tokens;
        self
    }

    /// Returns a copy backed by a paged KV pool of `pool_pages` pages of
    /// `page_size` positions each (prefix sharing off; see
    /// [`ServeConfig::with_prefix_sharing`]).
    pub fn with_paged_kv(mut self, page_size: usize, pool_pages: usize) -> Self {
        self.paged_kv = Some(PagedKvConfig {
            page_size,
            pool_pages,
            prefix_sharing: false,
        });
        self
    }

    /// Enables copy-on-write shared-prefix caching on the paged pool. Call
    /// after [`ServeConfig::with_paged_kv`]; without a paged pool,
    /// [`ServeConfig::validate`] rejects the configuration.
    pub fn with_prefix_sharing(mut self) -> Self {
        self.prefix_sharing_requested = true;
        if let Some(paged) = &mut self.paged_kv {
            paged.prefix_sharing = true;
        }
        self
    }

    /// Returns a copy with the given execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Returns a copy with the given per-session context budget.
    pub fn with_kv_budget(mut self, tokens: usize) -> Self {
        self.kv_budget_tokens = Some(tokens);
        self
    }

    /// Returns a copy with the given number of KV slots.
    pub fn with_max_concurrent(mut self, slots: usize) -> Self {
        self.max_concurrent = slots;
        self
    }

    /// Returns a copy with the given scheduler policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with the given eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Returns a copy with the given open-loop admission policy.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero slots, a non-positive
    /// bit width, or an invalid device.
    pub fn validate(&self) -> Result<()> {
        if self.max_concurrent == 0 {
            return Err(ServeError::InvalidConfig {
                field: "max_concurrent",
                reason: "need at least one KV slot".to_string(),
            });
        }
        if !(self.bits_per_weight.is_finite() && self.bits_per_weight > 0.0) {
            return Err(ServeError::InvalidConfig {
                field: "bits_per_weight",
                reason: format!("must be positive, got {}", self.bits_per_weight),
            });
        }
        if self.prefill_chunk_tokens == 0 || self.prefill_chunk_tokens > MAX_PREFILL_CHUNK {
            return Err(ServeError::InvalidConfig {
                field: "prefill_chunk_tokens",
                reason: format!(
                    "prefill slice must be 1..={MAX_PREFILL_CHUNK} tokens, got {}",
                    self.prefill_chunk_tokens
                ),
            });
        }
        if let Some(budget) = self.kv_budget_tokens {
            if budget < 2 {
                return Err(ServeError::InvalidConfig {
                    field: "kv_budget_tokens",
                    reason: format!("context budget must be at least 2 tokens, got {budget}"),
                });
            }
        }
        if let Some(paged) = &self.paged_kv {
            if paged.page_size == 0 {
                return Err(ServeError::InvalidConfig {
                    field: "paged_kv.page_size",
                    reason: "pages must hold at least one position".to_string(),
                });
            }
            if paged.pool_pages == 0 {
                return Err(ServeError::InvalidConfig {
                    field: "paged_kv.pool_pages",
                    reason: "the pool needs at least one page".to_string(),
                });
            }
        }
        if self.prefix_sharing_requested && self.paged_kv.is_none() {
            return Err(ServeError::InvalidConfig {
                field: "paged_kv",
                reason: "prefix sharing maps copy-on-write *pages*; enable a paged KV \
                         pool with `with_paged_kv` before `with_prefix_sharing`"
                    .to_string(),
            });
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate()?;
            if plan.wants_page_loss() && self.paged_kv.is_none() {
                return Err(ServeError::InvalidConfig {
                    field: "fault_plan.page_loss_every_s",
                    reason: "KV page loss needs a paged KV pool to lose pages from; \
                             flat per-slot caches have no pages"
                        .to_string(),
                });
            }
        }
        if let Some(retry) = &self.retry {
            retry.validate()?;
        }
        if let Some(degrade) = &self.degrade {
            degrade.validate()?;
        }
        self.admission.validate()?;
        self.device.validate()?;
        Ok(())
    }
}

/// Which shape of fused pass a batch plan executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanKind {
    /// A run of consecutive prompt tokens of one session.
    Chunk,
    /// One token each of a run of distinct same-spec sessions.
    Lane,
}

/// One schedule position of a batch plan.
#[derive(Debug, Clone, Copy)]
struct PlanRow {
    /// Index into the engine's `active` session vector.
    idx: usize,
    /// The session's stream id (for the interleave order).
    stream: usize,
    /// The planning flags committed for this position.
    planned: PlannedToken,
}

/// A planned batch: consecutive scheduler decisions the engine executes in
/// one fused pass. Buffers are engine-owned and reused across batches.
#[derive(Default)]
struct BatchPlan {
    kind: Option<PlanKind>,
    rows: Vec<PlanRow>,
}

/// Reused take-out buffers for batch execution (session states, strategy
/// boxes and tokens are moved out for the fused call and restored after).
/// `priced` holds each planned position's `(cost, completion time)` between
/// dispatch and settlement of a service unit.
#[derive(Default)]
struct ExecBuffers {
    tokens: Vec<u32>,
    states: Vec<lm::DecodeState>,
    strategies: Vec<Box<dyn MlpForward>>,
    priced: Vec<(hwsim::TokenCost, f64)>,
    row_accesses: Vec<hwsim::TokenAccess>,
}

/// Chunked-prefill time-slice state of [`EngineCore::EventDriven`].
///
/// The slice is token-granular and updated identically at plan time in both
/// execution modes (one [`PrefillSlice::note`] per planned position, in
/// plan order), so it cannot break the batched ↔ sequential bitwise
/// equivalence: both modes see the same `(pick, note)` sequence.
struct PrefillSlice {
    /// Stream of the prefill run being counted (`usize::MAX` = none).
    stream: usize,
    /// Consecutive prefill tokens granted to `stream`.
    run: usize,
    /// Decode tokens still owed before the prefill may continue (one per
    /// session that was decoding when the slice expired).
    yield_left: usize,
}

impl PrefillSlice {
    fn new() -> Self {
        PrefillSlice {
            stream: usize::MAX,
            run: 0,
            yield_left: 0,
        }
    }

    /// The slicing service pick: the scheduler's choice, unless the chosen
    /// session's prefill has exhausted its slice and someone is decoding —
    /// then the pick is restricted to decode-phase sessions until each
    /// session decoding at expiry has been served once.
    fn pick(
        &mut self,
        scheduler: &SchedulerPolicy,
        active: &[Session],
        chunk: usize,
    ) -> Option<usize> {
        let is_decoding = |s: &Session| s.phase() == SessionPhase::Decode;
        if self.yield_left > 0 {
            if let Some(i) = scheduler.next_service_where(active, is_decoding) {
                return Some(i);
            }
            // every decoding session completed or was parked mid-round
            self.yield_left = 0;
        }
        let first = scheduler.next_service(active)?;
        if active[first].phase() == SessionPhase::Prefill
            && active[first].stream == self.stream
            && self.run >= chunk
        {
            let decoding = active.iter().filter(|s| is_decoding(s)).count();
            if decoding > 0 {
                self.run = 0;
                self.yield_left = decoding;
                return scheduler.next_service_where(active, is_decoding);
            }
        }
        Some(first)
    }

    /// Records a planned token (called once per schedule position, in plan
    /// order).
    fn note(&mut self, stream: usize, was_prefill: bool) {
        if was_prefill {
            if self.stream == stream {
                self.run += 1;
            } else {
                self.stream = stream;
                self.run = 1;
            }
        } else if self.yield_left > 0 {
            self.yield_left -= 1;
        }
    }
}

/// The open-loop service pick: the slice-aware pick under
/// [`EngineCore::EventDriven`], the scheduler's unrestricted pick otherwise
/// (and always for closed batches, which pass no slice).
fn pick_service(
    scheduler: &SchedulerPolicy,
    active: &[Session],
    slice: Option<&mut PrefillSlice>,
    chunk: usize,
) -> Option<usize> {
    match slice {
        Some(slice) => slice.pick(scheduler, active, chunk),
        None => scheduler.next_service(active),
    }
}

/// The engine's paged-KV runtime: the page pool every session's backing
/// draws from, the shared-prefix registry over it, and the conservative
/// page-commitment ledger admission gates on.
struct PagedRuntime {
    pool: PagePoolHandle,
    registry: PrefixRegistry,
    prefix_sharing: bool,
    page_size: usize,
    pool_pages: usize,
    /// Pages *committed* (reserved worst-case), not pages in use: the sum of
    /// every active session's worst-case footprint plus the registry's held
    /// pages. Admission requires `committed + needed <= pool_pages`, and
    /// every page the pool can ever hand out is covered by some commitment,
    /// so a mid-decode allocation can never find the pool empty.
    committed: usize,
    /// Pool fork counter at run start (reports carry per-run deltas).
    forks_at_start: u64,
}

/// An admission decision under the paged pool: the worst-case pages the
/// candidate commits, and the prefix-registry hit to map (entry index,
/// shared length), if any.
#[derive(Clone, Copy)]
struct PagedAdmit {
    needed: usize,
    hit: Option<(usize, usize)>,
}

/// Plans a candidate's admission against the paged pool. A registry hit
/// discounts the shared prefix's pages (`shared_len / page_size` — the
/// shareable length is page-aligned, see [`PrefixRegistry::shareable_len`]):
/// those pages are mapped full and never appended to, so a sharer can never
/// fork them, and the discounted commitment exactly covers the private
/// pages the session can allocate.
fn paged_plan(paged: &PagedRuntime, n_layers: usize, request: &GenRequest) -> PagedAdmit {
    let ps = paged.page_size;
    let full_pages = pages_spanning(request.total_tokens(), ps);
    let full = PagedAdmit {
        needed: n_layers * full_pages,
        hit: None,
    };
    if !paged.prefix_sharing {
        return full;
    }
    let Some(len) = paged.registry.shareable_len(request) else {
        return full;
    };
    match paged
        .registry
        .find(&request.strategy, &request.prompt[..len])
    {
        Some(entry) => PagedAdmit {
            needed: n_layers * (full_pages - len / ps),
            hit: Some((entry, len)),
        },
        None => full,
    }
}

/// Registers a session's shared prefix once it is fully prefilled (the
/// engine calls this after every serve round, *before* completion removal,
/// so even a session that finishes in one round publishes its prefix). The
/// retained pages join the commitment ledger.
fn try_register_prefix(paged: &mut Option<PagedRuntime>, session: &mut Session) {
    let Some(paged) = paged.as_mut() else { return };
    let Some(len) = session.pending_prefix_register else {
        return;
    };
    if session.state.pos < len {
        return;
    }
    session.pending_prefix_register = None;
    let added = paged.registry.register(
        &session.request.strategy,
        &session.request.prompt,
        len,
        &session.state,
    );
    paged.committed += added;
}

/// A multi-session token-generation serving engine.
pub struct ServeEngine {
    model: TransformerModel,
    config: ServeConfig,
    pool: DecodeStatePool,
    calibration: Option<ActivationTrace>,
    /// Single-token decode workspace (sequential oracle path); persists
    /// across runs so weight mirrors are built once per engine.
    scratch: lm::DecodeScratch,
    /// Fused multi-row workspace (batched path); persists across runs.
    batch: BatchScratch,
    plan: BatchPlan,
    exec: ExecBuffers,
    /// Paged KV pool + prefix registry (`None` on flat backings).
    paged: Option<PagedRuntime>,
    /// Optional observability pipeline; `None` (the default) costs a single
    /// branch per hook. Boxed so the engine stays cheap to move.
    telemetry: Option<Box<EngineTelemetry>>,
}

impl ServeEngine {
    /// Creates an engine around a model.
    ///
    /// # Errors
    ///
    /// Returns configuration validation errors.
    pub fn new(model: TransformerModel, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let scratch = lm::DecodeScratch::for_model(&model);
        let batch = BatchScratch::for_model(&model);
        let paged = config.paged_kv.map(|pk| {
            let pool = KvPagePool::new_handle(pk.pool_pages, pk.page_size);
            PagedRuntime {
                registry: PrefixRegistry::new(&pool),
                pool,
                // `||` makes builder order irrelevant: `with_prefix_sharing`
                // before `with_paged_kv` still enables sharing
                prefix_sharing: pk.prefix_sharing || config.prefix_sharing_requested,
                page_size: pk.page_size,
                pool_pages: pk.pool_pages,
                committed: 0,
                forks_at_start: 0,
            }
        });
        Ok(ServeEngine {
            model,
            config,
            pool: DecodeStatePool::new(),
            calibration: None,
            scratch,
            batch,
            plan: BatchPlan::default(),
            exec: ExecBuffers::default(),
            paged,
            telemetry: None,
        })
    }

    /// Attaches an observability pipeline. The engine records into it on
    /// every run until [`ServeEngine::take_telemetry`]; recording is
    /// write-only, so reports stay bitwise identical with or without it.
    pub fn attach_telemetry(&mut self, telemetry: EngineTelemetry) {
        self.telemetry = Some(Box::new(telemetry));
    }

    /// The attached observability pipeline, if any.
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.telemetry.as_deref()
    }

    /// Detaches and returns the observability pipeline (for export after a
    /// run).
    pub fn take_telemetry(&mut self) -> Option<EngineTelemetry> {
        self.telemetry.take().map(|b| *b)
    }

    /// The model configuration being served.
    pub fn model_config(&self) -> &ModelConfig {
        &self.model.config
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The decode-state pool (exposed for reuse diagnostics).
    pub fn state_pool(&self) -> &DecodeStatePool {
        &self.pool
    }

    /// The paged KV page pool, when the engine runs one (exposed for leak
    /// and balance diagnostics).
    pub fn kv_page_pool(&self) -> Option<&PagePoolHandle> {
        self.paged.as_ref().map(|p| &p.pool)
    }

    /// Resets per-run paged-KV state: evicts the prefix registry (pages from
    /// a prior run must not leak into this run's reports or determinism),
    /// rebases the pool's high-water mark and snapshots the fork counter so
    /// the report carries per-run numbers.
    fn reset_paged_run(&mut self) {
        if let Some(paged) = self.paged.as_mut() {
            paged.committed -= paged.registry.pages_held();
            paged.registry.reset();
            debug_assert_eq!(paged.committed, 0, "no sessions live between runs");
            let mut pool = paged.pool.borrow_mut();
            pool.reset_high_water();
            paged.forks_at_start = pool.fork_count();
        }
    }

    /// The run's paged-KV report block, if the engine is paged.
    fn paged_stats(&self) -> Option<PagedKvStats> {
        self.paged.as_ref().map(|paged| {
            let pool = paged.pool.borrow();
            PagedKvStats {
                page_size: paged.page_size,
                pool_pages: paged.pool_pages,
                pages_high_water: pool.high_water(),
                pages_at_end: pool.pages_in_use(),
                cow_forks: pool.fork_count() - paged.forks_at_start,
                prefix_hits: paged.registry.hits(),
                prefix_misses: paged.registry.misses(),
                prefix_registrations: paged.registry.len(),
                prefix_tokens_saved: paged.registry.tokens_saved(),
            }
        })
    }

    /// Publishes end-of-run paged-KV gauges to the attached telemetry.
    fn publish_paged_telemetry(&mut self) {
        let Some(paged) = self.paged.as_ref() else {
            return;
        };
        let (in_use, forks) = {
            let pool = paged.pool.borrow();
            (
                pool.pages_in_use(),
                pool.fork_count() - paged.forks_at_start,
            )
        };
        let high_water = paged.pool.borrow().high_water();
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.on_paged_kv(in_use, high_water, forks);
        }
    }

    /// Admission gate of the paged pool: plans `request` against the
    /// commitment ledger and returns its admission plan if it fits (always
    /// `Some(None)` on flat backings). When nothing is running and nothing
    /// else can free pages, the prefix registry is evicted and the plan
    /// recomputed — [`ServeConfig::validate`] plus the per-run request
    /// validation guarantee any single request fits an empty pool, so
    /// serving can always make progress.
    fn paged_admission_gate(
        paged: &mut Option<PagedRuntime>,
        n_layers: usize,
        request: &GenRequest,
        nothing_active: bool,
    ) -> Option<Option<PagedAdmit>> {
        let Some(paged) = paged.as_mut() else {
            return Some(None);
        };
        let mut plan = paged_plan(paged, n_layers, request);
        if paged.committed + plan.needed > paged.pool_pages
            && nothing_active
            && !paged.registry.is_empty()
        {
            paged.committed -= paged.registry.pages_held();
            paged.registry.reset();
            plan = paged_plan(paged, n_layers, request);
        }
        if paged.committed + plan.needed > paged.pool_pages {
            return None;
        }
        Some(Some(plan))
    }

    /// Applies an admission plan to a freshly created paged session: books
    /// the commitment, maps a prefix hit's pages copy-on-write (skipping
    /// their prefill), or schedules the prefix for registration on a miss.
    fn apply_paged_admit(
        paged: &mut Option<PagedRuntime>,
        telemetry: &mut Option<Box<EngineTelemetry>>,
        session: &mut Session,
        plan: Option<PagedAdmit>,
    ) -> Result<()> {
        let (Some(paged), Some(plan)) = (paged.as_mut(), plan) else {
            return Ok(());
        };
        paged.committed += plan.needed;
        session.kv_pages_committed = plan.needed;
        match plan.hit {
            Some((entry, len)) => {
                for (layer, backing) in session.state.kv.iter_mut().enumerate() {
                    backing
                        .paged_mut()
                        .expect("paged engines acquire paged states")
                        .adopt_prefix(&paged.registry.entry_pages(entry)[layer], len)?;
                }
                session.state.pos = len;
                session.skip_prefilled_prefix(len);
                paged.registry.record_hit(len);
                if let Some(t) = telemetry.as_deref_mut() {
                    t.on_prefix_hit();
                }
            }
            None => {
                if paged.prefix_sharing {
                    if let Some(len) = paged.registry.shareable_len(&session.request) {
                        session.pending_prefix_register = Some(len);
                        paged.registry.record_miss();
                    }
                }
            }
        }
        Ok(())
    }

    /// Supplies a calibration trace for CATS requests (otherwise one is
    /// collected on demand from a small model-generated corpus).
    pub fn with_calibration(mut self, trace: ActivationTrace) -> Self {
        self.calibration = Some(trace);
        self
    }

    fn ensure_calibration(&mut self) -> Result<()> {
        if self.calibration.is_none() {
            let seqs = lm::eval::standard_eval_corpus(&self.model, 2, 16, self.config.seed)?;
            self.calibration = Some(lm::trace::collect_activation_trace(&self.model, &seqs)?);
        }
        Ok(())
    }

    /// The effective per-session context window: the configured budget
    /// clamped to the model's `max_seq_len`.
    pub fn context_window(&self) -> usize {
        self.config
            .kv_budget_tokens
            .unwrap_or(self.model.config.max_seq_len)
            .min(self.model.config.max_seq_len)
    }

    fn validate_requests(&self, requests: &[GenRequest]) -> Result<()> {
        let config = &self.model.config;
        let window = self.context_window();
        for r in requests {
            if r.prompt.is_empty() {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: "prompt must contain at least one token".to_string(),
                });
            }
            if let Some(&bad) = r
                .prompt
                .iter()
                .find(|&&t| (t as usize) >= config.vocab_size)
            {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "prompt token {bad} outside vocabulary of {}",
                        config.vocab_size
                    ),
                });
            }
            // every served token (prefill or decode) pushes exactly one KV
            // entry, so a request fits iff its total tokens fit the window
            if r.total_tokens() > window {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "prompt ({}) + generation ({}) exceeds the context window ({window})",
                        r.prompt.len(),
                        r.max_new_tokens,
                    ),
                });
            }
            r.strategy
                .validate()
                .map_err(|e| ServeError::InvalidRequest {
                    id: r.id,
                    reason: e.to_string(),
                })?;
            // weight-transforming specs (static pruning, LoRA fusing) would
            // rewrite the model every co-tenant is concurrently decoding with
            if r.strategy.weight_transform().is_some() {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "`{}` requires an offline weight transform; serve the \
                         transformed model instead",
                        r.strategy.label()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Plans the next fused batch: asks the scheduler for the next schedule
    /// position, commits that position's token (prompt cursor / RNG draw /
    /// bookkeeping, via [`Session::plan_token`]) and repeats against the
    /// *updated* session state — so every decision is exactly the one the
    /// sequential engine would make at that position. Planning stops at any
    /// boundary where batching could diverge from token-at-a-time serving:
    ///
    /// * the scheduler re-picks a session already in the batch (a decode
    ///   token would depend on an unserved token's logits),
    /// * the picked session's spec differs from the lane's (one fused MLP
    ///   pass serves one spec),
    /// * a planned token completes its session (the freed slot makes the
    ///   next admission decision due *before* any further token),
    /// * `allow_multi` is false — the open-loop driver's guard for windows
    ///   where un-ingested arrivals could change scheduling mid-batch.
    ///
    /// A session starting (or continuing) prefill instead plans a prompt
    /// *chunk*: consecutive positions of that one session, as long as the
    /// scheduler (filtered through the prefill slice, when one is passed)
    /// keeps choosing it, bounded by `chunk_limit` positions.
    #[allow(clippy::too_many_arguments)]
    fn plan_batch(
        scheduler: &SchedulerPolicy,
        active: &mut [Session],
        rng: &mut StdRng,
        step_base: usize,
        allow_multi: bool,
        mut slice: Option<&mut PrefillSlice>,
        chunk_limit: usize,
        plan: &mut BatchPlan,
    ) -> Result<()> {
        plan.rows.clear();
        let mut step = step_base;
        let first = pick_service(scheduler, active, slice.as_deref_mut(), chunk_limit)
            .expect("active is non-empty");
        if allow_multi
            && active[first].phase() == SessionPhase::Prefill
            && active[first].prompt_remaining() >= 2
        {
            plan.kind = Some(PlanKind::Chunk);
            loop {
                let planned = active[first].plan_token(rng, step)?;
                active[first].last_served_step = step;
                if let Some(slice) = slice.as_deref_mut() {
                    slice.note(active[first].stream, planned.was_prefill);
                }
                plan.rows.push(PlanRow {
                    idx: first,
                    stream: active[first].stream,
                    planned,
                });
                step += 1;
                if planned.prefill_ended
                    || plan.rows.len() >= chunk_limit
                    // a page-loss replay re-serves already-generated
                    // positions as prefill without ever "ending" prefill;
                    // once the replayed prompt runs out the next step is a
                    // decode that must sample fresh logits, so close the
                    // chunk here instead of running into it
                    || active[first].prompt_remaining() == 0
                {
                    break;
                }
                if pick_service(scheduler, active, slice.as_deref_mut(), chunk_limit) != Some(first)
                {
                    break;
                }
            }
            return Ok(());
        }
        plan.kind = Some(PlanKind::Lane);
        let lane_spec = active[first].request.strategy;
        let mut idx = first;
        loop {
            let planned = active[idx].plan_token(rng, step)?;
            active[idx].last_served_step = step;
            if let Some(slice) = slice.as_deref_mut() {
                slice.note(active[idx].stream, planned.was_prefill);
            }
            plan.rows.push(PlanRow {
                idx,
                stream: active[idx].stream,
                planned,
            });
            step += 1;
            if active[idx].remaining_tokens() == 0 || !allow_multi {
                break;
            }
            let Some(next) = pick_service(scheduler, active, slice.as_deref_mut(), chunk_limit)
            else {
                break;
            };
            if plan.rows.iter().any(|r| r.idx == next) || active[next].request.strategy != lane_spec
            {
                break;
            }
            idx = next;
        }
        Ok(())
    }

    /// Executes the current plan in one fused pass: a prompt chunk through
    /// [`TransformerModel::forward_prompt_into`], a lane through
    /// [`TransformerModel::forward_tokens_batch_into`] (fused MLP when the
    /// lane strategy allows it, per-session MLP otherwise). Session states
    /// and strategy boxes are moved out for the call and restored after.
    fn execute_batch(&mut self, active: &mut [Session]) -> Result<()> {
        let ServeEngine {
            model,
            batch,
            plan,
            exec,
            ..
        } = self;
        exec.tokens.clear();
        exec.tokens
            .extend(plan.rows.iter().map(|r| r.planned.token));
        match plan.kind.expect("executing a planned batch") {
            PlanKind::Chunk => {
                let session = &mut active[plan.rows[0].idx];
                let mut state = take_state(session);
                let result = model.forward_prompt_into(
                    &exec.tokens,
                    &mut state,
                    session.strategy.as_mut(),
                    batch,
                );
                session.state = state;
                result?;
            }
            PlanKind::Lane => {
                exec.states.clear();
                exec.strategies.clear();
                for row in &plan.rows {
                    let session = &mut active[row.idx];
                    exec.states.push(take_state(session));
                    exec.strategies
                        .push(std::mem::replace(&mut session.strategy, Box::new(DenseMlp)));
                }
                let result = if exec.strategies[0].batch_fusable() {
                    // one instance may drive the whole lane (stateless or
                    // lane-shared state — see `MlpForward::batch_fusable`)
                    let mut mode = BatchStrategies::Fused(exec.strategies[0].as_mut());
                    model.forward_tokens_batch_into(
                        &exec.tokens,
                        &mut exec.states,
                        &mut mode,
                        batch,
                    )
                } else {
                    let mut mode = BatchStrategies::PerRow(&mut exec.strategies);
                    model.forward_tokens_batch_into(
                        &exec.tokens,
                        &mut exec.states,
                        &mut mode,
                        batch,
                    )
                };
                for (row, (state, strategy)) in plan
                    .rows
                    .iter()
                    .zip(exec.states.drain(..).zip(exec.strategies.drain(..)))
                {
                    let session = &mut active[row.idx];
                    session.state = state;
                    session.strategy = strategy;
                }
                result?;
            }
        }
        Ok(())
    }

    /// Whether row `i` of the executed plan produced observable logits (lane
    /// rows always do; only the last row of a prompt chunk does).
    fn row_logits_ready(&self, i: usize) -> bool {
        match self.plan.kind {
            Some(PlanKind::Lane) => true,
            _ => i + 1 == self.plan.rows.len(),
        }
    }

    /// Serves a closed batch of requests to completion and reports
    /// per-request latencies and fleet aggregates.
    ///
    /// # Errors
    ///
    /// Propagates request validation, strategy construction, model forward
    /// and simulation errors.
    pub fn run(&mut self, requests: Vec<GenRequest>) -> Result<ServeReport> {
        // Faults, retries and degradation are *events in time*: they need
        // the open-loop virtual clock (arrival offsets, backoff, queue
        // pressure). A closed batch has no clock and no queue pressure, so
        // a configuration carrying them is a category error, not a no-op.
        if self.config.fault_plan.is_some() {
            return Err(ServeError::InvalidConfig {
                field: "fault_plan",
                reason: "fault injection needs the open-loop virtual clock; \
                         use run_open_loop for chaos runs"
                    .to_string(),
            });
        }
        if self.config.retry.is_some() {
            return Err(ServeError::InvalidConfig {
                field: "retry",
                reason: "retry backoff runs on the open-loop virtual clock; \
                         closed batches cannot re-enqueue"
                    .to_string(),
            });
        }
        if self.config.degrade.is_some() {
            return Err(ServeError::InvalidConfig {
                field: "degrade",
                reason: "degradation reacts to open-loop queue pressure; \
                         a closed batch has no admission queue"
                    .to_string(),
            });
        }
        self.validate_requests(&requests)?;
        // a closed batch must drain, so every request must fit the page
        // pool by itself (open-loop traffic sheds such requests instead)
        if let Some(paged) = &self.paged {
            let n_layers = self.model.config.n_layers;
            for r in &requests {
                let needed = n_layers * pages_spanning(r.total_tokens(), paged.page_size);
                if needed > paged.pool_pages {
                    return Err(ServeError::InvalidRequest {
                        id: r.id,
                        reason: format!(
                            "needs {needed} KV pages but the pool holds {}",
                            paged.pool_pages
                        ),
                    });
                }
            }
        }
        self.reset_paged_run();
        if requests.iter().any(|r| r.strategy.needs_calibration()) {
            self.ensure_calibration()?;
        }

        // Shared layout + DRAM split, fixed for the whole run.
        let specs: Vec<StrategySpec> = requests.iter().map(|r| r.strategy).collect();
        let axes = resolve_axes(&specs)?;
        let layout = layout_for_serving(
            &self.model.config,
            axes,
            self.config.bits_per_weight,
            self.config.max_concurrent,
            self.context_window(),
        );
        let allocation = hwsim::allocate(&layout, &self.config.device)?;

        let n_streams = requests.len();
        let mut factory = StrategyFactory::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let sequential = self.config.execution == ExecutionMode::Sequential;
        let mut waiting: Vec<GenRequest> = requests;
        let mut active: Vec<Session> = Vec::new();
        let mut finished: Vec<Session> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        let mut next_stream = 0usize;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.on_run_start(0.0);
        }

        while !waiting.is_empty() || !active.is_empty() {
            // Admission: fill free KV slots following the scheduler policy
            // (gated on page commitment when the engine is paged).
            while active.len() < self.config.max_concurrent && !waiting.is_empty() {
                let idx = self
                    .config
                    .scheduler
                    .next_admission(&waiting)
                    .expect("queue is non-empty");
                let Some(plan) = Self::paged_admission_gate(
                    &mut self.paged,
                    self.model.config.n_layers,
                    &waiting[idx],
                    active.is_empty(),
                ) else {
                    // pool pressure: wait for a running session to complete
                    break;
                };
                let request = waiting.remove(idx);
                let strategy = factory.instantiate(
                    &request.strategy,
                    &self.model,
                    &allocation.capacities,
                    self.calibration.as_ref(),
                )?;
                let state = self
                    .pool
                    .acquire_backed(&self.model, self.paged.as_ref().map(|p| &p.pool));
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_slot_granted(next_stream, &request.strategy.label());
                }
                let mut session = Session::new(next_stream, request, order.len(), state, strategy);
                Self::apply_paged_admit(&mut self.paged, &mut self.telemetry, &mut session, plan)?;
                active.push(session);
                next_stream += 1;
            }

            if sequential {
                // Oracle path: serve one token of one active session.
                let idx = self
                    .config
                    .scheduler
                    .next_service(&active)
                    .expect("active set is non-empty");
                let step = order.len();
                let planned = active[idx].step(&self.model, &mut rng, step, &mut self.scratch)?;
                active[idx].last_served_step = step;
                order.push(active[idx].stream);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_closed_token(active[idx].stream, planned.was_prefill);
                }
                // Let every *other* shared cache-aware model see this
                // traffic: the physical DRAM cache is shared, so their view
                // must include co-tenant accesses.
                factory.observe_cross_traffic_scratch(
                    active[idx].request.strategy.shared_cache_key(),
                    &self.scratch.accesses,
                    self.model.config.d_model,
                    self.model.config.d_ff,
                );

                try_register_prefix(&mut self.paged, &mut active[idx]);
                if active[idx].remaining_tokens() == 0 {
                    let mut session = active.swap_remove(idx);
                    if let Some(paged) = self.paged.as_mut() {
                        paged.committed -= session.kv_pages_committed;
                        session.kv_pages_committed = 0;
                    }
                    // Return the KV slot's decode state to the pool for the
                    // next admission; the session keeps its bookkeeping.
                    let state = take_state(&mut session);
                    self.pool.release(state);
                    finished.push(session);
                }
            } else {
                // Batched path: plan a lane/chunk of consecutive schedule
                // positions and execute it in one fused weight pass, then
                // settle each position in schedule order (identical traces,
                // interleave and shared-cache observations).
                Self::plan_batch(
                    &self.config.scheduler,
                    &mut active,
                    &mut rng,
                    order.len(),
                    true,
                    None,
                    MAX_PREFILL_CHUNK,
                    &mut self.plan,
                )?;
                self.execute_batch(&mut active)?;
                let rows_n = self.plan.rows.len();
                let vocab = self.model.config.vocab_size;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_plan(self.plan.kind == Some(PlanKind::Chunk), rows_n, 0.0);
                }
                for i in 0..rows_n {
                    let row = self.plan.rows[i];
                    let access = to_token_access_batch_row(&self.batch.accesses, i);
                    let logits = self
                        .row_logits_ready(i)
                        .then(|| &self.batch.logits[i * vocab..(i + 1) * vocab]);
                    active[row.idx].finish_row(access, logits);
                    order.push(row.stream);
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.on_closed_token(row.stream, row.planned.was_prefill);
                    }
                    factory.observe_cross_traffic_batch_row(
                        active[row.idx].request.strategy.shared_cache_key(),
                        &self.batch.accesses,
                        i,
                        self.model.config.d_model,
                        self.model.config.d_ff,
                    );
                }
                for i in 0..rows_n {
                    let row_idx = self.plan.rows[i].idx;
                    try_register_prefix(&mut self.paged, &mut active[row_idx]);
                }
                // at most the last planned position's session completed
                // (the planner breaks a batch at any earlier completion)
                let last_idx = self.plan.rows[rows_n - 1].idx;
                if active[last_idx].remaining_tokens() == 0 {
                    let mut session = active.swap_remove(last_idx);
                    if let Some(paged) = self.paged.as_mut() {
                        paged.committed -= session.kv_pages_committed;
                        session.kv_pages_committed = 0;
                    }
                    let state = take_state(&mut session);
                    self.pool.release(state);
                    finished.push(session);
                }
            }
        }

        self.publish_paged_telemetry();
        if let Some(t) = self.telemetry.as_deref_mut() {
            // closed batches are priced post hoc, so the virtual clock here
            // is 0; the report carries the makespan
            t.on_run_end(
                0.0,
                order.len() as u64,
                active.len(),
                0,
                waiting.len(),
                &self.pool,
                self.batch.rows_computed,
                self.batch.fused_passes,
                self.batch.pack_nanos,
                self.batch.pack_builds,
            );
        }
        self.build_report(&layout, finished, order, n_streams)
    }

    /// Fires one [`crate::event::EventKind::Arrival`]: takes the request
    /// out of the run's inbox and offers it to admission control. Admission
    /// decisions use the request's own arrival time, so the token bucket
    /// refills on true inter-arrival gaps regardless of when the engine's
    /// clock catches up. A request whose worst-case footprint exceeds the
    /// whole page pool is shed at the door rather than pinning the queue
    /// forever.
    fn ingest_arrival(
        inbox: &mut [Option<GenRequest>],
        i: usize,
        n_layers: usize,
        paged_caps: Option<(usize, usize)>,
        admission: &mut AdmissionController,
        telemetry: &mut Option<Box<EngineTelemetry>>,
    ) {
        let request = inbox[i].take().expect("each arrival fires exactly once");
        let at = request.arrival_s;
        let fits_memory = paged_caps.is_none_or(|(page_size, pool_pages)| {
            n_layers * pages_spanning(request.total_tokens(), page_size) <= pool_pages
        });
        let verdict = admission.offer_with_memory(request, at, fits_memory);
        if let Some(t) = telemetry.as_deref_mut() {
            t.on_arrival(verdict, admission.queue().len(), at);
        }
    }

    /// Generates an open-loop workload's traffic and serves it on a virtual
    /// clock (see [`ServeEngine::run_open_loop_requests`]).
    ///
    /// # Errors
    ///
    /// Propagates workload validation/generation errors and everything
    /// [`ServeEngine::run_open_loop_requests`] returns.
    pub fn run_open_loop(&mut self, workload: &Workload) -> Result<ServeReport> {
        let arrivals = workload.generate(self.model.config.vocab_size)?;
        self.run_open_loop_requests(arrivals)
    }

    /// Serves timestamped arrivals open loop, to drain, on a virtual clock
    /// driven by an [`EventQueue`].
    ///
    /// Where [`ServeEngine::run`] consumes a closed batch (everything queued
    /// at t = 0) and prices the traffic post hoc, this driver interleaves
    /// *time* with execution. The clock is the head of a (time, seq)-keyed
    /// event queue rather than a token counter:
    ///
    /// 1. Every arrival is seeded as an
    ///    [`crate::event::EventKind::Arrival`] at its timestamp. Firing one
    ///    offers the request to admission control
    ///    ([`crate::admission::AdmissionController`]): token-bucket rate
    ///    limiting, per-tier quotas, then the bounded queue — excess traffic
    ///    is **shed**, not queued forever.
    /// 2. Each scheduled unit of work (a prefill chunk or a decode round)
    ///    completes as a `UnitDone` event whose duration is the sum of its
    ///    tokens' service latencies ([`hwsim::TokenPricer`] prices tokens
    ///    online with the same cost model the batch replay uses — identical
    ///    by construction). Long prefills are split into chunks of
    ///    [`ServeConfig::prefill_chunk_tokens`] under
    ///    [`EngineCore::EventDriven`] (the default), with a decode round
    ///    between chunks, so a monolithic prompt can no longer stall every
    ///    decoding session behind it; [`EngineCore::StepLoop`] keeps the
    ///    legacy monolithic-chunk behaviour.
    /// 3. Free KV slots are filled from the waiting queue (and from parked
    ///    sessions) following the scheduler policy. Under
    ///    [`SchedulerPolicy::PriorityPreemptive`] a waiting request that
    ///    outranks the lowest-tier active session **preempts** it at a token
    ///    boundary: the victim's decode state is parked in
    ///    [`lm::DecodeStatePool`] (KV and position intact) and resumed later
    ///    without output divergence. Parking spills the victim's KV bytes
    ///    and resuming reloads them; both transfers are priced through the
    ///    same [`hwsim::TokenPricer`] and occupy the clock as
    ///    `SpillDone`/`ReloadDone` events — preemption is never free.
    /// 4. When nothing is runnable the clock jumps to the next pending
    ///    event (typically the next arrival).
    ///
    /// The run is a pure function of `(arrivals, config, model)`: events at
    /// equal times fire in insertion (seq) order, no wall clock or ambient
    /// randomness enters, so reports are bitwise reproducible across runs
    /// and thread counts.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for
    /// [`EvictionPolicy::Belady`] (the oracle needs the full future trace,
    /// which an open-loop run does not have), [`ServeError::InvalidRequest`]
    /// for malformed requests or non-finite/negative arrival times, and
    /// propagates strategy construction, forward-pass and pricing errors.
    pub fn run_open_loop_requests(&mut self, mut arrivals: Vec<GenRequest>) -> Result<ServeReport> {
        if self.config.eviction == EvictionPolicy::Belady {
            return Err(ServeError::InvalidConfig {
                field: "eviction",
                reason: "Belady's oracle needs the full future access trace; \
                         open-loop traffic is priced online"
                    .to_string(),
            });
        }
        self.validate_requests(&arrivals)?;
        if let Some(bad) = arrivals
            .iter()
            .find(|r| !r.arrival_s.is_finite() || r.arrival_s < 0.0)
        {
            return Err(ServeError::InvalidRequest {
                id: bad.id,
                reason: format!(
                    "arrival time {} is not a finite non-negative virtual-clock time",
                    bad.arrival_s
                ),
            });
        }
        if arrivals.iter().any(|r| r.strategy.needs_calibration()) {
            self.ensure_calibration()?;
        }
        self.reset_paged_run();
        arrivals.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));

        // Shared layout + DRAM split, fixed for the whole run (axes must be
        // resolvable across every arrival, shed or not, since the layout
        // cannot change mid-run).
        let specs: Vec<StrategySpec> = arrivals.iter().map(|r| r.strategy).collect();
        let axes = resolve_axes(&specs)?;
        let layout = layout_for_serving(
            &self.model.config,
            axes,
            self.config.bits_per_weight,
            self.config.max_concurrent,
            self.context_window(),
        );
        let static_bytes = layout.static_bytes as f64;
        let mlp_bytes = layout.mlp_bytes() as f64;
        let allocation = hwsim::allocate(&layout, &self.config.device)?;
        let mut pricer =
            TokenPricer::new(&layout, &self.config.device, self.config.eviction, None)?;

        let mut factory = StrategyFactory::new();
        let mut acc = OpenAccum {
            cache_fraction: pricer.cache_fraction(),
            ..OpenAccum::default()
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let sequential = self.config.execution == ExecutionMode::Sequential;
        let mut admission = AdmissionController::new(self.config.admission.clone());
        // Every request becomes an Arrival event up front; pushing in sorted
        // order means equal-time arrivals pop in id order. The queue also
        // carries one in-flight completion event (spill, reload or service
        // unit) at a time, plus any seeded deadline and injected fault
        // events (counted or pushed here, before steady state begins).
        let n_deadlines = arrivals.iter().filter(|r| r.deadline_s.is_finite()).count();
        let mut events = EventQueue::with_capacity(arrivals.len() + n_deadlines + 1);
        for (i, r) in arrivals.iter().enumerate() {
            events.push_at(r.arrival_s, EngineEvent::Arrival(i));
        }
        // Request-declared wall budgets become deadline events on the same
        // clock (after the arrivals, so an arrival at the same instant pops
        // first and the deadline finds the request, not a ghost).
        for r in &arrivals {
            if r.deadline_s.is_finite() {
                events.push_at(
                    r.arrival_s + r.deadline_s,
                    EngineEvent::DeadlineAt { request: r.id },
                );
            }
        }
        if let Some(plan) = &self.config.fault_plan {
            crate::fault::FaultInjector::new(plan).schedule(plan, &arrivals, &mut events);
        }
        let retry_policy = self.config.retry;
        let degrade_policy = self.config.degrade;
        let slow_lane_factor = self
            .config
            .fault_plan
            .as_ref()
            .and_then(|p| p.slow_lane)
            .map_or(1.0, |w| w.factor);
        let mut slow_factor = 1.0f64;
        let mut fc = FaultCounters::default();
        let mut deferred: Vec<Event> = Vec::new();
        let mut pending_retries: Vec<Option<(GenRequest, u32)>> = Vec::new();
        let mut retry_attempts: std::collections::HashMap<u64, u32> =
            std::collections::HashMap::new();
        let mut inbox: Vec<Option<GenRequest>> = arrivals.into_iter().map(Some).collect();
        let chunk_limit = match self.config.engine_core {
            EngineCore::EventDriven => self.config.prefill_chunk_tokens.min(MAX_PREFILL_CHUNK),
            EngineCore::StepLoop => MAX_PREFILL_CHUNK,
        };
        let mut slice = match self.config.engine_core {
            EngineCore::EventDriven => Some(PrefillSlice::new()),
            EngineCore::StepLoop => None,
        };
        let paged_caps = self.paged.as_ref().map(|p| (p.page_size, p.pool_pages));
        let mut parked: Vec<Session> = Vec::new();
        let mut active: Vec<Session> = Vec::new();
        let mut finished: Vec<Session> = Vec::new();
        let mut metas: Vec<OpenMeta> = Vec::new();
        // The DRAM layout budgets KV for `max_concurrent` slots; a parked
        // session's KV state cannot stay resident on top of that, so
        // preemption swaps it out to Flash (and back in on resume), and the
        // transfer is charged on the virtual clock at Flash bandwidth.
        let kv_bytes_per_pos =
            self.model.config.kv_cache_bytes() / self.model.config.max_seq_len as f64;
        let n_layers = self.model.config.n_layers;
        let mut now = 0.0f64;
        let mut step = 0usize;
        let mut next_stream = 0usize;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.on_run_start(now);
        }

        // One borrow bundle per fault-application site: the handler needs
        // most of the driver's state, and an associated fn taking a context
        // struct keeps the three call sites identical.
        macro_rules! fault_ctx {
            () => {
                FaultCtx {
                    active: &mut active,
                    parked: &mut parked,
                    finished: &mut finished,
                    metas: &mut metas,
                    admission: &mut admission,
                    events: &mut events,
                    pool: &mut self.pool,
                    paged: &mut self.paged,
                    telemetry: &mut self.telemetry,
                    pending_retries: &mut pending_retries,
                    retry_attempts: &mut retry_attempts,
                    fc: &mut fc,
                    slow_factor: &mut slow_factor,
                    retry_policy,
                    slow_lane_factor,
                    n_layers,
                }
            };
        }

        loop {
            // 0. Apply fault events that popped inside the previous
            // dispatch's drain window. They are deferred to here — a loop
            // head, where no unit is mid-settlement — and land at the
            // already-advanced clock, in their pop order.
            if !deferred.is_empty() {
                for ev in &deferred {
                    apply_fault(fault_ctx!(), ev.kind, now);
                }
                deferred.clear();
            }

            // 1. Fire every event the clock has already passed: arrivals
            // and fault events. Completion events are drained at their own
            // dispatch site, before the clock moves on.
            while let Some(ev) = events.pop_due(now) {
                match ev.kind {
                    EngineEvent::Arrival(i) => Self::ingest_arrival(
                        &mut inbox,
                        i,
                        n_layers,
                        paged_caps,
                        &mut admission,
                        &mut self.telemetry,
                    ),
                    EngineEvent::SpillDone { .. }
                    | EngineEvent::ReloadDone { .. }
                    | EngineEvent::UnitDone { .. } => {
                        debug_assert!(false, "completion events settle at dispatch");
                    }
                    kind => apply_fault(fault_ctx!(), kind, now),
                }
            }

            // 2. Fill free KV slots; under PriorityPreemptive, additionally
            // displace lower-tier active sessions for higher-tier waiters.
            while let Some(candidate) = self
                .config
                .scheduler
                .next_candidate(admission.queue(), &parked)
            {
                if active.len() >= self.config.max_concurrent {
                    let tier = match candidate {
                        AdmissionCandidate::Queued(i) => admission.queue()[i].tier,
                        AdmissionCandidate::Parked(i) => parked[i].request.tier,
                    };
                    let Some(victim) = self.config.scheduler.preemption_victim(&active, tier)
                    else {
                        break;
                    };
                    let mut session = active.swap_remove(victim);
                    if let Some(paged) = self.paged.as_mut() {
                        // parking spills the pages to (virtual) Flash; the
                        // worst-case commitment goes with them
                        paged.committed -= session.kv_pages_committed;
                        session.kv_pages_committed = 0;
                    }
                    let state = take_state(&mut session);
                    let positions = state.pos;
                    // the spill is priced traffic, not a bare clock bump:
                    // TokenPricer charges it at Flash bandwidth and the
                    // bytes join the fleet's flash totals, so the
                    // telemetry-counted swap bytes and the priced cost agree
                    let swap = pricer.price_kv_swap(kv_bytes_per_pos * positions as f64);
                    let end = now + swap.latency_s;
                    events.push_at(
                        end,
                        EngineEvent::SpillDone {
                            stream: session.stream,
                        },
                    );
                    while let Some(ev) = events.pop_due(end) {
                        match ev.kind {
                            EngineEvent::Arrival(i) => Self::ingest_arrival(
                                &mut inbox,
                                i,
                                n_layers,
                                paged_caps,
                                &mut admission,
                                &mut self.telemetry,
                            ),
                            // the transfer completion we just scheduled is
                            // what advances the clock
                            EngineEvent::SpillDone { .. }
                            | EngineEvent::ReloadDone { .. }
                            | EngineEvent::UnitDone { .. } => now = now.max(ev.time),
                            // fault events inside a dispatch window apply at
                            // the next loop head, never mid-settlement
                            _ => deferred.push(ev),
                        }
                    }
                    acc.kv_swap_s += swap.latency_s;
                    acc.kv_swap_bytes += swap.flash_bytes;
                    acc.kv_spill_bytes += swap.flash_bytes;
                    acc.flash_bytes += swap.flash_bytes;
                    metas[session.stream].flash_bytes += swap.flash_bytes;
                    self.pool.park(session.stream as u64, state);
                    metas[session.stream].preemptions += 1;
                    acc.preemptions += 1;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.on_preempt(session.stream, positions, swap.latency_s, now);
                        t.on_kv_swap_bytes(swap.flash_bytes);
                    }
                    parked.push(session);
                }
                // Graceful degradation decision for a queued candidate:
                // under queue pressure, walk the spec-declared fallback
                // chain ([`StrategySpec::degraded`]) as far as the policy's
                // step budget and run-level admissibility (axis agreement
                // with the resolved layout, calibration availability)
                // allow. Decided *before* the paged plan so a prefix-hit
                // lookup keys on the spec the session will actually run —
                // adopting pages prefilled under a different strategy would
                // splice mismatched hidden states.
                let degraded_to: Option<StrategySpec> = match (degrade_policy, candidate) {
                    (Some(policy), AdmissionCandidate::Queued(i)) => {
                        let waiting_behind = admission.queue().len().saturating_sub(1);
                        degrade_spec(
                            &admission.queue()[i].strategy,
                            policy.steps_for_depth(waiting_behind),
                            axes,
                            self.calibration.is_some(),
                        )
                    }
                    _ => None,
                };

                // Paged memory gate for the candidate. A resumed session
                // re-commits its full worst-case footprint: spilling
                // privatised its pages, so any prefix sharing is gone.
                let plan = match self.paged.as_mut() {
                    None => None,
                    Some(paged) => {
                        let plan_of = |paged: &PagedRuntime| match candidate {
                            AdmissionCandidate::Queued(i) => match degraded_to {
                                Some(spec) => {
                                    let mut request = admission.queue()[i].clone();
                                    request.strategy = spec;
                                    paged_plan(paged, n_layers, &request)
                                }
                                None => paged_plan(paged, n_layers, &admission.queue()[i]),
                            },
                            AdmissionCandidate::Parked(i) => PagedAdmit {
                                needed: n_layers
                                    * pages_spanning(
                                        parked[i].request.total_tokens(),
                                        paged.page_size,
                                    ),
                                hit: None,
                            },
                        };
                        let mut plan = plan_of(paged);
                        if paged.committed + plan.needed > paged.pool_pages
                            && active.is_empty()
                            && !paged.registry.is_empty()
                        {
                            // nothing runnable can free pages: evict the
                            // prefix registry and re-plan without it
                            paged.committed -= paged.registry.pages_held();
                            paged.registry.reset();
                            plan = plan_of(paged);
                        }
                        if paged.committed + plan.needed > paged.pool_pages {
                            break;
                        }
                        Some(plan)
                    }
                };
                match candidate {
                    AdmissionCandidate::Parked(i) => {
                        let mut session = parked.swap_remove(i);
                        session.state = self
                            .pool
                            .resume(session.stream as u64)
                            .expect("parked session has a parked state");
                        if let (Some(paged), Some(plan)) = (self.paged.as_mut(), plan) {
                            paged.committed += plan.needed;
                            session.kv_pages_committed = plan.needed;
                            // re-allocate pages and restore the spilled KV
                            session.state.reload_kv()?;
                        }
                        // the reload prices like the spill did: the parked
                        // position count is frozen, so each park/resume
                        // cycle moves the same bytes once in each direction
                        let swap =
                            pricer.price_kv_swap(kv_bytes_per_pos * session.state.pos as f64);
                        let end = now + swap.latency_s;
                        events.push_at(
                            end,
                            EngineEvent::ReloadDone {
                                stream: session.stream,
                            },
                        );
                        while let Some(ev) = events.pop_due(end) {
                            match ev.kind {
                                EngineEvent::Arrival(i) => Self::ingest_arrival(
                                    &mut inbox,
                                    i,
                                    n_layers,
                                    paged_caps,
                                    &mut admission,
                                    &mut self.telemetry,
                                ),
                                EngineEvent::SpillDone { .. }
                                | EngineEvent::ReloadDone { .. }
                                | EngineEvent::UnitDone { .. } => now = now.max(ev.time),
                                // fault events inside a dispatch window apply at
                                // the next loop head, never mid-settlement
                                _ => deferred.push(ev),
                            }
                        }
                        acc.kv_swap_s += swap.latency_s;
                        acc.kv_swap_bytes += swap.flash_bytes;
                        acc.kv_reload_bytes += swap.flash_bytes;
                        acc.flash_bytes += swap.flash_bytes;
                        metas[session.stream].flash_bytes += swap.flash_bytes;
                        acc.resumes += 1;
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.on_resume(session.stream, session.state.pos, swap.latency_s, now);
                            t.on_kv_swap_bytes(swap.flash_bytes);
                        }
                        active.push(session);
                    }
                    AdmissionCandidate::Queued(i) => {
                        let mut request = admission.take(i);
                        let was_degraded = match degraded_to {
                            Some(spec) => {
                                request.strategy = spec;
                                if let Some(t) = self.telemetry.as_deref_mut() {
                                    t.on_degrade(next_stream, now);
                                }
                                true
                            }
                            None => false,
                        };
                        let strategy = factory.instantiate(
                            &request.strategy,
                            &self.model,
                            &allocation.capacities,
                            self.calibration.as_ref(),
                        )?;
                        let state = self
                            .pool
                            .acquire_backed(&self.model, self.paged.as_ref().map(|p| &p.pool));
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.on_slot_granted(next_stream, &request.strategy.label());
                        }
                        metas.push(OpenMeta::new(request.arrival_s, now));
                        let mut session = Session::new(next_stream, request, step, state, strategy);
                        session.degraded = was_degraded;
                        // a request coming back through admission after a
                        // worker abort carries its attempt count forward
                        session.attempts = retry_attempts
                            .remove(&session.request.id)
                            .unwrap_or(session.attempts);
                        Self::apply_paged_admit(
                            &mut self.paged,
                            &mut self.telemetry,
                            &mut session,
                            plan,
                        )?;
                        active.push(session);
                        next_stream += 1;
                    }
                }
            }

            // 3. Nothing runnable: jump the clock to the next arrival, or
            // drain. (With free slots the admission loop above empties both
            // the queue and the parked set, so an idle engine truly has
            // nothing waiting.)
            if active.is_empty() {
                debug_assert!(admission.queue().is_empty() && parked.is_empty());
                match events.pop_next() {
                    None => break,
                    Some(ev) => {
                        match ev.kind {
                            // an arrival (or a maturing retry) is real
                            // traffic: jump the clock to it
                            EngineEvent::Arrival(i) => {
                                now = now.max(ev.time);
                                Self::ingest_arrival(
                                    &mut inbox,
                                    i,
                                    n_layers,
                                    paged_caps,
                                    &mut admission,
                                    &mut self.telemetry,
                                );
                            }
                            EngineEvent::RetryAt { .. } => {
                                now = now.max(ev.time);
                                apply_fault(fault_ctx!(), ev.kind, now);
                            }
                            EngineEvent::SpillDone { .. }
                            | EngineEvent::ReloadDone { .. }
                            | EngineEvent::UnitDone { .. } => {
                                debug_assert!(false, "idle queues hold no completions");
                            }
                            // With nothing active, parked or queued, the
                            // remaining fault events are stale strikes on
                            // already-retired requests (or a slow-lane
                            // toggle with nothing to slow down). They must
                            // still pop — a pending-retry slot can be
                            // cancelled here — but a no-op must not stretch
                            // the makespan, so the clock stays put.
                            kind => apply_fault(fault_ctx!(), kind, now.max(ev.time)),
                        }
                        continue;
                    }
                }
            }

            // 4. Serve the scheduler's next token(s) and advance the
            // virtual clock by each token's online-priced service time.
            if sequential {
                let idx =
                    pick_service(&self.config.scheduler, &active, slice.as_mut(), chunk_limit)
                        .expect("active set is non-empty");
                let planned = active[idx].step(&self.model, &mut rng, step, &mut self.scratch)?;
                active[idx].last_served_step = step;
                step += 1;
                if let Some(slice) = slice.as_mut() {
                    slice.note(active[idx].stream, planned.was_prefill);
                }
                let mut cost = pricer.price_token(
                    active[idx]
                        .trace
                        .tokens
                        .last()
                        .expect("step recorded its token access"),
                )?;
                if slow_factor != 1.0 {
                    cost.latency_s *= slow_factor;
                }
                // dispatch: the bus is occupied until `end`; arrivals landing
                // inside the occupancy are ingested in event order before the
                // unit settles
                let end = now + cost.latency_s;
                events.push_at(end, EngineEvent::UnitDone { tokens: 1 });
                while let Some(ev) = events.pop_due(end) {
                    match ev.kind {
                        EngineEvent::Arrival(i) => Self::ingest_arrival(
                            &mut inbox,
                            i,
                            n_layers,
                            paged_caps,
                            &mut admission,
                            &mut self.telemetry,
                        ),
                        EngineEvent::SpillDone { .. }
                        | EngineEvent::ReloadDone { .. }
                        | EngineEvent::UnitDone { .. } => now = now.max(ev.time),
                        // fault events inside a dispatch window apply at
                        // the next loop head, never mid-settlement
                        _ => deferred.push(ev),
                    }
                }
                settle_open_loop_token(
                    &cost,
                    &planned,
                    active[idx].request.max_new_tokens,
                    active[idx].stream,
                    now,
                    &mut acc,
                    &mut metas,
                    static_bytes,
                    mlp_bytes,
                );
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_token(
                        active[idx].stream,
                        active[idx].request.tier,
                        &cost,
                        planned.was_prefill,
                        now,
                    );
                }
                factory.observe_cross_traffic_scratch(
                    active[idx].request.strategy.shared_cache_key(),
                    &self.scratch.accesses,
                    self.model.config.d_model,
                    self.model.config.d_ff,
                );

                try_register_prefix(&mut self.paged, &mut active[idx]);
                if active[idx].remaining_tokens() == 0 {
                    let session = active.swap_remove(idx);
                    let finish = if session.token_capped() {
                        FinishReason::Cancelled
                    } else {
                        FinishReason::Completed
                    };
                    retire_open_session(
                        session,
                        finish,
                        now,
                        &mut self.paged,
                        &mut self.pool,
                        &mut self.telemetry,
                        &mut metas,
                        &mut finished,
                        &mut fc,
                    );
                }
            } else {
                // Batch extension is only allowed while no *un-ingested*
                // arrival could change scheduling mid-batch: either every
                // arrival is already ingested, or the slots are full under a
                // non-preemptive policy (then admission between tokens is
                // provably a no-op and delayed ingestion is equivalent —
                // see DESIGN.md §11/§16).
                let allow_multi = !events.has_pending_arrival()
                    || (self.config.scheduler != SchedulerPolicy::PriorityPreemptive
                        && active.len() == self.config.max_concurrent);
                Self::plan_batch(
                    &self.config.scheduler,
                    &mut active,
                    &mut rng,
                    step,
                    allow_multi,
                    slice.as_mut(),
                    chunk_limit,
                    &mut self.plan,
                )?;
                self.execute_batch(&mut active)?;
                let rows_n = self.plan.rows.len();
                let vocab = self.model.config.vocab_size;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_plan(self.plan.kind == Some(PlanKind::Chunk), rows_n, now);
                }
                // dispatch: price every position in plan order (the bus
                // order), recording each one's completion time on the clock
                self.exec.priced.clear();
                let mut row_accesses = std::mem::take(&mut self.exec.row_accesses);
                row_accesses.clear();
                let mut end = now;
                for i in 0..rows_n {
                    let access = to_token_access_batch_row(&self.batch.accesses, i);
                    let mut cost = pricer.price_token(&access)?;
                    if slow_factor != 1.0 {
                        cost.latency_s *= slow_factor;
                    }
                    end += cost.latency_s;
                    self.exec.priced.push((cost, end));
                    row_accesses.push(access);
                }
                events.push_at(end, EngineEvent::UnitDone { tokens: rows_n });
                while let Some(ev) = events.pop_due(end) {
                    match ev.kind {
                        EngineEvent::Arrival(i) => Self::ingest_arrival(
                            &mut inbox,
                            i,
                            n_layers,
                            paged_caps,
                            &mut admission,
                            &mut self.telemetry,
                        ),
                        EngineEvent::SpillDone { .. }
                        | EngineEvent::ReloadDone { .. }
                        | EngineEvent::UnitDone { .. } => now = now.max(ev.time),
                        // fault events inside a dispatch window apply at
                        // the next loop head, never mid-settlement
                        _ => deferred.push(ev),
                    }
                }
                // settlement: each position lands at its own recorded time
                for (i, access) in row_accesses.drain(..).enumerate() {
                    let row = self.plan.rows[i];
                    let (cost, at) = self.exec.priced[i];
                    settle_open_loop_token(
                        &cost,
                        &row.planned,
                        active[row.idx].request.max_new_tokens,
                        row.stream,
                        at,
                        &mut acc,
                        &mut metas,
                        static_bytes,
                        mlp_bytes,
                    );
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.on_token(
                            row.stream,
                            active[row.idx].request.tier,
                            &cost,
                            row.planned.was_prefill,
                            at,
                        );
                    }
                    let logits = self
                        .row_logits_ready(i)
                        .then(|| &self.batch.logits[i * vocab..(i + 1) * vocab]);
                    active[row.idx].finish_row(access, logits);
                    factory.observe_cross_traffic_batch_row(
                        active[row.idx].request.strategy.shared_cache_key(),
                        &self.batch.accesses,
                        i,
                        self.model.config.d_model,
                        self.model.config.d_ff,
                    );
                    step += 1;
                }
                self.exec.row_accesses = row_accesses;
                for i in 0..rows_n {
                    let row_idx = self.plan.rows[i].idx;
                    try_register_prefix(&mut self.paged, &mut active[row_idx]);
                }
                let last_idx = self.plan.rows[rows_n - 1].idx;
                if active[last_idx].remaining_tokens() == 0 {
                    let session = active.swap_remove(last_idx);
                    let finish = if session.token_capped() {
                        FinishReason::Cancelled
                    } else {
                        FinishReason::Completed
                    };
                    retire_open_session(
                        session,
                        finish,
                        now,
                        &mut self.paged,
                        &mut self.pool,
                        &mut self.telemetry,
                        &mut metas,
                        &mut finished,
                        &mut fc,
                    );
                }
            }
        }

        debug_assert_eq!(
            admission.stats().admitted,
            finished.len() + fc.withdrawn + fc.retries,
            "every admitted request drains, is withdrawn, or is re-queued for retry"
        );
        self.publish_paged_telemetry();
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.on_run_end(
                now,
                step as u64,
                active.len(),
                parked.len(),
                admission.queue().len(),
                &self.pool,
                self.batch.rows_computed,
                self.batch.fused_passes,
                self.batch.pack_nanos,
                self.batch.pack_builds,
            );
        }
        Ok(self.build_open_loop_report(finished, metas, admission, acc, fc, now))
    }

    #[allow(clippy::too_many_arguments)]
    fn build_open_loop_report(
        &self,
        mut finished: Vec<Session>,
        metas: Vec<OpenMeta>,
        admission: AdmissionController,
        acc: OpenAccum,
        fc: FaultCounters,
        makespan_s: f64,
    ) -> ServeReport {
        finished.sort_by_key(|s| s.stream);

        let mut request_stats = Vec::with_capacity(finished.len());
        let mut latencies = Vec::with_capacity(finished.len());
        let mut ttfts = Vec::with_capacity(finished.len());
        let mut queue_delays = Vec::with_capacity(finished.len());
        let mut services = Vec::with_capacity(finished.len());
        let mut ttft_sum = 0.0f64;
        let mut total_generated = 0usize;
        let mut total_prefill = 0usize;
        for s in &mut finished {
            let meta = &metas[s.stream];
            let generated_ids = std::mem::take(&mut s.generated);
            let generated = generated_ids.len();
            total_generated += generated;
            // count *served* prefill tokens: a mapped shared prefix was never
            // forwarded (and must not inflate the token timeline), while a
            // page-loss replay re-serves positions and must count each pass —
            // the recorded trace holds exactly the forwarded steps
            total_prefill += s.trace.n_tokens() - generated;
            let ttft_s = if generated > 0 {
                meta.first_token_s - meta.arrival_s
            } else {
                meta.completion_s - meta.arrival_s
            };
            let tbt_mean_s = if generated > 0 {
                (meta.completion_s - meta.first_token_s) / generated as f64
            } else {
                0.0
            };
            let latency = meta.completion_s - meta.arrival_s;
            let accesses = meta.hits + meta.misses;
            ttft_sum += ttft_s;
            latencies.push(latency);
            ttfts.push(ttft_s);
            queue_delays.push(meta.slot_s - meta.arrival_s);
            services.push(meta.service_s);
            request_stats.push(RequestStats {
                id: s.request.id,
                stream: s.stream,
                strategy: s.request.strategy.label(),
                tier: s.request.tier,
                prompt_tokens: s.request.prompt.len(),
                generated_tokens: generated,
                generated: generated_ids,
                admitted_step: s.admitted_step,
                arrival_s: meta.arrival_s,
                queue_delay_s: meta.slot_s - meta.arrival_s,
                first_token_s: if generated > 0 {
                    meta.first_token_s
                } else {
                    0.0
                },
                ttft_s,
                tbt_mean_s,
                preemptions: meta.preemptions,
                // a session that produced no tokens has nothing to meet a
                // latency target *with*: its ttft_s is a time-to-nothing, so
                // counting the (vacuously fast) default SLO as met would let
                // zero-output sessions launder attainment upward
                slo_met: generated > 0 && s.request.slo.met(ttft_s, tbt_mean_s),
                completion_s: meta.completion_s,
                service_s: meta.service_s,
                throughput_tps: if latency > 0.0 {
                    generated as f64 / latency
                } else {
                    0.0
                },
                hit_rate: if accesses == 0 {
                    1.0
                } else {
                    meta.hits as f64 / accesses as f64
                },
                flash_bytes: meta.flash_bytes,
                dram_bytes: meta.dram_bytes,
                finish: s.finish,
                degraded: s.degraded,
                attempts: s.attempts,
            });
        }

        // Per-tier breakdown; a shed request counts as a missed SLO, so
        // shedding cannot launder attainment.
        let stats = admission.stats();
        let tiers: Vec<TierStats> = TIERS
            .iter()
            .enumerate()
            .map(|(i, &tier)| {
                let in_tier: Vec<&RequestStats> =
                    request_stats.iter().filter(|r| r.tier == tier).collect();
                let met = in_tier.iter().filter(|r| r.slo_met).count();
                let tier_ttfts: Vec<f64> = in_tier.iter().map(|r| r.ttft_s).collect();
                let tier_delays: Vec<f64> = in_tier.iter().map(|r| r.queue_delay_s).collect();
                TierStats {
                    tier,
                    arrived: stats.arrived_per_tier[i],
                    admitted: stats.arrived_per_tier[i] - stats.shed_per_tier[i],
                    shed: stats.shed_per_tier[i],
                    completed: in_tier
                        .iter()
                        .filter(|r| r.finish == FinishReason::Completed)
                        .count(),
                    cancelled: fc.cancelled_per_tier[i],
                    expired: fc.expired_per_tier[i],
                    failed: fc.failed_per_tier[i],
                    degraded: in_tier.iter().filter(|r| r.degraded).count(),
                    preemptions: in_tier.iter().map(|r| r.preemptions).sum(),
                    ttft: Percentiles::of(&tier_ttfts),
                    queue_delay: Percentiles::of(&tier_delays),
                    slo_attainment: if stats.arrived_per_tier[i] == 0 {
                        1.0
                    } else {
                        met as f64 / stats.arrived_per_tier[i] as f64
                    },
                }
            })
            .collect();

        // Per-strategy breakdown, in order of first appearance.
        let mut strategies: Vec<StrategyClassStats> = Vec::new();
        for r in &request_stats {
            if !strategies.iter().any(|c| c.strategy == r.strategy) {
                let in_class: Vec<&RequestStats> = request_stats
                    .iter()
                    .filter(|o| o.strategy == r.strategy)
                    .collect();
                let class_ttfts: Vec<f64> = in_class.iter().map(|o| o.ttft_s).collect();
                let (class_hits, class_accesses) = in_class.iter().fold((0u64, 0u64), |a, o| {
                    let m = &metas[o.stream];
                    (a.0 + m.hits, a.1 + m.hits + m.misses)
                });
                strategies.push(StrategyClassStats {
                    strategy: r.strategy.clone(),
                    completed: in_class.len(),
                    generated_tokens: in_class.iter().map(|o| o.generated_tokens).sum(),
                    ttft: Percentiles::of(&class_ttfts),
                    hit_rate: if class_accesses == 0 {
                        1.0
                    } else {
                        class_hits as f64 / class_accesses as f64
                    },
                    slo_attainment: if in_class.is_empty() {
                        1.0
                    } else {
                        in_class.iter().filter(|o| o.slo_met).count() as f64 / in_class.len() as f64
                    },
                });
            }
        }

        let met_total = request_stats.iter().filter(|r| r.slo_met).count();
        let open_loop = OpenLoopStats {
            arrived: stats.arrived,
            admitted: stats.admitted,
            shed: stats.shed(),
            shed_rate_limited: stats.shed_rate_limited,
            shed_tier_quota: stats.shed_tier_quota,
            shed_queue_full: stats.shed_queue_full,
            shed_memory: stats.shed_memory,
            completed: request_stats
                .iter()
                .filter(|r| r.finish == FinishReason::Completed)
                .count(),
            cancelled: fc.cancelled,
            deadline_expired: fc.deadline_expired,
            failed: fc.failed,
            retries: fc.retries,
            degraded_sessions: request_stats.iter().filter(|r| r.degraded).count(),
            kv_pages_lost: fc.kv_pages_lost,
            kv_refill_tokens: fc.kv_refill_tokens,
            preemptions: acc.preemptions,
            resumes: acc.resumes,
            kv_swap_s: acc.kv_swap_s,
            kv_swap_bytes: acc.kv_swap_bytes,
            kv_spill_bytes: acc.kv_spill_bytes,
            kv_reload_bytes: acc.kv_reload_bytes,
            ttft: Percentiles::of(&ttfts),
            tbt: Percentiles::of(&acc.tbt_gaps),
            queue_delay: Percentiles::of(&queue_delays),
            slo_attainment: if stats.arrived == 0 {
                1.0
            } else {
                met_total as f64 / stats.arrived as f64
            },
            tiers,
            strategies,
        };

        let served_steps = total_prefill + total_generated;
        let accesses = acc.hits + acc.misses;
        let n = finished.len().max(1);
        ServeReport {
            model: self.model.config.name.clone(),
            scheduler: self.config.scheduler,
            eviction: self.config.eviction,
            max_concurrent: self.config.max_concurrent,
            requests: request_stats,
            total_prefill_tokens: total_prefill,
            total_generated_tokens: total_generated,
            makespan_s,
            aggregate_tps: if makespan_s > 0.0 {
                total_generated as f64 / makespan_s
            } else {
                0.0
            },
            latency_p50_s: percentile(&latencies, 0.50),
            latency_p95_s: percentile(&latencies, 0.95),
            latency_p99_s: percentile(&latencies, 0.99),
            mean_first_token_s: ttft_sum / n as f64,
            cache_hit_rate: if accesses == 0 {
                1.0
            } else {
                acc.hits as f64 / accesses as f64
            },
            cache_fraction: acc.cache_fraction,
            fairness: hwsim::jain_index(&services),
            mean_density: if served_steps == 0 {
                1.0
            } else {
                acc.density_sum / served_steps as f64
            },
            flash_bytes: acc.flash_bytes,
            dram_bytes: acc.dram_bytes,
            open_loop: Some(open_loop),
            paged_kv: self.paged_stats(),
        }
    }

    fn build_report(
        &self,
        layout: &hwsim::ModelLayout,
        mut finished: Vec<Session>,
        order: Vec<usize>,
        n_streams: usize,
    ) -> Result<ServeReport> {
        finished.sort_by_key(|s| s.stream);
        let streams: Vec<AccessTrace> = {
            // move (not clone) each session's recorded trace into stream order
            let mut traces = vec![AccessTrace::new(); n_streams];
            for s in &mut finished {
                traces[s.stream] = std::mem::take(&mut s.trace);
            }
            traces
        };
        let sim = simulate_concurrent(
            layout,
            &self.config.device,
            self.config.eviction,
            &streams,
            &order,
        )?;

        // Wall-clock completion of each schedule position.
        let mut clock = 0.0f64;
        let completion_at: Vec<f64> = sim
            .schedule
            .iter()
            .map(|(_, latency)| {
                clock += latency;
                clock
            })
            .collect();

        let mut request_stats = Vec::with_capacity(finished.len());
        let mut completions = Vec::with_capacity(finished.len());
        let mut first_token_sum = 0.0f64;
        let mut total_generated = 0usize;
        let mut total_prefill = 0usize;
        for s in &mut finished {
            let stream_stats = &sim.streams[s.stream];
            let first_token_s = s
                .first_token_position()
                .map(|p| completion_at[p])
                .unwrap_or(0.0);
            let generated_ids = std::mem::take(&mut s.generated);
            let generated = generated_ids.len();
            total_generated += generated;
            // served prefill only: mapped shared-prefix tokens were skipped
            total_prefill += s.request.prompt.len() - s.prefix_tokens_skipped();
            first_token_sum += first_token_s;
            completions.push(stream_stats.completion_s);
            // closed batches have every request present at t = 0, so TTFT
            // is the first token's completion and queueing is free
            let ttft_s = first_token_s;
            let tbt_mean_s = if generated > 0 {
                (stream_stats.completion_s - first_token_s) / generated as f64
            } else {
                0.0
            };
            request_stats.push(RequestStats {
                id: s.request.id,
                stream: s.stream,
                strategy: s.request.strategy.label(),
                tier: s.request.tier,
                prompt_tokens: s.request.prompt.len(),
                generated_tokens: generated,
                generated: generated_ids,
                admitted_step: s.admitted_step,
                arrival_s: 0.0,
                queue_delay_s: 0.0,
                first_token_s,
                ttft_s,
                tbt_mean_s,
                preemptions: 0,
                slo_met: s.request.slo.met(ttft_s, tbt_mean_s),
                completion_s: stream_stats.completion_s,
                service_s: stream_stats.service_s,
                throughput_tps: if stream_stats.completion_s > 0.0 {
                    generated as f64 / stream_stats.completion_s
                } else {
                    0.0
                },
                hit_rate: stream_stats.hit_rate,
                flash_bytes: stream_stats.flash_bytes,
                dram_bytes: stream_stats.dram_bytes,
                finish: if s.token_capped() {
                    FinishReason::Cancelled
                } else {
                    FinishReason::Completed
                },
                degraded: s.degraded,
                attempts: s.attempts,
            });
        }

        let makespan = sim.makespan_s();
        let n = finished.len().max(1);
        Ok(ServeReport {
            model: self.model.config.name.clone(),
            scheduler: self.config.scheduler,
            eviction: self.config.eviction,
            max_concurrent: self.config.max_concurrent,
            requests: request_stats,
            total_prefill_tokens: total_prefill,
            total_generated_tokens: total_generated,
            makespan_s: makespan,
            aggregate_tps: if makespan > 0.0 {
                total_generated as f64 / makespan
            } else {
                0.0
            },
            latency_p50_s: percentile(&completions, 0.50),
            latency_p95_s: percentile(&completions, 0.95),
            latency_p99_s: percentile(&completions, 0.99),
            mean_first_token_s: first_token_sum / n as f64,
            cache_hit_rate: sim.aggregate.hit_rate,
            cache_fraction: sim.aggregate.cache_fraction,
            fairness: sim.jain_fairness(),
            mean_density: sim.aggregate.mean_density,
            flash_bytes: sim.aggregate.flash_bytes,
            dram_bytes: sim.aggregate.dram_bytes,
            open_loop: None,
            paged_kv: self.paged_stats(),
        })
    }
}

/// Per-session timing and traffic bookkeeping of an open-loop run, indexed
/// by stream.
struct OpenMeta {
    /// Arrival on the virtual clock.
    arrival_s: f64,
    /// First KV-slot grant.
    slot_s: f64,
    /// Availability of the first generated token (0 until known).
    first_token_s: f64,
    /// Completion of the session's most recent step.
    last_completion_s: f64,
    /// Completion of the session's last step.
    completion_s: f64,
    service_s: f64,
    hits: u64,
    misses: u64,
    flash_bytes: f64,
    dram_bytes: f64,
    preemptions: usize,
}

impl OpenMeta {
    fn new(arrival_s: f64, slot_s: f64) -> Self {
        OpenMeta {
            arrival_s,
            slot_s,
            first_token_s: 0.0,
            last_completion_s: slot_s,
            completion_s: slot_s,
            service_s: 0.0,
            hits: 0,
            misses: 0,
            flash_bytes: 0.0,
            dram_bytes: 0.0,
            preemptions: 0,
        }
    }
}

/// Fleet-wide accumulators of an open-loop run.
#[derive(Default)]
struct OpenAccum {
    hits: u64,
    misses: u64,
    flash_bytes: f64,
    dram_bytes: f64,
    density_sum: f64,
    tbt_gaps: Vec<f64>,
    preemptions: usize,
    resumes: usize,
    kv_swap_s: f64,
    kv_swap_bytes: f64,
    kv_spill_bytes: f64,
    kv_reload_bytes: f64,
    cache_fraction: f64,
}

/// Settles one served token of an open-loop run at its completion time `at`
/// on the virtual clock (the dispatch site computed `at` from the token's
/// priced service time and fired the unit's completion event) and updates
/// the fleet and per-session accounting. One function serves both execution
/// modes, so their arithmetic cannot drift.
#[allow(clippy::too_many_arguments)]
fn settle_open_loop_token(
    cost: &hwsim::TokenCost,
    planned: &PlannedToken,
    max_new_tokens: usize,
    stream: usize,
    at: f64,
    acc: &mut OpenAccum,
    metas: &mut [OpenMeta],
    static_bytes: f64,
    mlp_bytes: f64,
) {
    acc.hits += cost.hits as u64;
    acc.misses += cost.misses as u64;
    acc.flash_bytes += cost.flash_bytes;
    acc.dram_bytes += cost.dram_bytes;
    if mlp_bytes > 0.0 {
        // bytes-weighted MLP density of this token (uniform per-layer
        // layouts make this identical to the batch replay's
        // per-(token, block) mean)
        acc.density_sum += (cost.dram_bytes - static_bytes + cost.flash_bytes) / mlp_bytes;
    }
    let meta = &mut metas[stream];
    meta.service_s += cost.latency_s;
    meta.hits += cost.hits as u64;
    meta.misses += cost.misses as u64;
    meta.flash_bytes += cost.flash_bytes;
    meta.dram_bytes += cost.dram_bytes;
    if !planned.was_prefill {
        acc.tbt_gaps.push(at - meta.last_completion_s);
    }
    if planned.prefill_ended && max_new_tokens > 0 {
        // completing the last prefill step makes the first generated token
        // available (same convention as the closed-batch report)
        meta.first_token_s = at;
    }
    meta.last_completion_s = at;
}

/// Completion-time latency stats of a drained open-loop session —
/// `(generated, ttft_s, tbt_mean_s, queue_delay_s, slo_met)` — matching the
/// report's definitions exactly, so telemetry histograms observe the same
/// numbers the report later recomputes.
fn completion_stats(session: &Session, meta: &OpenMeta) -> (usize, f64, f64, f64, bool) {
    let generated = session.generated.len();
    let ttft_s = if generated > 0 {
        meta.first_token_s - meta.arrival_s
    } else {
        meta.completion_s - meta.arrival_s
    };
    let tbt_mean_s = if generated > 0 {
        (meta.completion_s - meta.first_token_s) / generated as f64
    } else {
        0.0
    };
    let queue_delay_s = meta.slot_s - meta.arrival_s;
    // zero-output sessions never count as SLO-met (see the report assembly)
    let slo_met = generated > 0 && session.request.slo.met(ttft_s, tbt_mean_s);
    (generated, ttft_s, tbt_mean_s, queue_delay_s, slo_met)
}

/// Moves a session's decode state out, leaving an empty placeholder (the
/// session keeps only its bookkeeping until resumed or retired).
fn take_state(session: &mut Session) -> lm::DecodeState {
    std::mem::replace(
        &mut session.state,
        lm::DecodeState {
            kv: Vec::new(),
            pos: 0,
        },
    )
}

/// Run-scoped fault accounting. Every arrival ends exactly one way, so at
/// drain `arrived = shed + completed + cancelled + deadline_expired +
/// failed`, while `admitted = finished + withdrawn + retries` holds at the
/// attempt level (each abort-and-retry consumed one prior admission, each
/// queued-request withdrawal one pending admission).
#[derive(Default)]
struct FaultCounters {
    /// Requests retired as [`FinishReason::Cancelled`] (injected client
    /// cancellations and patience-capped completions).
    cancelled: usize,
    /// Requests retired as [`FinishReason::DeadlineExpired`].
    deadline_expired: usize,
    /// Requests retired as [`FinishReason::Failed`].
    failed: usize,
    /// Worker aborts re-offered through admission with backoff.
    retries: usize,
    /// Cancellations/expiries that struck a request still in the waiting
    /// queue (withdrawn before ever holding a KV slot — no session row).
    withdrawn: usize,
    /// Paged-KV pages invalidated by page-loss faults, across layers.
    kv_pages_lost: usize,
    /// Tokens queued for re-prefill to rebuild lost pages.
    kv_refill_tokens: usize,
    cancelled_per_tier: [usize; 3],
    expired_per_tier: [usize; 3],
    failed_per_tier: [usize; 3],
}

/// The borrow bundle a fault handler needs: most of the open-loop driver's
/// mutable state. Built by the driver's `fault_ctx!` macro at each of the
/// three application sites (loop head, due-event drain, idle wait).
struct FaultCtx<'a> {
    active: &'a mut Vec<Session>,
    parked: &'a mut Vec<Session>,
    finished: &'a mut Vec<Session>,
    metas: &'a mut Vec<OpenMeta>,
    admission: &'a mut AdmissionController,
    events: &'a mut EventQueue,
    pool: &'a mut DecodeStatePool,
    paged: &'a mut Option<PagedRuntime>,
    telemetry: &'a mut Option<Box<EngineTelemetry>>,
    pending_retries: &'a mut Vec<Option<(GenRequest, u32)>>,
    retry_attempts: &'a mut std::collections::HashMap<u64, u32>,
    fc: &'a mut FaultCounters,
    slow_factor: &'a mut f64,
    retry_policy: Option<RetryPolicy>,
    slow_lane_factor: f64,
    n_layers: usize,
}

/// Retires an open-loop session (normal completion or fault) with uniform
/// cleanup: paged commitment released (a parked victim already spilled its
/// pages and holds none, so nothing double-releases), completion stamped,
/// telemetry notified, decode state returned to the pool, counters updated.
#[allow(clippy::too_many_arguments)]
fn retire_open_session(
    mut session: Session,
    finish: FinishReason,
    now: f64,
    paged: &mut Option<PagedRuntime>,
    pool: &mut DecodeStatePool,
    telemetry: &mut Option<Box<EngineTelemetry>>,
    metas: &mut [OpenMeta],
    finished: &mut Vec<Session>,
    fc: &mut FaultCounters,
) {
    session.finish = finish;
    if let Some(paged) = paged.as_mut() {
        paged.committed -= session.kv_pages_committed;
        session.kv_pages_committed = 0;
    }
    metas[session.stream].completion_s = now;
    let tier = session.request.tier.index();
    match finish {
        FinishReason::Completed => {
            if let Some(t) = telemetry.as_deref_mut() {
                let (generated, ttft_s, tbt_s, delay_s, slo) =
                    completion_stats(&session, &metas[session.stream]);
                t.on_complete(session.stream, generated, ttft_s, tbt_s, delay_s, slo, now);
            }
        }
        FinishReason::Cancelled => {
            fc.cancelled += 1;
            fc.cancelled_per_tier[tier] += 1;
            if let Some(t) = telemetry.as_deref_mut() {
                t.on_fault_finish(finish, now);
            }
        }
        FinishReason::DeadlineExpired => {
            fc.deadline_expired += 1;
            fc.expired_per_tier[tier] += 1;
            if let Some(t) = telemetry.as_deref_mut() {
                t.on_fault_finish(finish, now);
            }
        }
        FinishReason::Failed => {
            fc.failed += 1;
            fc.failed_per_tier[tier] += 1;
            if let Some(t) = telemetry.as_deref_mut() {
                t.on_fault_finish(finish, now);
            }
        }
    }
    let state = take_state(&mut session);
    pool.release(state);
    finished.push(session);
}

/// Walks `spec` down its fallback chain ([`StrategySpec::degraded`]) by at
/// most `steps`, stopping at the last step admissible under this run's
/// fixed layout: every declared axis requirement must match the resolved
/// `axes`, and a step that needs calibration is only admissible when the
/// engine holds a trace. Returns `None` when no admissible step exists (the
/// candidate runs as requested).
fn degrade_spec(
    spec: &StrategySpec,
    steps: usize,
    axes: [lm::SliceAxis; 3],
    has_calibration: bool,
) -> Option<StrategySpec> {
    let mut current = *spec;
    let mut adopted = None;
    for _ in 0..steps {
        let Some(next) = current.degraded() else {
            break;
        };
        let axes_ok = next
            .axis_requirements()
            .iter()
            .zip(axes.iter())
            .all(|(req, axis)| req.is_none() || *req == Some(*axis));
        if !axes_ok || (next.needs_calibration() && !has_calibration) {
            break;
        }
        adopted = Some(next);
        current = next;
    }
    adopted
}

/// Applies one fault event at virtual time `at`. Fault events are routed
/// here from every site that pops them; completion events and arrivals
/// never reach this function.
fn apply_fault(ctx: FaultCtx<'_>, kind: EngineEvent, at: f64) {
    match kind {
        EngineEvent::CancelAt { request } => {
            cancel_or_expire(ctx, request, FinishReason::Cancelled, at);
        }
        EngineEvent::DeadlineAt { request } => {
            cancel_or_expire(ctx, request, FinishReason::DeadlineExpired, at);
        }
        EngineEvent::AbortAt { request } => abort_session(ctx, request, at),
        EngineEvent::PageLossAt { draw } => page_loss(ctx, draw, at),
        EngineEvent::SlowLane { on } => {
            *ctx.slow_factor = if on { ctx.slow_lane_factor } else { 1.0 };
        }
        EngineEvent::RetryAt { slot } => retry_matures(ctx, slot, at),
        EngineEvent::Arrival(_)
        | EngineEvent::SpillDone { .. }
        | EngineEvent::ReloadDone { .. }
        | EngineEvent::UnitDone { .. } => {
            debug_assert!(false, "only fault events route to apply_fault");
        }
    }
}

/// A client cancellation or deadline expiry strikes request `request`,
/// wherever it currently lives: still queued (withdrawn, counted, no
/// session row), active, parked (its spilled state is reclaimed from the
/// pool's parked set), or backing off toward a retry. A request that
/// already finished makes the event a stale no-op.
fn cancel_or_expire(ctx: FaultCtx<'_>, request: u64, finish: FinishReason, at: f64) {
    if let Some(req) = ctx.admission.withdraw(request) {
        ctx.fc.withdrawn += 1;
        let tier = req.tier.index();
        match finish {
            FinishReason::Cancelled => {
                ctx.fc.cancelled += 1;
                ctx.fc.cancelled_per_tier[tier] += 1;
            }
            _ => {
                ctx.fc.deadline_expired += 1;
                ctx.fc.expired_per_tier[tier] += 1;
            }
        }
        if let Some(t) = ctx.telemetry.as_deref_mut() {
            t.on_fault_finish(finish, at);
        }
        return;
    }
    if let Some(idx) = ctx.active.iter().position(|s| s.request.id == request) {
        let session = ctx.active.swap_remove(idx);
        retire_open_session(
            session,
            finish,
            at,
            ctx.paged,
            ctx.pool,
            ctx.telemetry,
            ctx.metas,
            ctx.finished,
            ctx.fc,
        );
        return;
    }
    if let Some(idx) = ctx.parked.iter().position(|s| s.request.id == request) {
        let mut session = ctx.parked.swap_remove(idx);
        // reclaim the spilled state so the pool's parked set cannot leak
        session.state = ctx
            .pool
            .resume(session.stream as u64)
            .expect("parked session has a parked state");
        retire_open_session(
            session,
            finish,
            at,
            ctx.paged,
            ctx.pool,
            ctx.telemetry,
            ctx.metas,
            ctx.finished,
            ctx.fc,
        );
        return;
    }
    if let Some(slot) = ctx
        .pending_retries
        .iter()
        .position(|p| p.as_ref().is_some_and(|(r, _)| r.id == request))
    {
        // the strike lands mid-backoff: the retry never re-admits (its
        // RetryAt event will find an empty slot and no-op)
        let (req, _) = ctx.pending_retries[slot].take().expect("slot just matched");
        ctx.retry_attempts.remove(&request);
        let tier = req.tier.index();
        match finish {
            FinishReason::Cancelled => {
                ctx.fc.cancelled += 1;
                ctx.fc.cancelled_per_tier[tier] += 1;
            }
            _ => {
                ctx.fc.deadline_expired += 1;
                ctx.fc.expired_per_tier[tier] += 1;
            }
        }
        if let Some(t) = ctx.telemetry.as_deref_mut() {
            t.on_fault_finish(finish, at);
        }
    }
}

/// A transient worker failure aborts request `request`'s *active* session
/// (queued or parked requests have no worker to abort — stale no-op). When
/// a [`RetryPolicy`] has attempts left the session is destroyed and its
/// request re-enters admission after an exponential backoff; otherwise it
/// retires as [`FinishReason::Failed`].
fn abort_session(ctx: FaultCtx<'_>, request: u64, at: f64) {
    let Some(idx) = ctx.active.iter().position(|s| s.request.id == request) else {
        return;
    };
    let retryable = ctx
        .retry_policy
        .is_some_and(|p| ctx.active[idx].attempts < p.max_attempts);
    if !retryable {
        let session = ctx.active.swap_remove(idx);
        retire_open_session(
            session,
            FinishReason::Failed,
            at,
            ctx.paged,
            ctx.pool,
            ctx.telemetry,
            ctx.metas,
            ctx.finished,
            ctx.fc,
        );
        return;
    }
    let mut session = ctx.active.swap_remove(idx);
    if let Some(paged) = ctx.paged.as_mut() {
        paged.committed -= session.kv_pages_committed;
        session.kv_pages_committed = 0;
    }
    let state = take_state(&mut session);
    ctx.pool.release(state);
    let attempts = session.attempts;
    let policy = ctx.retry_policy.expect("retryable implies a policy");
    ctx.fc.retries += 1;
    // the re-admitted session picks its attempt count up here; the
    // destroyed attempt's meta stays orphaned (no report row is built
    // for it — the retry gets a fresh stream and meta)
    ctx.retry_attempts.insert(request, attempts + 1);
    let slot = match ctx.pending_retries.iter().position(Option::is_none) {
        Some(free) => free,
        None => {
            ctx.pending_retries.push(None);
            ctx.pending_retries.len() - 1
        }
    };
    ctx.pending_retries[slot] = Some((session.request, attempts + 1));
    ctx.events.push_at(
        at + policy.backoff_s(attempts),
        EngineEvent::RetryAt { slot },
    );
    if let Some(t) = ctx.telemetry.as_deref_mut() {
        t.on_retry(at);
    }
}

/// A paged-KV page-loss fault strikes. The victim is picked
/// deterministically (`draw % eligible`) among active paged sessions that
/// hold context beyond their adopted shared prefix; it rewinds to its last
/// whole page boundary — never below the adopted prefix, whose pages are
/// mapped, not owned — and re-prefills the lost suffix through the
/// ordinary serve path (bitwise-identical KV, so outputs are unchanged;
/// the fault costs time, not correctness). With flat backing or no
/// eligible session the event is a no-op.
fn page_loss(ctx: FaultCtx<'_>, draw: u64, at: f64) {
    let Some(paged) = ctx.paged.as_mut() else {
        return;
    };
    let ps = paged.page_size;
    let eligible = |s: &Session| s.state.pos > s.prefix_tokens_skipped();
    let n_eligible = ctx.active.iter().filter(|s| eligible(s)).count();
    if n_eligible == 0 {
        return;
    }
    let pick = (draw % n_eligible as u64) as usize;
    let idx = ctx
        .active
        .iter()
        .enumerate()
        .filter(|(_, s)| eligible(s))
        .nth(pick)
        .map(|(i, _)| i)
        .expect("pick < n_eligible");
    let session = &mut ctx.active[idx];
    let old_pos = session.state.pos;
    let new_pos = (((old_pos - 1) / ps) * ps).max(session.prefix_tokens_skipped());
    let lost_tokens = session.rewind_for_refill(new_pos);
    let pages = ctx.n_layers * (pages_spanning(old_pos, ps) - pages_spanning(new_pos, ps));
    ctx.fc.kv_pages_lost += pages;
    ctx.fc.kv_refill_tokens += lost_tokens;
    if let Some(t) = ctx.telemetry.as_deref_mut() {
        t.on_page_loss(session.stream, pages, lost_tokens, at);
    }
}

/// A backed-off retry matures: re-offer the request parked in `slot`
/// through admission. The slot is empty when a cancellation or expiry
/// struck during the backoff — then the event is a stale no-op. Admission
/// may still reject the re-offer (rate limit, quota, bounded queue); a
/// rejected retry retires as [`FinishReason::Failed`] with no session row.
fn retry_matures(ctx: FaultCtx<'_>, slot: usize, at: f64) {
    let Some((request, _)) = ctx.pending_retries.get_mut(slot).and_then(Option::take) else {
        return;
    };
    let id = request.id;
    let tier = request.tier.index();
    if ctx.admission.reoffer(request, at).is_some() {
        ctx.retry_attempts.remove(&id);
        ctx.fc.failed += 1;
        ctx.fc.failed_per_tier[tier] += 1;
        if let Some(t) = ctx.telemetry.as_deref_mut() {
            t.on_fault_finish(FinishReason::Failed, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, ModelConfig};

    fn tiny_engine(slots: usize, cache_fraction: f64) -> ServeEngine {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 7).unwrap();
        let layout = layout_for_serving(
            &config,
            [lm::SliceAxis::Input; 3],
            4.0,
            slots,
            config.max_seq_len,
        );
        // DRAM = everything static + `cache_fraction` of the MLP weights
        let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * cache_fraction) as u64;
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
        ServeEngine::new(model, ServeConfig::new(device).with_max_concurrent(slots)).unwrap()
    }

    fn dense_requests(n: usize, prompt_len: usize, new_tokens: usize) -> Vec<GenRequest> {
        (0..n)
            .map(|i| {
                GenRequest::new(
                    i as u64,
                    vec![(i % 7) as u32 + 1; prompt_len],
                    new_tokens,
                    StrategySpec::Dense,
                )
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        let device = DeviceConfig::apple_a18(4.0);
        assert!(ServeConfig::new(device.clone()).validate().is_ok());
        assert!(ServeConfig::new(device.clone())
            .with_max_concurrent(0)
            .validate()
            .is_err());
        let mut bad = ServeConfig::new(device);
        bad.bits_per_weight = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn robustness_configs_are_validated() {
        use crate::fault::{DegradePolicy, FaultPlan, RetryPolicy};
        let device = DeviceConfig::apple_a18(4.0);
        // prefix sharing maps pages; without a paged pool it is a typed error
        assert!(matches!(
            ServeConfig::new(device.clone())
                .with_prefix_sharing()
                .validate(),
            Err(ServeError::InvalidConfig {
                field: "paged_kv",
                ..
            })
        ));
        // ...and the same request with a pool validates
        assert!(ServeConfig::new(device.clone())
            .with_paged_kv(16, 64)
            .with_prefix_sharing()
            .validate()
            .is_ok());
        // builder order must not matter: sharing requested first still
        // reaches the paged runtime
        assert!(ServeConfig::new(device.clone())
            .with_prefix_sharing()
            .with_paged_kv(16, 64)
            .validate()
            .is_ok());
        // page-loss faults need a paged pool to lose pages from
        let mut plan = FaultPlan::none();
        plan.page_loss_every_s = 1.0;
        plan.page_loss_horizon_s = 10.0;
        assert!(matches!(
            ServeConfig::new(device.clone())
                .with_fault_plan(plan.clone())
                .validate(),
            Err(ServeError::InvalidConfig {
                field: "fault_plan.page_loss_every_s",
                ..
            })
        ));
        assert!(ServeConfig::new(device.clone())
            .with_paged_kv(16, 64)
            .with_fault_plan(plan)
            .validate()
            .is_ok());
        // rates must be probabilities
        let mut bad = FaultPlan::none();
        bad.cancel_rate = 1.5;
        assert!(ServeConfig::new(device.clone())
            .with_fault_plan(bad)
            .validate()
            .is_err());
        // retry and degrade bounds are typed errors too
        assert!(matches!(
            ServeConfig::new(device.clone())
                .with_retry(RetryPolicy {
                    max_attempts: 0,
                    backoff_base_s: 1.0,
                })
                .validate(),
            Err(ServeError::InvalidConfig {
                field: "retry.max_attempts",
                ..
            })
        ));
        assert!(matches!(
            ServeConfig::new(device)
                .with_degrade(DegradePolicy {
                    queue_depth_threshold: 0,
                    max_steps: 1,
                })
                .validate(),
            Err(ServeError::InvalidConfig {
                field: "degrade.queue_depth_threshold",
                ..
            })
        ));
    }

    #[test]
    fn closed_batches_reject_time_domain_robustness_knobs() {
        let mut engine = tiny_engine(2, 0.6);
        engine.config.fault_plan = Some(crate::fault::FaultPlan::none());
        assert!(matches!(
            engine.run(dense_requests(1, 2, 2)),
            Err(ServeError::InvalidConfig {
                field: "fault_plan",
                ..
            })
        ));
        engine.config.fault_plan = None;
        engine.config.retry = Some(crate::fault::RetryPolicy {
            max_attempts: 2,
            backoff_base_s: 0.5,
        });
        assert!(matches!(
            engine.run(dense_requests(1, 2, 2)),
            Err(ServeError::InvalidConfig { field: "retry", .. })
        ));
        engine.config.retry = None;
        engine.config.degrade = Some(crate::fault::DegradePolicy {
            queue_depth_threshold: 1,
            max_steps: 1,
        });
        assert!(matches!(
            engine.run(dense_requests(1, 2, 2)),
            Err(ServeError::InvalidConfig {
                field: "degrade",
                ..
            })
        ));
        engine.config.degrade = None;
        assert!(engine.run(dense_requests(1, 2, 2)).is_ok());
    }

    #[test]
    fn queue_pressure_degrades_along_the_fallback_chain() {
        let mut engine = tiny_engine(1, 0.6);
        engine.config.degrade = Some(crate::fault::DegradePolicy {
            queue_depth_threshold: 1,
            max_steps: 2,
        });
        // four simultaneous arrivals on one slot: the first admissions see
        // deep queues and degrade, the last sees an empty queue and runs as
        // requested
        let arrivals: Vec<GenRequest> = (0..4)
            .map(|i| GenRequest::new(i, vec![1, 2, 3], 3, StrategySpec::Dense))
            .collect();
        let report = engine.run_open_loop_requests(arrivals).unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        assert!(ol.degraded_sessions > 0, "queue pressure must degrade");
        assert!(
            ol.degraded_sessions < ol.completed,
            "an uncontended admission must run as requested"
        );
        let degraded: Vec<_> = report.requests.iter().filter(|r| r.degraded).collect();
        assert_eq!(degraded.len(), ol.degraded_sessions);
        for r in &degraded {
            assert!(
                r.strategy.starts_with("dip@"),
                "dense degrades into DIP, got {}",
                r.strategy
            );
        }
        let tier_total: usize = ol.tiers.iter().map(|t| t.degraded).sum();
        assert_eq!(tier_total, ol.degraded_sessions);
        // every request still drains to completion
        assert_eq!(ol.arrived, ol.shed + ol.completed);
        for r in &report.requests {
            assert_eq!(r.finish, FinishReason::Completed);
            assert_eq!(r.generated_tokens, 3);
        }
    }

    #[test]
    fn closed_batch_runs_to_completion() {
        let mut engine = tiny_engine(2, 0.6);
        let report = engine.run(dense_requests(5, 2, 4)).unwrap();
        assert_eq!(report.requests.len(), 5);
        assert_eq!(report.total_generated_tokens, 20);
        assert_eq!(report.total_prefill_tokens, 10);
        assert!(report.makespan_s > 0.0);
        assert!(report.aggregate_tps > 0.0);
        assert!(report.latency_p50_s <= report.latency_p95_s);
        assert!(report.latency_p95_s <= report.latency_p99_s);
        assert!(report.latency_p99_s <= report.makespan_s + 1e-12);
        assert!(report.fairness > 0.0 && report.fairness <= 1.0);
        // every request got all its tokens and a sensible timeline
        for r in &report.requests {
            assert_eq!(r.generated_tokens, 4);
            assert!(r.first_token_s > 0.0);
            assert!(r.first_token_s <= r.completion_s);
            assert!(r.service_s <= r.completion_s + 1e-12);
        }
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn kv_slots_are_recycled_through_the_pool() {
        let mut engine = tiny_engine(2, 0.6);
        engine.run(dense_requests(6, 2, 3)).unwrap();
        // 6 sessions through 2 slots: at most 2 fresh states, at least 4 reuses
        assert!(engine.state_pool().build_count() <= 2);
        assert!(engine.state_pool().reuse_count() >= 4);
    }

    #[test]
    fn srf_finishes_short_requests_first() {
        let make = |scheduler| {
            let mut engine = tiny_engine(2, 0.6);
            engine.config.scheduler = scheduler;
            let mut requests = dense_requests(1, 2, 30);
            requests.push(GenRequest::new(1, vec![3, 4], 2, StrategySpec::Dense));
            engine.run(requests).unwrap()
        };
        let by_id = |report: &ServeReport, id: u64| {
            report
                .requests
                .iter()
                .find(|r| r.id == id)
                .cloned()
                .expect("request present")
        };
        let srf = make(SchedulerPolicy::ShortestRemainingFirst);
        let short = by_id(&srf, 1);
        let long = by_id(&srf, 0);
        assert!(short.completion_s < long.completion_s);
        // under SRF the short request barely queues behind the long one
        let fifo = make(SchedulerPolicy::Fifo);
        assert!(short.completion_s <= by_id(&fifo, 1).completion_s + 1e-12);
    }

    #[test]
    fn invalid_requests_are_rejected_up_front() {
        let mut engine = tiny_engine(2, 0.6);
        let empty = vec![GenRequest::new(9, vec![], 4, StrategySpec::Dense)];
        assert!(matches!(
            engine.run(empty),
            Err(ServeError::InvalidRequest { id: 9, .. })
        ));
        let oov = vec![GenRequest::new(3, vec![999], 4, StrategySpec::Dense)];
        assert!(engine.run(oov).is_err());
        let too_long = vec![GenRequest::new(4, vec![1], 400, StrategySpec::Dense)];
        assert!(engine.run(too_long).is_err());

        // a request that exactly fills the context window is accepted
        let window = engine.context_window();
        let exact = vec![GenRequest::new(
            5,
            vec![1, 2],
            window - 2,
            StrategySpec::Dense,
        )];
        let report = engine.run(exact).unwrap();
        assert_eq!(report.total_generated_tokens, window - 2);
        let over = vec![GenRequest::new(
            6,
            vec![1, 2],
            window - 1,
            StrategySpec::Dense,
        )];
        assert!(engine.run(over).is_err());
    }

    #[test]
    fn empty_batch_produces_empty_report() {
        let mut engine = tiny_engine(2, 0.6);
        let report = engine.run(Vec::new()).unwrap();
        assert!(report.requests.is_empty());
        assert_eq!(report.total_generated_tokens, 0);
        assert_eq!(report.aggregate_tps, 0.0);
    }

    #[test]
    fn mixed_strategies_share_one_run() {
        let mut engine = tiny_engine(3, 0.55);
        let requests = vec![
            GenRequest::new(0, vec![1, 2], 4, StrategySpec::Dense),
            GenRequest::new(1, vec![2, 3], 4, StrategySpec::Dip { density: 0.5 }),
            GenRequest::new(
                2,
                vec![3, 4],
                4,
                StrategySpec::DipCacheAware {
                    density: 0.5,
                    gamma: 0.2,
                },
            ),
        ];
        let report = engine.run(requests).unwrap();
        assert_eq!(report.requests.len(), 3);
        // the dense request moved more bytes than the pruned ones
        assert!(
            report.requests[0].dram_bytes + report.requests[0].flash_bytes
                > report.requests[1].dram_bytes + report.requests[1].flash_bytes
        );
        assert!(report.mean_density < 1.0);
    }

    #[test]
    fn open_loop_drains_a_steady_workload() {
        use crate::request::Tier;
        use crate::workload::{ArrivalProcess, RequestTemplate, Workload};

        let mut engine = tiny_engine(2, 0.6);
        let workload = Workload::new(
            5,
            0.05,
            ArrivalProcess::Steady { rate_per_s: 300.0 },
            vec![
                RequestTemplate::new((2, 3), (3, 5), StrategySpec::Dense).with_weight(2.0),
                RequestTemplate::new((1, 2), (2, 3), StrategySpec::Dip { density: 0.5 })
                    .with_tier(Tier::Premium),
            ],
        );
        let report = engine.run_open_loop(&workload).unwrap();
        let ol = report.open_loop.as_ref().expect("open-loop stats present");
        assert!(ol.arrived > 0, "workload produced arrivals");
        assert_eq!(ol.arrived, ol.admitted + ol.shed, "admission conserves");
        assert_eq!(ol.admitted, ol.completed, "a drained run completes all");
        assert_eq!(report.requests.len(), ol.completed);
        assert!(report.makespan_s > 0.0);
        assert!(ol.ttft.p50_s <= ol.ttft.p95_s && ol.ttft.p95_s <= ol.ttft.p99_s);
        for r in &report.requests {
            assert!(r.arrival_s >= 0.0);
            assert!(r.queue_delay_s >= -1e-12);
            assert!(r.ttft_s > 0.0);
            assert!(r.completion_s - r.arrival_s >= r.ttft_s - 1e-12);
            assert!(r.tbt_mean_s >= 0.0);
        }
        // per-tier rows cover every tier and add up
        assert_eq!(ol.tiers.len(), 3);
        let arrived: usize = ol.tiers.iter().map(|t| t.arrived).sum();
        assert_eq!(arrived, ol.arrived);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn open_loop_sheds_under_admission_pressure() {
        use crate::admission::AdmissionConfig;

        let mut engine = tiny_engine(1, 0.6);
        engine.config.admission = AdmissionConfig::default()
            .with_queue_capacity(1)
            .with_rate_limit(50.0, 1.0);
        // a burst of simultaneous arrivals: 1 admitted to the slot path,
        // most rate-limited or queue-shed
        let arrivals: Vec<GenRequest> = (0..6)
            .map(|i| GenRequest::new(i, vec![1, 2], 2, StrategySpec::Dense).at(0.001 * i as f64))
            .collect();
        let report = engine.run_open_loop_requests(arrivals).unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        assert_eq!(ol.arrived, 6);
        assert!(ol.shed > 0, "pressure must shed");
        assert_eq!(
            ol.shed,
            ol.shed_rate_limited + ol.shed_tier_quota + ol.shed_queue_full + ol.shed_memory
        );
        assert!(ol.shed_rate_limited > 0);
        assert_eq!(ol.admitted, ol.completed);
    }

    #[test]
    fn open_loop_rejects_belady_and_bad_arrivals() {
        let mut engine = tiny_engine(2, 0.6);
        engine.config.eviction = hwsim::EvictionPolicy::Belady;
        let requests = vec![GenRequest::new(0, vec![1], 2, StrategySpec::Dense)];
        assert!(matches!(
            engine.run_open_loop_requests(requests.clone()),
            Err(ServeError::InvalidConfig {
                field: "eviction",
                ..
            })
        ));

        let mut engine = tiny_engine(2, 0.6);
        let bad = vec![GenRequest::new(3, vec![1], 2, StrategySpec::Dense).at(f64::NAN)];
        assert!(matches!(
            engine.run_open_loop_requests(bad),
            Err(ServeError::InvalidRequest { id: 3, .. })
        ));
        let neg = vec![GenRequest::new(4, vec![1], 2, StrategySpec::Dense).at(-1.0)];
        assert!(engine.run_open_loop_requests(neg).is_err());
        // and an empty arrival list is a well-defined empty report
        let report = engine.run_open_loop_requests(Vec::new()).unwrap();
        assert_eq!(report.requests.len(), 0);
        assert_eq!(report.open_loop.unwrap().arrived, 0);
    }

    #[test]
    fn open_loop_clock_jumps_idle_gaps() {
        let mut engine = tiny_engine(2, 0.6);
        // one request far in the future: the run must end after it, with the
        // makespan at least its arrival time (the clock jumped, not crawled)
        let requests = vec![GenRequest::new(0, vec![1, 2], 3, StrategySpec::Dense).at(5.0)];
        let report = engine.run_open_loop_requests(requests).unwrap();
        assert_eq!(report.requests.len(), 1);
        assert!(report.makespan_s >= 5.0);
        let r = &report.requests[0];
        assert!((r.arrival_s - 5.0).abs() < 1e-12);
        assert!(r.queue_delay_s < 1.0, "no queueing when the engine is idle");
    }

    #[test]
    fn priority_preemption_parks_and_resumes_low_tier_work() {
        use crate::request::{SloTarget, Tier};

        // calibrate the premium arrival to land mid-generation: the virtual
        // clock is deterministic, so probe the solo makespan first
        let solo = {
            let mut probe = tiny_engine(1, 0.6);
            probe.config.scheduler = SchedulerPolicy::PriorityPreemptive;
            probe
                .run_open_loop_requests(vec![GenRequest::new(
                    0,
                    vec![1, 2],
                    24,
                    StrategySpec::Dense,
                )
                .with_tier(Tier::Batch)])
                .unwrap()
                .makespan_s
        };
        let mut engine = tiny_engine(1, 0.6);
        engine.config.scheduler = SchedulerPolicy::PriorityPreemptive;
        // a long batch job arrives first and fills the only slot; a premium
        // request arrives mid-generation and must preempt it
        let requests = vec![
            GenRequest::new(0, vec![1, 2], 24, StrategySpec::Dense).with_tier(Tier::Batch),
            GenRequest::new(1, vec![3], 3, StrategySpec::Dense)
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(f64::INFINITY, f64::INFINITY))
                .at(0.4 * solo),
        ];
        let report = engine.run_open_loop_requests(requests).unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        assert_eq!(ol.completed, 2, "both requests finish");
        assert!(ol.preemptions >= 1, "the batch job was parked");
        assert_eq!(ol.resumes, ol.preemptions, "every park resumed at drain");
        let batch = report.requests.iter().find(|r| r.id == 0).unwrap();
        let premium = report.requests.iter().find(|r| r.id == 1).unwrap();
        assert!(batch.preemptions >= 1);
        assert_eq!(premium.preemptions, 0);
        assert!(
            premium.completion_s < batch.completion_s,
            "premium finishes first despite arriving second"
        );
        assert_eq!(batch.generated_tokens, 24, "preemption loses no tokens");
        // the pool saw the park/resume cycle and holds no leaked state
        assert_eq!(engine.state_pool().parked_count(), 0);
        assert!(engine.state_pool().park_count() >= 1);
    }

    #[test]
    fn cats_requests_calibrate_lazily_and_conflict_with_dip() {
        let mut engine = tiny_engine(2, 0.6);
        let cats = vec![GenRequest::new(
            0,
            vec![1, 2],
            3,
            StrategySpec::Cats { density: 0.5 },
        )];
        let report = engine.run(cats).unwrap();
        assert_eq!(report.requests.len(), 1);
        assert!(report.mean_density < 0.9);

        let conflict = vec![
            GenRequest::new(0, vec![1], 2, StrategySpec::Cats { density: 0.5 }),
            GenRequest::new(1, vec![1], 2, StrategySpec::Dip { density: 0.5 }),
        ];
        assert!(matches!(
            engine.run(conflict),
            Err(ServeError::IncompatibleStrategies { .. })
        ));
    }

    fn tiny_paged_engine(
        slots: usize,
        cache_fraction: f64,
        page_size: usize,
        pool_pages: usize,
        sharing: bool,
    ) -> ServeEngine {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 7).unwrap();
        let layout = layout_for_serving(
            &config,
            [lm::SliceAxis::Input; 3],
            4.0,
            slots,
            config.max_seq_len,
        );
        let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * cache_fraction) as u64;
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
        let mut serve_config = ServeConfig::new(device)
            .with_max_concurrent(slots)
            .with_paged_kv(page_size, pool_pages);
        if sharing {
            serve_config = serve_config.with_prefix_sharing();
        }
        ServeEngine::new(model, serve_config).unwrap()
    }

    #[test]
    fn paged_backend_reproduces_the_flat_report() {
        let requests = dense_requests(5, 4, 4);
        let flat = tiny_engine(2, 0.6).run(requests.clone()).unwrap();
        // plenty of pages: the pool never constrains this fleet
        let mut engine = tiny_paged_engine(2, 0.6, 4, 256, false);
        let mut paged = engine.run(requests).unwrap();
        let stats = paged.paged_kv.take().expect("paged engines report pools");
        assert_eq!(flat, paged, "backing is invisible to the report");
        assert!(stats.pages_high_water > 0);
        assert_eq!(stats.pages_at_end, 0, "no sharing, no retained pages");
        assert_eq!(stats.cow_forks, 0);
        let pool = engine.kv_page_pool().expect("paged engine exposes pool");
        assert_eq!(pool.borrow().pages_in_use(), 0, "drained run leaks nothing");
    }

    #[test]
    fn page_pressure_throttles_admission_without_losing_requests() {
        // pool sized so only ~1 session fits at a time even with 4 slots
        let config = ModelConfig::tiny();
        let n_layers = config.n_layers;
        let per_session = n_layers * pages_spanning(4 + 4, 4);
        let mut engine = tiny_paged_engine(4, 0.6, 4, per_session + 1, false);
        let report = engine.run(dense_requests(5, 4, 4)).unwrap();
        assert_eq!(report.requests.len(), 5, "pressure delays, never drops");
        assert_eq!(report.total_generated_tokens, 20);
        let stats = report.paged_kv.unwrap();
        assert!(
            stats.pages_high_water <= per_session + 1,
            "the pool cap held: {} > {}",
            stats.pages_high_water,
            per_session + 1
        );
    }

    #[test]
    fn closed_batch_rejects_requests_larger_than_the_pool() {
        let mut engine = tiny_paged_engine(2, 0.6, 4, 2, false);
        let err = engine.run(dense_requests(1, 4, 4));
        assert!(matches!(err, Err(ServeError::InvalidRequest { .. })));
    }

    #[test]
    fn shared_prefixes_are_prefilled_once_and_reused() {
        let prefix = vec![1u32, 2, 3, 4, 5, 6];
        let requests: Vec<GenRequest> = (0..6)
            .map(|i| {
                let mut prompt = prefix.clone();
                prompt.push((i % 7) as u32 + 1);
                GenRequest::new(i, prompt, 4, StrategySpec::Dense).with_shared_prefix(prefix.len())
            })
            .collect();

        let baseline = tiny_paged_engine(2, 0.6, 4, 256, false)
            .run(requests.clone())
            .unwrap();
        let shared = tiny_paged_engine(2, 0.6, 4, 256, true)
            .run(requests)
            .unwrap();

        let stats = shared.paged_kv.unwrap();
        assert!(stats.prefix_registrations >= 1, "first session registers");
        assert!(stats.prefix_hits >= 1, "later sessions map the prefix");
        // the 6-token prefix spans one whole 4-position page plus a partial
        // tail; only the whole page is shared, the tail re-prefills per hit
        let aligned = (prefix.len() / 4) * 4;
        assert_eq!(
            stats.prefix_tokens_saved,
            stats.prefix_hits * aligned,
            "every hit skips the page-aligned prefix"
        );
        assert!(stats.pages_at_end > 0, "the registry retains prefix pages");
        assert_eq!(
            shared.total_prefill_tokens,
            baseline.total_prefill_tokens - stats.prefix_tokens_saved,
            "skipped tokens leave the served-prefill count"
        );
        // sharing maps bitwise-identical KV pages, so every request decodes
        // the exact token stream it would have decoded alone
        for (a, b) in baseline.requests.iter().zip(shared.requests.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.generated, b.generated, "request {} diverged", a.id);
        }
        assert!(
            shared.makespan_s < baseline.makespan_s,
            "skipped prefill must shorten the run: {} >= {}",
            shared.makespan_s,
            baseline.makespan_s
        );
    }

    #[test]
    fn unaligned_prefixes_share_only_whole_pages_on_an_exact_pool() {
        // Regression: a 12-token prefix on 8-position pages leaves a partial
        // tail page. If the registry retained it, the session that built it
        // would keep appending into a now-shared page and copy-on-write fork
        // a page no admission commitment reserved — on a pool sized to
        // exactly the fleet's worst case, that exhausted the pool mid-run.
        // Aligned sharing retains whole pages only, so this must complete.
        let config = ModelConfig::tiny();
        let prefix: Vec<u32> = (1..=12).collect();
        let total = prefix.len() + 2 + 6;
        let per_session = config.n_layers * pages_spanning(total, 8);
        let slots = 3;
        let requests: Vec<GenRequest> = (0..12)
            .map(|i| {
                let mut prompt = prefix.clone();
                prompt.extend([(i % 5) as u32 + 1, (i % 7) as u32 + 2]);
                GenRequest::new(i, prompt, 6, StrategySpec::Dense).with_shared_prefix(prefix.len())
            })
            .collect();
        let baseline = tiny_paged_engine(slots, 0.6, 8, per_session * slots, false)
            .run(requests.clone())
            .unwrap();
        let shared = tiny_paged_engine(slots, 0.6, 8, per_session * slots, true)
            .run(requests)
            .unwrap();
        let stats = shared.paged_kv.unwrap();
        assert!(stats.prefix_hits >= 1, "whole-page sharing still hits");
        assert_eq!(
            stats.prefix_tokens_saved,
            stats.prefix_hits * 8,
            "each hit skips one whole 8-position page of the 12-token prefix"
        );
        for (a, b) in baseline.requests.iter().zip(shared.requests.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.generated, b.generated, "request {} diverged", a.id);
        }
    }

    #[test]
    fn prefix_sharing_reports_are_deterministic_across_runs() {
        let prefix = vec![1u32, 2, 3, 4];
        let requests: Vec<GenRequest> = (0..4)
            .map(|i| {
                let mut prompt = prefix.clone();
                prompt.push(i as u32 + 1);
                GenRequest::new(i, prompt, 3, StrategySpec::Dense).with_shared_prefix(prefix.len())
            })
            .collect();
        let mut engine = tiny_paged_engine(2, 0.6, 4, 64, true);
        let first = engine.run(requests.clone()).unwrap();
        let second = engine.run(requests).unwrap();
        assert_eq!(first, second, "per-run registry reset keeps runs pure");
    }

    #[test]
    fn open_loop_sheds_requests_that_can_never_fit_the_pool() {
        let config = ModelConfig::tiny();
        let n_layers = config.n_layers;
        // pool fits a small request but not the big one
        let pool_pages = n_layers * pages_spanning(8, 4);
        let mut engine = tiny_paged_engine(2, 0.6, 4, pool_pages, false);
        let arrivals = vec![
            GenRequest::new(0, vec![1, 2], 2, StrategySpec::Dense).at(0.0),
            GenRequest::new(1, vec![1; 24], 24, StrategySpec::Dense).at(0.001),
        ];
        let report = engine.run_open_loop_requests(arrivals).unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        assert_eq!(ol.shed_memory, 1, "the oversized request is shed");
        assert_eq!(ol.completed, 1);
        assert_eq!(ol.shed, ol.shed_memory);
        assert_eq!(report.requests[0].id, 0);
    }

    #[test]
    fn open_loop_paged_backend_reproduces_the_flat_report() {
        let arrivals: Vec<GenRequest> = (0..5)
            .map(|i| {
                GenRequest::new(i, vec![(i % 7) as u32 + 1; 3], 3, StrategySpec::Dense)
                    .at(0.002 * i as f64)
            })
            .collect();
        let flat = tiny_engine(2, 0.6)
            .run_open_loop_requests(arrivals.clone())
            .unwrap();
        let mut paged = tiny_paged_engine(2, 0.6, 4, 256, false)
            .run_open_loop_requests(arrivals)
            .unwrap();
        assert!(paged.paged_kv.take().is_some());
        assert_eq!(flat, paged, "open-loop reports match across backings");
    }
}
